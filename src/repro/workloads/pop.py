"""Parallel Ocean Program (POP) surrogate.

The paper traced POP from SPEC MPI2007 (mref data set): ~9000 timestep
iterations in roughly 25 minutes on 32 processes, with only iterations
3500-5500 traced ("partial tracing ... of pivotal points of long-running
applications").

What matters for clock-condition statistics is POP's communication
structure, which this surrogate reproduces:

* a 2-D logically-rectangular domain decomposition (periodic in x — the
  global ocean — bounded in y);
* per timestep: enter/exit of the step region, halo exchange with the
  four neighbours (eight point-to-point events per rank), and the
  barotropic solver's global reductions (allreduces);
* mild per-rank load imbalance plus OS jitter, which spreads the true
  event times the same way real wait states do.

Untraced iterations can be "fast-forwarded" (compute only, no messages):
the surrogate then costs simulation effort proportional to the traced
window while still spanning the full wall-clock interval over which the
clocks drift — the quantity the experiment actually studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PopConfig", "pop_worker"]

#: Region ids recorded as ENTER/EXIT pairs (a real instrumented POP
#: records user functions too; these sub-phases give the trace a
#: realistic mix of region and message events for Fig. 7's back row).
STEP_REGION = 101
BAROCLINIC_REGION = 102
HALO_REGION = 103
BAROTROPIC_REGION = 104
HALO_TAG_X = 11
HALO_TAG_Y = 12


@dataclass(frozen=True)
class PopConfig:
    """Run shape of the POP surrogate.

    Attributes
    ----------
    steps:
        Total timesteps (paper: 9000).
    step_time:
        Nominal compute time per step, seconds (paper: ~25 min / 9000).
    trace_window:
        ``(first, last)`` step indices with tracing on (paper:
        (3500, 5500)); ``None`` traces everything.
    grid:
        Process grid ``(px, py)``; ``px * py`` must equal the job size.
    halo_bytes:
        Bytes per halo face message.
    reductions_per_step:
        Allreduces per step (barotropic CG iterations).
    imbalance:
        Relative std-dev of per-rank, per-step compute time.
    fast_forward:
        Skip messages outside the trace window (see module docs).
    row_reductions:
        Perform one of the barotropic reductions on a per-row
        sub-communicator (real POP splits row/column communicators for
        its solver).  Default off to keep the recorded Fig. 7 numbers
        stable; turn on for communicator-rich traces.
    """

    steps: int = 9000
    step_time: float = 0.165
    trace_window: tuple[int, int] | None = (3500, 5500)
    grid: tuple[int, int] = (8, 4)
    halo_bytes: int = 4096
    reductions_per_step: int = 2
    imbalance: float = 0.02
    fast_forward: bool = True
    row_reductions: bool = False

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.step_time <= 0:
            raise ConfigurationError("steps and step_time must be positive")
        if self.trace_window is not None:
            lo, hi = self.trace_window
            if not 0 <= lo < hi <= self.steps:
                raise ConfigurationError(f"trace window {self.trace_window} out of range")


def pop_worker(config: PopConfig, seed: int = 0):
    """Build the POP surrogate worker for ``MpiWorld.run``."""

    def worker(ctx):
        px, py = config.grid
        if px * py != ctx.size:
            raise ConfigurationError(
                f"grid {config.grid} needs {px * py} ranks, job has {ctx.size}"
            )
        x, y = ctx.rank % px, ctx.rank // px
        # Periodic in x (global ocean), bounded in y.
        east = y * px + (x + 1) % px
        west = y * px + (x - 1) % px
        north = (y + 1) * px + x if y + 1 < py else None
        south = (y - 1) * px + x if y - 1 >= 0 else None
        rng = np.random.default_rng((seed << 8) ^ ctx.rank)

        row_comm = None
        if config.row_reductions:
            # Split once, before tracing starts (like MPI_Cart_sub at
            # model initialization).
            row_comm = yield from ctx.split(color=y, key=x)

        lo, hi = config.trace_window if config.trace_window else (0, config.steps)
        ctx.set_tracing(False)
        for step in range(config.steps):
            in_window = lo <= step < hi
            if step == lo:
                ctx.set_tracing(True)
            elif step == hi:
                ctx.set_tracing(False)
            if config.fast_forward and not in_window:
                yield from ctx.compute(config.step_time)
                continue

            yield from ctx.enter_region(STEP_REGION)
            # Baroclinic (3-D) phase: the bulk of the compute.
            yield from ctx.enter_region(BAROCLINIC_REGION)
            work = config.step_time * float(
                rng.normal(1.0, config.imbalance)
            )
            yield from ctx.compute(max(work, 0.0))
            yield from ctx.exit_region(BAROCLINIC_REGION)

            # Halo exchange: send all four faces, then receive them.
            yield from ctx.enter_region(HALO_REGION)
            yield from ctx.send(east, tag=HALO_TAG_X, nbytes=config.halo_bytes)
            yield from ctx.send(west, tag=HALO_TAG_X, nbytes=config.halo_bytes)
            if north is not None:
                yield from ctx.send(north, tag=HALO_TAG_Y, nbytes=config.halo_bytes)
            if south is not None:
                yield from ctx.send(south, tag=HALO_TAG_Y, nbytes=config.halo_bytes)
            yield from ctx.recv(src=west, tag=HALO_TAG_X)
            yield from ctx.recv(src=east, tag=HALO_TAG_X)
            if south is not None:
                yield from ctx.recv(src=south, tag=HALO_TAG_Y)
            if north is not None:
                yield from ctx.recv(src=north, tag=HALO_TAG_Y)
            yield from ctx.exit_region(HALO_REGION)

            # Barotropic (2-D) solver: global reductions per CG sweep
            # (optionally one on the row communicator, like POP's
            # distributed dot products).
            yield from ctx.enter_region(BAROTROPIC_REGION)
            for k in range(config.reductions_per_step):
                if row_comm is not None and k == 0:
                    yield from row_comm.allreduce(nbytes=8, value=1.0)
                else:
                    yield from ctx.allreduce(nbytes=8, value=1.0)
            yield from ctx.exit_region(BAROTROPIC_REGION)
            yield from ctx.exit_region(STEP_REGION)
        ctx.set_tracing(False)
        return config.steps

    def batch_plan(plan):
        # Mirror of `worker` against the repro.sim.batch plan recorder.
        px, py = config.grid
        if px * py != plan.size:
            raise ConfigurationError(
                f"grid {config.grid} needs {px * py} ranks, job has {plan.size}"
            )
        x, y = plan.rank % px, plan.rank // px
        east = y * px + (x + 1) % px
        west = y * px + (x - 1) % px
        north = (y + 1) * px + x if y + 1 < py else None
        south = (y - 1) * px + x if y - 1 >= 0 else None
        rng = np.random.default_rng((seed << 8) ^ plan.rank)

        if config.row_reductions:
            plan.split(color=y, key=x)  # raises BatchFallback

        lo, hi = config.trace_window if config.trace_window else (0, config.steps)
        plan.set_tracing(False)
        for step in range(config.steps):
            in_window = lo <= step < hi
            if step == lo:
                plan.set_tracing(True)
            elif step == hi:
                plan.set_tracing(False)
            if config.fast_forward and not in_window:
                plan.compute(config.step_time)
                continue

            plan.enter_region(STEP_REGION)
            plan.enter_region(BAROCLINIC_REGION)
            work = config.step_time * float(rng.normal(1.0, config.imbalance))
            plan.compute(max(work, 0.0))
            plan.exit_region(BAROCLINIC_REGION)

            plan.enter_region(HALO_REGION)
            plan.send(east, tag=HALO_TAG_X, nbytes=config.halo_bytes)
            plan.send(west, tag=HALO_TAG_X, nbytes=config.halo_bytes)
            if north is not None:
                plan.send(north, tag=HALO_TAG_Y, nbytes=config.halo_bytes)
            if south is not None:
                plan.send(south, tag=HALO_TAG_Y, nbytes=config.halo_bytes)
            plan.recv(src=west, tag=HALO_TAG_X)
            plan.recv(src=east, tag=HALO_TAG_X)
            if south is not None:
                plan.recv(src=south, tag=HALO_TAG_Y)
            if north is not None:
                plan.recv(src=north, tag=HALO_TAG_Y)
            plan.exit_region(HALO_REGION)

            plan.enter_region(BAROTROPIC_REGION)
            for _ in range(config.reductions_per_step):
                plan.allreduce(nbytes=8, value=1.0)
            plan.exit_region(BAROTROPIC_REGION)
            plan.exit_region(STEP_REGION)
        plan.set_tracing(False)
        return ("static", config.steps)

    worker.batch_plan = batch_plan
    worker.batch_key = ("pop", config, seed)
    return worker
