"""Latency-measurement kernels (Table II).

Classic ping-pong: rank 0 timestamps each round trip to rank 1 with its
local clock and halves it; per-rep samples give the mean and standard
deviation the paper reports per process placement.  The collective
variant times a full allreduce per repetition.

Both kernels run *untraced* (raw operations) — they are measurement
tools, not applications — and return their samples through the worker's
return value (collected by ``RunResult.results``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pingpong_worker", "collective_timing_worker", "PING_TAG"]

PING_TAG = 77


def pingpong_worker(repeats: int = 1000, nbytes: int = 0, warmup: int = 10):
    """Build a ping-pong worker; rank 0 returns per-rep one-way latencies.

    Ranks other than 0 and 1 idle through a final barrier-free return,
    so the kernel can run under any communicator size.
    """

    def worker(ctx):
        if ctx.rank == 0:
            samples = np.empty(repeats, dtype=np.float64)
            for i in range(warmup + repeats):
                t1 = yield from ctx.wtime()
                yield from ctx.send_raw(1, tag=PING_TAG, nbytes=nbytes)
                yield from ctx.recv_raw(src=1, tag=PING_TAG)
                t2 = yield from ctx.wtime()
                if i >= warmup:
                    samples[i - warmup] = (t2 - t1) / 2.0
            return samples
        if ctx.rank == 1:
            for _ in range(warmup + repeats):
                yield from ctx.recv_raw(src=0, tag=PING_TAG)
                yield from ctx.send_raw(0, tag=PING_TAG, nbytes=nbytes)
        return None

    def batch_plan(plan):
        if plan.rank == 0:
            t1_slots, t2_slots = [], []
            for i in range(warmup + repeats):
                t1 = plan.wtime()
                plan.send_raw(1, tag=PING_TAG, nbytes=nbytes)
                plan.recv_raw(src=1, tag=PING_TAG)
                t2 = plan.wtime()
                if i >= warmup:
                    t1_slots.append(t1)
                    t2_slots.append(t2)
            return ("timed", t1_slots, t2_slots, True)
        if plan.rank == 1:
            for _ in range(warmup + repeats):
                plan.recv_raw(src=0, tag=PING_TAG)
                plan.send_raw(0, tag=PING_TAG, nbytes=nbytes)
        return ("static", None)

    worker.batch_plan = batch_plan
    worker.batch_key = ("pingpong", repeats, nbytes, warmup)
    return worker


def collective_timing_worker(repeats: int = 200, nbytes: int = 8, warmup: int = 5):
    """Build an allreduce-timing worker; rank 0 returns per-rep latencies.

    Every rank participates in each allreduce; rank 0 measures the local
    completion time of the operation (the common way collective latency
    is reported).
    """

    def worker(ctx):
        samples = np.empty(repeats, dtype=np.float64) if ctx.rank == 0 else None
        for i in range(warmup + repeats):
            if ctx.rank == 0:
                t1 = yield from ctx.wtime()
            yield from ctx.allreduce(nbytes=nbytes, value=1)
            if ctx.rank == 0:
                t2 = yield from ctx.wtime()
                if i >= warmup:
                    samples[i - warmup] = t2 - t1
        return samples

    def batch_plan(plan):
        t1_slots, t2_slots = [], []
        for i in range(warmup + repeats):
            if plan.rank == 0:
                t1 = plan.wtime()
            plan.allreduce(nbytes=nbytes, value=1)
            if plan.rank == 0:
                t2 = plan.wtime()
                if i >= warmup:
                    t1_slots.append(t1)
                    t2_slots.append(t2)
        if plan.rank == 0:
            return ("timed", t1_slots, t2_slots, False)
        return ("static", None)

    worker.batch_plan = batch_plan
    worker.batch_key = ("collective_timing", repeats, nbytes, warmup)
    return worker
