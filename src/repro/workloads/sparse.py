"""Randomized sparse communication pattern (stress/property testing).

Generates a deterministic random schedule of point-to-point rounds and
occasional collectives, the same on every rank (so matching always
closes), with randomized compute between rounds.  Used by property
tests to exercise matching, violation scanning, and the CLC on traces
with no regular structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SparseConfig", "sparse_worker"]

SPARSE_TAG = 21


@dataclass(frozen=True)
class SparseConfig:
    """Shape of the random pattern.

    Attributes
    ----------
    rounds:
        Communication rounds.
    density:
        Probability that an ordered rank pair exchanges a message in a
        given round.
    collective_every:
        Insert an allreduce every k rounds (0 disables).
    compute_scale:
        Mean compute time between rounds, seconds.
    """

    rounds: int = 20
    density: float = 0.15
    collective_every: int = 5
    compute_scale: float = 1e-4

    def __post_init__(self) -> None:
        if self.rounds <= 0 or not 0.0 <= self.density <= 1.0:
            raise ConfigurationError("invalid sparse workload config")


def sparse_worker(config: SparseConfig, seed: int = 0):
    """Build the sparse worker; the schedule is a pure function of
    ``(seed, size)`` so every rank derives the identical plan."""

    def worker(ctx):
        n = ctx.size
        plan_rng = np.random.default_rng(seed)  # same plan on every rank
        my_rng = np.random.default_rng((seed << 8) ^ (ctx.rank + 17))
        for rnd in range(config.rounds):
            pairs = plan_rng.random((n, n)) < config.density
            np.fill_diagonal(pairs, False)
            yield from ctx.compute(float(my_rng.exponential(config.compute_scale)))
            # Post all sends of this round first (eager), then receives:
            # deadlock-free for arbitrary patterns.
            for dst in range(n):
                if pairs[ctx.rank, dst]:
                    yield from ctx.send(dst, tag=SPARSE_TAG, nbytes=64)
            for src in range(n):
                if pairs[src, ctx.rank]:
                    yield from ctx.recv(src=src, tag=SPARSE_TAG)
            if config.collective_every and (rnd + 1) % config.collective_every == 0:
                yield from ctx.allreduce(nbytes=8, value=1)
        return config.rounds

    def batch_plan(plan):
        # Mirror of `worker` against the repro.sim.batch plan recorder:
        # identical control flow and identical RNG consumption order.
        n = plan.size
        plan_rng = np.random.default_rng(seed)
        my_rng = np.random.default_rng((seed << 8) ^ (plan.rank + 17))
        for rnd in range(config.rounds):
            pairs = plan_rng.random((n, n)) < config.density
            np.fill_diagonal(pairs, False)
            plan.compute(float(my_rng.exponential(config.compute_scale)))
            for dst in range(n):
                if pairs[plan.rank, dst]:
                    plan.send(dst, tag=SPARSE_TAG, nbytes=64)
            for src in range(n):
                if pairs[src, plan.rank]:
                    plan.recv(src=src, tag=SPARSE_TAG)
            if config.collective_every and (rnd + 1) % config.collective_every == 0:
                plan.allreduce(nbytes=8, value=1)
        return ("static", config.rounds)

    worker.batch_plan = batch_plan
    worker.batch_key = ("sparse", config, seed)
    return worker
