"""ASC SMG2000 surrogate: semicoarsening multigrid V-cycles.

The paper configured SMG2000 with a 16x16x8 per-process problem and five
solver iterations, then *"emulated a longer run ... by inserting sleep
statements immediately before and after the main computational phase so
that it was carried out ten minutes after initialization and ten minutes
before finalization"*, stretching the interpolation interval to ~20
minutes.

SMG2000's signature — the reason the paper picked it — is a *"complex
communication pattern and ... a large number of non-nearest-neighbor
point-to-point communication operations"*: semicoarsening doubles the
communication stride at every grid level.  The surrogate reproduces
exactly that: processes form a 1-D chain (the coarsening direction);
each V-cycle descends levels ``0..L-1`` exchanging with partners at
stride ``2**level`` (and back up), with residual-norm allreduces between
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Smg2000Config", "smg2000_worker"]

CYCLE_REGION = 201
#: Each grid level's smooth+exchange is instrumented as its own region
#: (region id = LEVEL_REGION_BASE + level), like hypre's per-level
#: routines appear in a real instrumented SMG2000 trace.
LEVEL_REGION_BASE = 210
LEVEL_TAG_BASE = 300


@dataclass(frozen=True)
class Smg2000Config:
    """Run shape of the SMG2000 surrogate.

    Attributes
    ----------
    cycles:
        Solver iterations (paper: 5 V-cycles).
    levels:
        Grid levels per cycle; ``None`` uses ``floor(log2(size))``.
    smooth_time:
        Compute time per level per direction, seconds.
    msg_bytes:
        Bytes per level exchange.
    pre_sleep / post_sleep:
        Idle stretches before/after the solve (paper: 600 s each).
    imbalance:
        Relative std-dev of per-rank smoothing time.
    """

    cycles: int = 5
    levels: int | None = None
    smooth_time: float = 0.02
    msg_bytes: int = 2048
    pre_sleep: float = 600.0
    post_sleep: float = 600.0
    imbalance: float = 0.03

    def __post_init__(self) -> None:
        if self.cycles <= 0 or self.smooth_time <= 0:
            raise ConfigurationError("cycles and smooth_time must be positive")
        if self.pre_sleep < 0 or self.post_sleep < 0:
            raise ConfigurationError("sleeps must be non-negative")


def smg2000_worker(config: Smg2000Config, seed: int = 0):
    """Build the SMG2000 surrogate worker for ``MpiWorld.run``."""

    def worker(ctx):
        n = ctx.size
        levels = config.levels
        if levels is None:
            levels = max(1, int(np.floor(np.log2(max(n, 2)))))
        rng = np.random.default_rng((seed << 8) ^ (ctx.rank + 1))

        ctx.set_tracing(False)
        yield from ctx.sleep(config.pre_sleep)
        ctx.set_tracing(True)

        for cycle in range(config.cycles):
            yield from ctx.enter_region(CYCLE_REGION)
            # Downward sweep: exchanges at growing stride (coarsening).
            for level in range(levels):
                yield from _level_exchange(ctx, config, rng, level, n)
            # Upward sweep: strides shrink again (interpolation).
            for level in range(levels - 1, -1, -1):
                yield from _level_exchange(ctx, config, rng, level, n)
            # Residual norm.
            yield from ctx.allreduce(nbytes=8, value=1.0)
            yield from ctx.exit_region(CYCLE_REGION)

        ctx.set_tracing(False)
        yield from ctx.sleep(config.post_sleep)
        return config.cycles

    def batch_plan(plan):
        # Mirror of `worker` against the repro.sim.batch plan recorder.
        n = plan.size
        levels = config.levels
        if levels is None:
            levels = max(1, int(np.floor(np.log2(max(n, 2)))))
        rng = np.random.default_rng((seed << 8) ^ (plan.rank + 1))

        plan.set_tracing(False)
        plan.sleep(config.pre_sleep)
        plan.set_tracing(True)

        for _ in range(config.cycles):
            plan.enter_region(CYCLE_REGION)
            for level in range(levels):
                _plan_level_exchange(plan, config, rng, level, n)
            for level in range(levels - 1, -1, -1):
                _plan_level_exchange(plan, config, rng, level, n)
            plan.allreduce(nbytes=8, value=1.0)
            plan.exit_region(CYCLE_REGION)

        plan.set_tracing(False)
        plan.sleep(config.post_sleep)
        return ("static", config.cycles)

    worker.batch_plan = batch_plan
    worker.batch_key = ("smg2000", config, seed)
    return worker


def _level_exchange(ctx, config: Smg2000Config, rng, level: int, n: int):
    """Smooth, then exchange with the two partners at stride 2**level.

    Partners wrap modulo the job size; at coarse levels this reaches
    *far* across the machine — the non-nearest-neighbour traffic that
    distinguishes SMG2000 from stencil codes.
    """
    stride = 1 << level
    up = (ctx.rank + stride) % n
    down = (ctx.rank - stride) % n
    yield from ctx.enter_region(LEVEL_REGION_BASE + level)
    work = config.smooth_time * float(rng.normal(1.0, config.imbalance))
    yield from ctx.compute(max(work, 0.0))
    tag = LEVEL_TAG_BASE + level
    if up != ctx.rank:
        yield from ctx.send(up, tag=tag, nbytes=config.msg_bytes)
        yield from ctx.send(down, tag=tag, nbytes=config.msg_bytes)
        yield from ctx.recv(src=down, tag=tag)
        yield from ctx.recv(src=up, tag=tag)
    yield from ctx.exit_region(LEVEL_REGION_BASE + level)


def _plan_level_exchange(plan, config: Smg2000Config, rng, level: int, n: int):
    """Plan-recorder mirror of :func:`_level_exchange`."""
    stride = 1 << level
    up = (plan.rank + stride) % n
    down = (plan.rank - stride) % n
    plan.enter_region(LEVEL_REGION_BASE + level)
    work = config.smooth_time * float(rng.normal(1.0, config.imbalance))
    plan.compute(max(work, 0.0))
    tag = LEVEL_TAG_BASE + level
    if up != plan.rank:
        plan.send(up, tag=tag, nbytes=config.msg_bytes)
        plan.send(down, tag=tag, nbytes=config.msg_bytes)
        plan.recv(src=down, tag=tag)
        plan.recv(src=up, tag=tag)
    plan.exit_region(LEVEL_REGION_BASE + level)
