"""Sweep3D surrogate: pipelined wavefront sweeps.

Sweep3D (the ASCI deterministic S_n transport benchmark) is the
canonical *pipelined* communication pattern: a 2-D process grid sweeps
wavefronts from each corner; every cell waits for its upstream
neighbours, computes, and feeds its downstream neighbours.  The pattern
matters for this library because it produces long *happened-before
chains* — the quantity that governs the replay-parallel CLC's round
count — and dense Late Sender chains for wait-state analysis, both of
which the stencil (POP) and strided (SMG2000) surrogates lack.

Per sweep direction (one of the four corners), each rank:

1. receives from its upstream x- and y-neighbours (if any),
2. computes its block of angles,
3. sends to its downstream neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Sweep3dConfig", "sweep3d_worker"]

SWEEP_REGION = 401
SWEEP_TAG = 41

#: The four sweep corners as (x direction, y direction).
DIRECTIONS = ((1, 1), (-1, 1), (1, -1), (-1, -1))


@dataclass(frozen=True)
class Sweep3dConfig:
    """Run shape of the Sweep3D surrogate.

    Attributes
    ----------
    iterations:
        Outer source iterations; each performs all four corner sweeps.
    grid:
        Process grid ``(px, py)``; must match the job size.
    cell_time:
        Compute time per rank per sweep, seconds.
    msg_bytes:
        Bytes per pipeline message (angle-block boundary data).
    imbalance:
        Relative std-dev of per-rank cell time.
    """

    iterations: int = 4
    grid: tuple[int, int] = (4, 2)
    cell_time: float = 2.0e-4
    msg_bytes: int = 1024
    imbalance: float = 0.05

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.cell_time <= 0:
            raise ConfigurationError("iterations and cell_time must be positive")
        px, py = self.grid
        if px <= 0 or py <= 0:
            raise ConfigurationError(f"invalid grid {self.grid}")


def sweep3d_worker(config: Sweep3dConfig, seed: int = 0):
    """Build the Sweep3D surrogate worker for ``MpiWorld.run``."""

    def worker(ctx):
        px, py = config.grid
        if px * py != ctx.size:
            raise ConfigurationError(
                f"grid {config.grid} needs {px * py} ranks, job has {ctx.size}"
            )
        x, y = ctx.rank % px, ctx.rank // px
        rng = np.random.default_rng((seed << 8) ^ (ctx.rank + 3))

        for _ in range(config.iterations):
            yield from ctx.enter_region(SWEEP_REGION)
            for dx, dy in DIRECTIONS:
                up_x = x - dx
                up_y = y - dy
                down_x = x + dx
                down_y = y + dy
                # Wait for upstream wavefront data.
                if 0 <= up_x < px:
                    yield from ctx.recv(src=y * px + up_x, tag=SWEEP_TAG)
                if 0 <= up_y < py:
                    yield from ctx.recv(src=up_y * px + x, tag=SWEEP_TAG)
                work = config.cell_time * float(rng.normal(1.0, config.imbalance))
                yield from ctx.compute(max(work, 0.0))
                # Feed downstream.
                if 0 <= down_x < px:
                    yield from ctx.send(
                        y * px + down_x, tag=SWEEP_TAG, nbytes=config.msg_bytes
                    )
                if 0 <= down_y < py:
                    yield from ctx.send(
                        down_y * px + x, tag=SWEEP_TAG, nbytes=config.msg_bytes
                    )
            yield from ctx.exit_region(SWEEP_REGION)
        return config.iterations

    def batch_plan(plan):
        # Mirror of `worker` against the repro.sim.batch plan recorder.
        px, py = config.grid
        if px * py != plan.size:
            raise ConfigurationError(
                f"grid {config.grid} needs {px * py} ranks, job has {plan.size}"
            )
        x, y = plan.rank % px, plan.rank // px
        rng = np.random.default_rng((seed << 8) ^ (plan.rank + 3))

        for _ in range(config.iterations):
            plan.enter_region(SWEEP_REGION)
            for dx, dy in DIRECTIONS:
                up_x = x - dx
                up_y = y - dy
                down_x = x + dx
                down_y = y + dy
                if 0 <= up_x < px:
                    plan.recv(src=y * px + up_x, tag=SWEEP_TAG)
                if 0 <= up_y < py:
                    plan.recv(src=up_y * px + x, tag=SWEEP_TAG)
                work = config.cell_time * float(rng.normal(1.0, config.imbalance))
                plan.compute(max(work, 0.0))
                if 0 <= down_x < px:
                    plan.send(y * px + down_x, tag=SWEEP_TAG, nbytes=config.msg_bytes)
                if 0 <= down_y < py:
                    plan.send(down_y * px + x, tag=SWEEP_TAG, nbytes=config.msg_bytes)
            plan.exit_region(SWEEP_REGION)
        return ("static", config.iterations)

    worker.batch_plan = batch_plan
    worker.batch_key = ("sweep3d", config, seed)
    return worker
