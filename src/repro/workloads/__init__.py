"""Synthetic application workloads.

Stand-ins for the paper's evaluation codes, matched on the property the
study depends on — the *communication pattern* and run length:

* :mod:`repro.workloads.pingpong` — latency measurement kernels
  (Table II);
* :mod:`repro.workloads.pop` — Parallel Ocean Program surrogate: 2-D
  stencil halo exchange + global reductions, partial tracing window;
* :mod:`repro.workloads.smg2000` — semicoarsening multigrid surrogate:
  long-range non-nearest-neighbour exchanges in V-cycles, sleep-padded
  like the paper's emulated long run;
* :mod:`repro.workloads.sparse` — randomized sparse point-to-point
  pattern for stress/property tests;
* :mod:`repro.workloads.sweep3d` — pipelined wavefront sweeps (long
  happened-before chains, dense Late Sender chains).

All builders return a ``worker(ctx)`` generator suitable for
:meth:`repro.mpi.runtime.MpiWorld.run`.
"""

from repro.workloads.pingpong import collective_timing_worker, pingpong_worker
from repro.workloads.pop import PopConfig, pop_worker
from repro.workloads.smg2000 import Smg2000Config, smg2000_worker
from repro.workloads.sparse import SparseConfig, sparse_worker
from repro.workloads.sweep3d import Sweep3dConfig, sweep3d_worker

__all__ = [
    "pingpong_worker",
    "collective_timing_worker",
    "PopConfig",
    "pop_worker",
    "Smg2000Config",
    "smg2000_worker",
    "SparseConfig",
    "sparse_worker",
    "Sweep3dConfig",
    "sweep3d_worker",
]
