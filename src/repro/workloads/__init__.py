"""Synthetic application workloads.

Stand-ins for the paper's evaluation codes, matched on the property the
study depends on — the *communication pattern* and run length:

* :mod:`repro.workloads.pingpong` — latency measurement kernels
  (Table II);
* :mod:`repro.workloads.pop` — Parallel Ocean Program surrogate: 2-D
  stencil halo exchange + global reductions, partial tracing window;
* :mod:`repro.workloads.smg2000` — semicoarsening multigrid surrogate:
  long-range non-nearest-neighbour exchanges in V-cycles, sleep-padded
  like the paper's emulated long run;
* :mod:`repro.workloads.sparse` — randomized sparse point-to-point
  pattern for stress/property tests;
* :mod:`repro.workloads.sweep3d` — pipelined wavefront sweeps (long
  happened-before chains, dense Late Sender chains).

All builders return a ``worker(ctx)`` generator suitable for
:meth:`repro.mpi.runtime.MpiWorld.run`.

The :data:`WORKLOADS` registry maps each workload name to a builder
with the uniform signature ``(nprocs, scale, seed) -> BuiltWorkload``;
:func:`build_workload` is the dispatching front door the CLI uses, so
adding a workload here makes it runnable via ``repro simulate
--workload <name>`` without touching the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.workloads.pingpong import collective_timing_worker, pingpong_worker
from repro.workloads.pop import PopConfig, pop_worker
from repro.workloads.smg2000 import Smg2000Config, smg2000_worker
from repro.workloads.sparse import SparseConfig, sparse_worker
from repro.workloads.sweep3d import Sweep3dConfig, sweep3d_worker

__all__ = [
    "pingpong_worker",
    "collective_timing_worker",
    "PopConfig",
    "pop_worker",
    "Smg2000Config",
    "smg2000_worker",
    "SparseConfig",
    "sparse_worker",
    "Sweep3dConfig",
    "sweep3d_worker",
    "BuiltWorkload",
    "WORKLOADS",
    "build_workload",
    "most_square_grid",
    "simulate_workload",
]


def most_square_grid(nprocs: int) -> tuple[int, int]:
    """Most-square 2-D factorization ``px * py == nprocs``, ``px >= py``."""
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    py = int(nprocs**0.5)
    while nprocs % py:
        py -= 1
    return (nprocs // py, py)


@dataclass(frozen=True)
class BuiltWorkload:
    """A ready-to-run workload plus the run knobs it wants.

    ``duration_hint`` is the true-time horizon the drift paths must
    cover; ``tracing_initially`` is False for workloads that open their
    own tracing window mid-run (POP, SMG2000).
    """

    name: str
    worker: Callable
    duration_hint: float
    tracing_initially: bool = True


def _build_sparse(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    cfg = SparseConfig(rounds=max(int(100 * scale), 5))
    return BuiltWorkload("sparse", sparse_worker(cfg, seed=seed), 120.0)


def _build_pop(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    steps = max(int(9000 * scale), 20)
    cfg = PopConfig(
        steps=steps,
        step_time=0.165 * 9000 / steps,
        trace_window=(int(steps * 3500 / 9000), int(steps * 5500 / 9000)),
        grid=most_square_grid(nprocs),
    )
    return BuiltWorkload(
        "pop",
        pop_worker(cfg, seed=seed),
        cfg.steps * cfg.step_time * 1.2 + 60.0,
        tracing_initially=False,
    )


def _build_smg2000(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    cfg = Smg2000Config(cycles=max(int(5 * max(scale * 10, 0.2)), 1))
    return BuiltWorkload(
        "smg2000",
        smg2000_worker(cfg, seed=seed),
        cfg.pre_sleep + cfg.post_sleep + 240.0,
        tracing_initially=False,
    )


def _build_sweep3d(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    cfg = Sweep3dConfig(
        iterations=max(int(200 * scale), 2), grid=most_square_grid(nprocs)
    )
    px, py = cfg.grid
    hint = cfg.iterations * 4 * (px + py) * cfg.cell_time * 20.0 + 60.0
    return BuiltWorkload("sweep3d", sweep3d_worker(cfg, seed=seed), hint)


def _build_pingpong(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    repeats = max(int(5000 * scale), 10)
    return BuiltWorkload(
        "pingpong", pingpong_worker(repeats=repeats), max(repeats * 1e-4, 10.0)
    )


def _build_collective_timing(nprocs: int, scale: float, seed: int) -> BuiltWorkload:
    repeats = max(int(1000 * scale), 5)
    return BuiltWorkload(
        "collective_timing",
        collective_timing_worker(repeats=repeats),
        max(repeats * 1e-3, 10.0),
    )


#: Workload name -> builder ``(nprocs, scale, seed) -> BuiltWorkload``.
WORKLOADS: dict[str, Callable[[int, float, int], BuiltWorkload]] = {
    "sparse": _build_sparse,
    "pop": _build_pop,
    "smg2000": _build_smg2000,
    "sweep3d": _build_sweep3d,
    "pingpong": _build_pingpong,
    "collective_timing": _build_collective_timing,
}


def build_workload(
    name: str, nprocs: int = 8, scale: float = 0.02, seed: int = 0
) -> BuiltWorkload:
    """Build workload ``name`` at ``scale`` for a ``nprocs``-rank job."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
        ) from None
    return builder(nprocs, scale, seed)


def simulate_workload(
    name: str,
    nprocs: int = 8,
    scale: float = 0.02,
    seed: int = 0,
    platform: str = "xeon",
    placement: str = "scheduler",
    timer: str | None = None,
    *,
    options=None,
):
    """Run a built-in workload exactly the way ``repro simulate`` does.

    One shared construction — platform preset, placement, OS-jitter
    model, seeding — so every consumer (the CLI, the correction
    service of :mod:`repro.service`, scripts) produces bit-identical
    traces for the same arguments.  Returns the
    :class:`~repro.mpi.runtime.RunResult`.

    ``placement`` is ``"spread"`` (one process per node) or
    ``"scheduler"`` (packed, the CLI default); ``options`` is a
    :class:`~repro.options.RunOptions` consulted for engine, telemetry,
    and out-of-core spilling.
    """
    from repro.cluster.jitter import OsJitterModel
    from repro.cluster.pinning import inter_node, scheduler_default
    from repro.core.api import PLATFORMS
    from repro.mpi.runtime import MpiWorld
    from repro.options import RunOptions
    from repro.rng import RngFabric

    if platform not in PLATFORMS:
        raise ConfigurationError(
            f"unknown platform {platform!r}; options: {sorted(PLATFORMS)}"
        )
    preset = PLATFORMS[platform]()
    if placement == "spread":
        pinning = inter_node(preset.machine, nprocs)
    elif placement == "scheduler":
        pinning = scheduler_default(
            preset.machine, nprocs, RngFabric(seed).generator("placement")
        )
    else:
        raise ConfigurationError(
            f"unknown placement {placement!r} (use 'spread' or 'scheduler')"
        )

    built = build_workload(name, nprocs, scale, seed)
    world = MpiWorld(
        preset,
        pinning,
        timer=timer,
        seed=seed,
        duration_hint=built.duration_hint,
        jitter=OsJitterModel(rate=10.0, mean_delay=5e-6),
    )
    return world.run(
        built.worker,
        tracing_initially=built.tracing_initially,
        options=options if options is not None else RunOptions(),
    )
