"""Unified run configuration: the frozen :class:`RunOptions` dataclass.

Historically every entry point grew its own scattered kwargs —
``TracingSession(seed=...)``, ``run_grid(jobs=..., cache=...)``,
``table2_latencies(seed=..., jobs=..., cache=..., engine=...)`` — and
new concerns (telemetry) would have meant touching every signature
again.  ``RunOptions`` is now the one way to configure a run:

>>> from repro import RunOptions, TracingSession
>>> opts = RunOptions(engine="batch", seed=7)
>>> session = TracingSession(nprocs=4, options=opts)

The old kwargs still work but emit :class:`DeprecationWarning` and
forward into an equivalent ``RunOptions`` (see :func:`resolve_options`).
Passing both ``options=`` and a deprecated kwarg is a
:class:`~repro.errors.ConfigurationError` — there must be exactly one
source of truth.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.stats import StoppingRule
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ENGINES", "RunOptions", "resolve_options"]

#: Engines accepted by ``RunOptions.engine`` / ``world.run``.
ENGINES = ("reference", "batch")


class _Unset:
    """Sentinel distinguishing 'kwarg not supplied' from explicit None."""

    __slots__ = ()

    def __repr__(self):
        return "<unset>"


_UNSET = _Unset()


@dataclass(frozen=True)
class RunOptions:
    """Everything that configures *how* a run executes.

    Parameters
    ----------
    engine:
        ``"reference"`` (generator event loop) or ``"batch"`` (vectorized
        fast path with automatic fallback; see ``RunResult.fallback_reason``).
    jobs:
        Worker processes for grid fan-out (``None`` = serial).
    cache:
        A :class:`repro.cache.ResultCache`, or ``None`` to disable caching.
    seed:
        Master seed.  ``None`` means "use the entry point's historical
        default" (0 for sessions and most figures, 1 for fig8, 11 for the
        waitstate study), so a bare ``RunOptions()`` changes nothing.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder`, or ``None`` for the
        shared zero-overhead null sink.
    trace_dir:
        Directory for an out-of-core sharded trace.  When set, the run
        spills events to a :class:`repro.tracing.store.ShardedTraceWriter`
        instead of materializing the full log, and ``RunResult.trace``
        is a :class:`repro.tracing.store.ChunkedTrace`.
    shard_events:
        Events per shard for ``trace_dir`` (default
        :data:`repro.tracing.store.DEFAULT_SHARD_EVENTS`).  Requires
        ``trace_dir``.
    stopping:
        A :class:`repro.stats.StoppingRule`, or ``None`` for a fixed
        repetition count.  Measurement drivers (Table II, fig7, fig8)
        consult it to add independent runs until the confidence interval
        of each reported mean undercuts the rule's relative-width
        target; see ``docs/methodology.md``.

    Instances are frozen; derive variants with :meth:`replace`.
    """

    engine: str = "reference"
    jobs: Optional[int] = None
    cache: Any = None
    seed: Optional[int] = None
    telemetry: Any = None
    trace_dir: Any = None
    shard_events: Optional[int] = None
    stopping: Optional[StoppingRule] = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of {', '.join(ENGINES)}"
            )
        if self.jobs is not None and (not isinstance(self.jobs, int) or self.jobs < 1):
            raise ConfigurationError(f"jobs must be a positive int or None, got {self.jobs!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int or None, got {self.seed!r}")
        if self.shard_events is not None:
            if not isinstance(self.shard_events, int) or self.shard_events < 1:
                raise ConfigurationError(
                    f"shard_events must be a positive int or None, got {self.shard_events!r}"
                )
            if self.trace_dir is None:
                raise ConfigurationError(
                    "shard_events requires trace_dir (it sizes the on-disk shards)"
                )
        if self.stopping is not None and not isinstance(self.stopping, StoppingRule):
            raise ConfigurationError(
                f"stopping must be a repro.stats.StoppingRule or None, "
                f"got {self.stopping!r}"
            )

    def replace(self, **changes) -> "RunOptions":
        """Return a copy with ``changes`` applied (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    @property
    def telemetry_or_null(self):
        """The telemetry handle, with ``None`` mapped to the null sink."""
        return NULL_TELEMETRY if self.telemetry is None else self.telemetry

    def resolved_seed(self, default: int = 0) -> int:
        """The seed to use, falling back to the caller's historical default."""
        return default if self.seed is None else self.seed


def resolve_options(options: Optional[RunOptions], *, caller: str, **legacy) -> RunOptions:
    """Fold deprecated per-call kwargs into a single :class:`RunOptions`.

    ``legacy`` maps option-field names to the values the caller received;
    the :data:`_UNSET` sentinel marks "not supplied".  Supplying any
    legacy kwarg emits one :class:`DeprecationWarning` naming the fields;
    supplying both ``options=`` and a legacy kwarg raises.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if supplied:
        if options is not None:
            raise ConfigurationError(
                f"{caller}: pass options=RunOptions(...) or the deprecated "
                f"keyword(s) {', '.join(sorted(supplied))}, not both"
            )
        warnings.warn(
            f"{caller}: the {', '.join(sorted(supplied))} keyword(s) are deprecated; "
            f"pass options=repro.RunOptions(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return RunOptions(**supplied)
    return options if options is not None else RunOptions()
