"""The :class:`TracingSession` façade.

Bundles platform selection, placement, timer choice, tracing, and
synchronization behind a handful of calls::

    from repro import RunOptions, TracingSession
    from repro.workloads import PopConfig, pop_worker

    session = TracingSession(platform="xeon", nprocs=8, timer="tsc",
                             options=RunOptions(seed=42))
    run = session.trace(pop_worker(PopConfig(steps=100, step_time=1e-3,
                                             trace_window=None, grid=(4, 2))))
    report = session.synchronize(run)
    print(report.summary())

Everything the façade does is also reachable through the underlying
objects (:class:`~repro.mpi.runtime.MpiWorld`,
:class:`~repro.core.pipeline.SyncPipeline`), which the session exposes.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.jitter import OsJitterModel
from repro.cluster.machines import (
    ClusterPreset,
    itanium_node,
    opteron_cluster,
    powerpc_cluster,
    xeon_cluster,
)
from repro.cluster.pinning import Pinning, inter_node, scheduler_default
from repro.core.pipeline import PipelineReport, SyncPipeline
from repro.errors import ConfigurationError
from repro.mpi.runtime import MpiWorld, RunResult
from repro.options import _UNSET, RunOptions, resolve_options
from repro.rng import RngFabric
from repro.sync.violations import lmin_matrix_from_trace

__all__ = ["TracingSession", "PLATFORMS"]

#: Platform name -> preset factory.
PLATFORMS: dict[str, Callable[[], ClusterPreset]] = {
    "xeon": xeon_cluster,
    "powerpc": powerpc_cluster,
    "opteron": opteron_cluster,
    "itanium": itanium_node,
}


class TracingSession:
    """One experiment context: platform + placement + timer + seed.

    Parameters
    ----------
    platform:
        One of :data:`PLATFORMS` ("xeon", "powerpc", "opteron",
        "itanium") or a :class:`ClusterPreset`.
    nprocs:
        Job size.
    placement:
        "spread" (one process per node, Table I inter-node style) or
        "scheduler" (packed, scheduler-chosen, the Fig. 7 scenario), or
        an explicit :class:`Pinning`.
    timer:
        Timer technology; ``None`` uses the platform's paper default.
    seed:
        Deprecated — pass ``options=RunOptions(seed=...)``.  Root seed
        for all randomness.
    duration_hint:
        Upper bound on the run's true-time length, seconds.
    jitter:
        OS-noise model; defaults to a modest compute-node profile.
    options:
        A :class:`repro.options.RunOptions`; ``seed``, ``engine``, and
        ``telemetry`` configure every :meth:`trace` run of the session.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder`; overrides
        ``options.telemetry`` when both are given.
    """

    def __init__(
        self,
        platform: str | ClusterPreset = "xeon",
        nprocs: int = 4,
        placement: str | Pinning = "spread",
        timer: Optional[str] = None,
        seed: int = _UNSET,
        duration_hint: float = 3700.0,
        jitter: Optional[OsJitterModel] = None,
        *,
        options: Optional[RunOptions] = None,
        telemetry=None,
    ) -> None:
        options = resolve_options(options, caller="TracingSession", seed=seed)
        if telemetry is not None:
            options = options.replace(telemetry=telemetry)
        self.options = options
        seed = options.resolved_seed(0)
        if isinstance(platform, str):
            if platform not in PLATFORMS:
                raise ConfigurationError(
                    f"unknown platform {platform!r}; options: {sorted(PLATFORMS)}"
                )
            platform = PLATFORMS[platform]()
        self.preset = platform
        self.seed = seed
        if isinstance(placement, Pinning):
            pin = placement
        elif placement == "spread":
            pin = inter_node(self.preset.machine, nprocs)
        elif placement == "scheduler":
            pin = scheduler_default(
                self.preset.machine, nprocs, RngFabric(seed).generator("placement")
            )
        else:
            raise ConfigurationError(
                f"unknown placement {placement!r} (use 'spread', 'scheduler', or a Pinning)"
            )
        self.world = MpiWorld(
            self.preset,
            pin,
            timer=timer,
            seed=seed,
            duration_hint=duration_hint,
            jitter=jitter if jitter is not None else OsJitterModel.compute_node(),
        )

    # ------------------------------------------------------------------
    @property
    def pinning(self) -> Pinning:
        return self.world.pinning

    def trace(self, worker, **run_kwargs) -> RunResult:
        """Run ``worker`` under tracing with offset measurements.

        The session's :class:`~repro.options.RunOptions` (engine,
        telemetry) apply unless ``run_kwargs`` overrides ``options=``
        (or the deprecated ``engine=``, which then warns in
        ``world.run``).
        """
        if "engine" not in run_kwargs:
            run_kwargs.setdefault("options", self.options)
        return self.world.run(worker, tracing=True, measure_offsets=True, **run_kwargs)

    def lmin_matrix(self, trace=None) -> np.ndarray:
        """Pairwise minimum-latency floors for the session's placement."""
        n = self.pinning.nranks
        mat = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    mat[i, j] = self.world.min_latency(i, j)
        return mat

    def synchronize(
        self,
        run: RunResult,
        interpolation: str = "linear",
        apply_clc: bool = True,
        **pipeline_kwargs,
    ) -> PipelineReport:
        """Correct and verify a traced run with the standard pipeline."""
        pipeline_kwargs.setdefault("telemetry", self.options.telemetry)
        pipeline = SyncPipeline(
            interpolation=interpolation, apply_clc=apply_clc, **pipeline_kwargs
        )
        return pipeline.run(run, lmin=self.lmin_matrix())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TracingSession(platform={self.preset.machine.name!r}, "
            f"nprocs={self.pinning.nranks}, timer={self.world.spec.name!r}, "
            f"seed={self.seed})"
        )
