"""High-level public API.

:class:`~repro.core.api.TracingSession` is the one-stop façade a
downstream user starts with: pick a platform, a timer and a placement,
trace a workload, then synchronize and verify the trace with
:class:`~repro.core.pipeline.SyncPipeline` — the full Scalasca-style
chain the paper evaluates (offset measurement -> linear offset
interpolation -> controlled logical clock -> violation check).
"""

from repro.core.api import TracingSession
from repro.core.pipeline import PipelineReport, SyncPipeline

__all__ = ["TracingSession", "SyncPipeline", "PipelineReport"]
