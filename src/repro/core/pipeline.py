"""The timestamp-synchronization pipeline.

Chains the paper's correction stages over one traced run:

1. **interpolate** — linear offset interpolation (Eq. 3) from the
   init/finalize offset measurements (or alignment only, or nothing);
2. **clc** — the controlled logical clock removes residual
   clock-condition violations that interpolation cannot (Section V);
3. **verify** — scan the result; after CLC the trace is violation-free
   by construction, and the report quantifies what each stage achieved.

The pipeline is exactly what the paper argues tools need: *"linear
offset interpolation can significantly increase the accuracy of timings
... but is still insufficient when applied in isolation.  A viable
option for removing remaining inconsistencies is the CLC algorithm."*

Since 1.8 the pipeline is a thin configuration shell over
:func:`repro.core.correct.correct_trace` — the same single code path
the CLI ``sync`` command and the :mod:`repro.service` workers execute,
so "bit-identical under every entry point" is a structural property,
not a test-enforced one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.core.correct import (
    TRACE_ONLY_MODES,
    CorrectionResult,
    StageReport,
    correct_trace,
)
from repro.errors import SynchronizationError
from repro.mpi.runtime import RunResult
from repro.options import RunOptions
from repro.sync.clc import ClcResult
from repro.sync.interpolation import ClockCorrection
from repro.sync.violations import LminSpec
from repro.telemetry import ensure_telemetry
from repro.tracing.trace import Trace

__all__ = ["SyncPipeline", "PipelineReport", "StageReport", "TRACE_ONLY_MODES"]

Interpolation = Literal[
    "none", "align", "linear", "piecewise",
    "regression", "hull", "minmax", "exchange",
]


@dataclass
class PipelineReport:
    """Everything the pipeline produced."""

    trace: Trace  # final corrected trace
    stages: list[StageReport]
    correction: ClockCorrection
    clc: Optional[ClcResult]

    def stage(self, name: str) -> StageReport:
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)

    def summary(self) -> str:
        lines = []
        for s in self.stages:
            lines.append(
                f"{s.stage:12s}: {s.total_violated}/{s.total_checked} "
                f"({100 * s.rate:.3f} %) violations"
            )
        if self.clc is not None:
            lines.append(str(self.clc))
        return "\n".join(lines)


class SyncPipeline:
    """Configured synchronization chain.

    Parameters
    ----------
    interpolation:
        Measurement-based: "linear" (Eq. 3, default), "align" (initial
        offsets only), "piecewise" (init + periodic + final sets; needs
        ``periodic_sync_every > 0``).  Trace-only (no measurements
        required): "regression" / "hull" / "minmax" (Duda-family error
        estimation over a spanning tree) and "exchange"
        (Babaoglu/Drummond collective midpoints).  Or "none".
    apply_clc:
        Run the controlled logical clock after interpolation.
    gamma / amortization_window:
        CLC knobs (see :class:`ControlledLogicalClock`).
    options:
        A :class:`repro.options.RunOptions`; only ``telemetry`` is
        consulted here.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder` recording per-pass
        spans (``sync.interpolate``, ``sync.clc``, ``sync.scan``);
        overrides ``options.telemetry`` when both are given.
    """

    def __init__(
        self,
        interpolation: Interpolation = "linear",
        apply_clc: bool = True,
        gamma: float = 0.99,
        amortization_window: Optional[float] = None,
        *,
        options: Optional[RunOptions] = None,
        telemetry=None,
    ) -> None:
        valid = ("none", "align", "linear", "piecewise") + TRACE_ONLY_MODES
        if interpolation not in valid:
            raise SynchronizationError(f"unknown interpolation mode {interpolation!r}")
        self.interpolation = interpolation
        self.apply_clc = apply_clc
        self.gamma = gamma
        self.amortization_window = amortization_window
        if telemetry is None and options is not None:
            telemetry = options.telemetry
        self.telemetry = ensure_telemetry(telemetry)

    # ------------------------------------------------------------------
    def run(self, result: RunResult, lmin: LminSpec = 0.0) -> PipelineReport:
        """Correct ``result.trace``; returns the staged report.

        ``lmin`` is the clock-condition floor used both for violation
        scans and as the CLC's message-latency bound.
        """
        outcome: CorrectionResult = correct_trace(
            result,
            interpolation=self.interpolation,
            clc=self.apply_clc,
            gamma=self.gamma,
            amortization_window=self.amortization_window,
            lmin=lmin,
            telemetry=self.telemetry,
        )
        return PipelineReport(
            trace=outcome.trace,
            stages=outcome.stages,
            correction=outcome.correction,
            clc=outcome.clc,
        )
