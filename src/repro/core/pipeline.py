"""The timestamp-synchronization pipeline.

Chains the paper's correction stages over one traced run:

1. **interpolate** — linear offset interpolation (Eq. 3) from the
   init/finalize offset measurements (or alignment only, or nothing);
2. **clc** — the controlled logical clock removes residual
   clock-condition violations that interpolation cannot (Section V);
3. **verify** — scan the result; after CLC the trace is violation-free
   by construction, and the report quantifies what each stage achieved.

The pipeline is exactly what the paper argues tools need: *"linear
offset interpolation can significantly increase the accuracy of timings
... but is still insufficient when applied in isolation.  A viable
option for removing remaining inconsistencies is the CLC algorithm."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.errors import SynchronizationError
from repro.mpi.runtime import RunResult
from repro.options import RunOptions
from repro.telemetry import ensure_telemetry
from repro.sync.clc import ClcResult, ControlledLogicalClock
from repro.sync.interpolation import (
    ClockCorrection,
    align_offsets,
    identity_correction,
    linear_interpolation,
    piecewise_interpolation,
)
from repro.sync.violations import LminSpec, ViolationReport, scan_collectives, scan_messages
from repro.tracing.trace import Trace

__all__ = ["SyncPipeline", "PipelineReport", "StageReport"]

Interpolation = Literal[
    "none", "align", "linear", "piecewise",
    "regression", "hull", "minmax", "exchange",
]

#: Modes that derive the correction from the trace itself (no explicit
#: offset measurements needed): Duda-family error estimation over a
#: spanning tree, and Babaoglu/Drummond exchange midpoints.
TRACE_ONLY_MODES = ("regression", "hull", "minmax", "exchange")


@dataclass
class StageReport:
    """Violation counts after one pipeline stage."""

    stage: str
    p2p: ViolationReport
    collective: ViolationReport

    @property
    def total_checked(self) -> int:
        return self.p2p.checked + self.collective.checked

    @property
    def total_violated(self) -> int:
        return self.p2p.violated + self.collective.violated

    @property
    def rate(self) -> float:
        return self.total_violated / self.total_checked if self.total_checked else 0.0


@dataclass
class PipelineReport:
    """Everything the pipeline produced."""

    trace: Trace  # final corrected trace
    stages: list[StageReport]
    correction: ClockCorrection
    clc: Optional[ClcResult]

    def stage(self, name: str) -> StageReport:
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)

    def summary(self) -> str:
        lines = []
        for s in self.stages:
            lines.append(
                f"{s.stage:12s}: {s.total_violated}/{s.total_checked} "
                f"({100 * s.rate:.3f} %) violations"
            )
        if self.clc is not None:
            lines.append(str(self.clc))
        return "\n".join(lines)


class SyncPipeline:
    """Configured synchronization chain.

    Parameters
    ----------
    interpolation:
        Measurement-based: "linear" (Eq. 3, default), "align" (initial
        offsets only), "piecewise" (init + periodic + final sets; needs
        ``periodic_sync_every > 0``).  Trace-only (no measurements
        required): "regression" / "hull" / "minmax" (Duda-family error
        estimation over a spanning tree) and "exchange"
        (Babaoglu/Drummond collective midpoints).  Or "none".
    apply_clc:
        Run the controlled logical clock after interpolation.
    gamma / amortization_window:
        CLC knobs (see :class:`ControlledLogicalClock`).
    options:
        A :class:`repro.options.RunOptions`; only ``telemetry`` is
        consulted here.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder` recording per-pass
        spans (``sync.interpolate``, ``sync.clc``, ``sync.scan``);
        overrides ``options.telemetry`` when both are given.
    """

    def __init__(
        self,
        interpolation: Interpolation = "linear",
        apply_clc: bool = True,
        gamma: float = 0.99,
        amortization_window: Optional[float] = None,
        *,
        options: Optional[RunOptions] = None,
        telemetry=None,
    ) -> None:
        valid = ("none", "align", "linear", "piecewise") + TRACE_ONLY_MODES
        if interpolation not in valid:
            raise SynchronizationError(f"unknown interpolation mode {interpolation!r}")
        self.interpolation = interpolation
        self.apply_clc = apply_clc
        self.gamma = gamma
        self.amortization_window = amortization_window
        if telemetry is None and options is not None:
            telemetry = options.telemetry
        self.telemetry = ensure_telemetry(telemetry)

    # ------------------------------------------------------------------
    def run(self, result: RunResult, lmin: LminSpec = 0.0) -> PipelineReport:
        """Correct ``result.trace``; returns the staged report.

        ``lmin`` is the clock-condition floor used both for violation
        scans and as the CLC's message-latency bound.
        """
        if result.trace is None:
            raise SynchronizationError("run result has no trace (tracing disabled?)")
        tele = self.telemetry
        trace = result.trace
        with tele.span(
            "sync.pipeline", interpolation=self.interpolation, clc=self.apply_clc
        ):
            stages = [self._scan("raw", trace, lmin)]

            with tele.span("sync.interpolate", mode=self.interpolation):
                if self.interpolation == "none":
                    correction = identity_correction()
                elif self.interpolation == "align":
                    if result.init_offsets is None:
                        raise SynchronizationError(
                            "alignment requested but no init offsets measured"
                        )
                    correction = align_offsets(result.init_offsets)
                elif self.interpolation == "piecewise":
                    sets = result.all_measurement_sets()
                    if len(sets) < 2:
                        raise SynchronizationError(
                            "piecewise interpolation needs >= 2 measurement sets "
                            "(enable periodic_sync_every on the world)"
                        )
                    correction = piecewise_interpolation(sets)
                elif self.interpolation in ("regression", "hull", "minmax"):
                    from repro.sync.error_estimation import synchronize_by_spanning_tree

                    correction = synchronize_by_spanning_tree(
                        trace, lmin=lmin, method=self.interpolation
                    )
                elif self.interpolation == "exchange":
                    from repro.sync.exchange import exchange_correction

                    correction = exchange_correction(trace)
                else:
                    if result.init_offsets is None or result.final_offsets is None:
                        raise SynchronizationError(
                            "linear interpolation needs offset measurements at init "
                            "and finalize"
                        )
                    correction = linear_interpolation(
                        result.init_offsets, result.final_offsets
                    )
                trace = correction.apply(trace)
            stages.append(self._scan(self.interpolation, trace, lmin))

            clc_result = None
            if self.apply_clc:
                with tele.span("sync.clc", gamma=self.gamma):
                    clc = ControlledLogicalClock(
                        gamma=self.gamma,
                        amortization_window=self.amortization_window,
                        telemetry=tele,
                    )
                    clc_result = clc.correct(trace, lmin=lmin)
                trace = clc_result.trace
                stages.append(self._scan("clc", trace, lmin))

        return PipelineReport(
            trace=trace, stages=stages, correction=correction, clc=clc_result
        )

    def _scan(self, stage: str, trace: Trace, lmin: LminSpec) -> StageReport:
        with self.telemetry.span("sync.scan", stage=stage):
            p2p = scan_messages(trace.messages(strict=False), lmin)
            coll, _ = scan_collectives(trace, lmin)
        return StageReport(stage=stage, p2p=p2p, collective=coll)
