"""The one-call correction facade: :func:`correct_trace`.

Every way this package corrects a trace — the ``repro sync`` CLI, the
:class:`~repro.core.pipeline.SyncPipeline` behind
``TracingSession.synchronize``, the trace-correction service workers of
:mod:`repro.service`, and direct Python callers — goes through this one
function, so the contract "interpolation then CLC, scans between
stages, bit-identical everywhere" is enforced in exactly one place::

    from repro import correct_trace
    result = correct_trace("run.npz", interpolation="linear", clc=True)
    print(result.summary())
    result.trace          # the corrected Trace

Sources it accepts:

* a :class:`~repro.tracing.trace.Trace` (offset measurements read from
  ``trace.meta`` like the CLI does);
* a :class:`~repro.mpi.runtime.RunResult` (measurements taken from the
  run itself, enabling ``piecewise`` interpolation);
* a path to a ``.npz`` / ``.jsonl`` trace file;
* a sharded trace directory (or
  :class:`~repro.tracing.store.ChunkedTrace`), corrected out-of-core by
  the bounded-memory kernels of :mod:`repro.sync.streaming` — this path
  requires ``output`` and supports the streaming-safe interpolation
  modes (``none`` / ``align`` / ``linear``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import SynchronizationError, TraceFormatError
from repro.mpi.runtime import RunResult
from repro.options import RunOptions
from repro.sync.clc import ClcResult, ControlledLogicalClock
from repro.sync.interpolation import (
    ClockCorrection,
    align_offsets,
    identity_correction,
    linear_interpolation,
    piecewise_interpolation,
)
from repro.sync.offset import OffsetMeasurement
from repro.sync.violations import (
    LminSpec,
    ViolationReport,
    scan_collectives,
    scan_messages,
)
from repro.telemetry import ensure_telemetry
from repro.tracing.trace import Trace

__all__ = [
    "CorrectionResult",
    "StageReport",
    "correct_trace",
    "measurements_from_meta",
    "scan_source",
    "INTERPOLATIONS",
    "STREAMING_INTERPOLATIONS",
    "TRACE_ONLY_MODES",
]

#: Modes that derive the correction from the trace itself (no explicit
#: offset measurements needed): Duda-family error estimation over a
#: spanning tree, and Babaoglu/Drummond exchange midpoints.
TRACE_ONLY_MODES = ("regression", "hull", "minmax", "exchange")

#: Every interpolation mode :func:`correct_trace` accepts.
INTERPOLATIONS = ("none", "align", "linear", "piecewise") + TRACE_ONLY_MODES

#: Modes the bounded-memory streaming path supports (a sharded trace is
#: never materialized, so whole-trace modes are refused with guidance).
STREAMING_INTERPOLATIONS = ("none", "align", "linear")


@dataclass
class StageReport:
    """Violation counts after one correction stage."""

    stage: str
    p2p: ViolationReport
    collective: ViolationReport

    @property
    def total_checked(self) -> int:
        return self.p2p.checked + self.collective.checked

    @property
    def total_violated(self) -> int:
        return self.p2p.violated + self.collective.violated

    @property
    def rate(self) -> float:
        return self.total_violated / self.total_checked if self.total_checked else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the service's violation report rides on this)."""
        return {
            "stage": self.stage,
            "p2p": {"checked": self.p2p.checked, "violated": self.p2p.violated},
            "collective": {
                "checked": self.collective.checked,
                "violated": self.collective.violated,
            },
        }


@dataclass
class CorrectionResult:
    """Everything :func:`correct_trace` produced.

    ``trace`` is the corrected trace — a :class:`Trace` for materialized
    sources, a :class:`~repro.tracing.store.ChunkedTrace` over the
    ``output`` directory for streamed ones.  ``stages`` holds the
    violation scans in order (``raw``, the interpolation mode, ``clc``)
    when scanning was requested; ``report_before`` / ``report_after``
    are its ends.
    """

    trace: object
    stages: list[StageReport]
    correction: Optional[ClockCorrection]
    clc: Optional[ClcResult]
    interpolation: str
    applied_clc: bool
    streamed: bool = False
    output: Optional[Path] = None
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def report_before(self) -> Optional[StageReport]:
        return self.stages[0] if self.stages else None

    @property
    def report_after(self) -> Optional[StageReport]:
        return self.stages[-1] if self.stages else None

    def stage(self, name: str) -> StageReport:
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON-ready summary (stages + CLC stats), no trace payload."""
        out = {
            "interpolation": self.interpolation,
            "clc": self.applied_clc,
            "streamed": self.streamed,
            "stages": [s.to_dict() for s in self.stages],
            "timings": dict(self.timings),
        }
        if self.clc is not None:
            out["clc_stats"] = {
                "jumps": int(self.clc.jumps),
                "max_shift": float(self.clc.max_shift),
            }
        return out

    def summary(self) -> str:
        lines = []
        for s in self.stages:
            lines.append(
                f"{s.stage:12s}: {s.total_violated}/{s.total_checked} "
                f"({100 * s.rate:.3f} %) violations"
            )
        if self.clc is not None:
            lines.append(str(self.clc))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Source normalization
# ----------------------------------------------------------------------
def measurements_from_meta(
    meta: dict, key: str
) -> Optional[dict[int, OffsetMeasurement]]:
    """Rebuild offset measurements embedded in trace metadata.

    Serialized traces carry ``init_offsets`` / ``final_offsets`` as
    ``{rank: (worker_time, offset)}``; RTT and repeat counts are not
    persisted (interpolation needs neither).
    """
    raw = meta.get(key)
    if raw is None:
        return None
    return {
        int(r): OffsetMeasurement(
            worker=int(r), worker_time=float(w), offset=float(o), rtt=0.0, repeats=0
        )
        for r, (w, o) in raw.items()
    }


def _is_chunked(source) -> bool:
    from repro.tracing.store import ChunkedTrace

    return isinstance(source, ChunkedTrace)


def _normalize_source(source):
    """Resolve ``source`` to ``(trace_or_chunked, run_result_or_None)``."""
    from repro.tracing.store import ChunkedTrace, is_sharded_trace_dir

    if isinstance(source, RunResult):
        if source.trace is None:
            raise SynchronizationError(
                "run result has no trace (tracing disabled?)"
            )
        return source.trace, source
    if isinstance(source, (Trace, ChunkedTrace)):
        return source, None
    if isinstance(source, (str, Path)):
        path = Path(source)
        if is_sharded_trace_dir(path):
            return ChunkedTrace(path), None
        from repro.tracing.reader import read_trace

        return read_trace(path), None
    raise TraceFormatError(
        f"cannot correct a {type(source).__name__!r}: pass a Trace, a "
        "RunResult, a ChunkedTrace, or a path to a trace file / sharded "
        "trace directory"
    )


def scan_source(source, lmin: LminSpec = 0.0) -> dict[str, ViolationReport]:
    """Violation scan of any :func:`correct_trace` source.

    Returns ``{"p2p": ..., "collective": ...}``; sharded sources stream
    one shard at a time through
    :func:`repro.sync.streaming.streaming_scan_trace`.
    """
    trace, _ = _normalize_source(source)
    if _is_chunked(trace):
        from repro.sync.streaming import streaming_scan_trace

        reports = streaming_scan_trace(trace, lmin=lmin)
        return {"p2p": reports["p2p"], "collective": reports["collective"]}
    p2p = scan_messages(trace.messages(strict=False), lmin)
    coll, _ = scan_collectives(trace, lmin)
    return {"p2p": p2p, "collective": coll}


def _scan_stage(stage: str, trace, lmin: LminSpec, telemetry) -> StageReport:
    with telemetry.span("sync.scan", stage=stage):
        if _is_chunked(trace):
            from repro.sync.streaming import streaming_scan_trace

            reports = streaming_scan_trace(trace, lmin=lmin)
            return StageReport(
                stage=stage, p2p=reports["p2p"], collective=reports["collective"]
            )
        p2p = scan_messages(trace.messages(strict=False), lmin)
        coll, _ = scan_collectives(trace, lmin)
    return StageReport(stage=stage, p2p=p2p, collective=coll)


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def correct_trace(
    source: Union[Trace, RunResult, str, Path, object],
    *,
    interpolation: str = "linear",
    clc: bool = True,
    gamma: float = 0.99,
    lmin: LminSpec = 0.0,
    amortization_window: Optional[float] = None,
    scan: bool = True,
    output: Union[str, Path, None] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
) -> CorrectionResult:
    """Correct ``source``'s timestamps; the package's single code path.

    Parameters
    ----------
    source:
        What to correct — see the module docstring for accepted kinds.
    interpolation:
        One of :data:`INTERPOLATIONS`.  ``piecewise`` needs a
        :class:`RunResult` source with >= 2 measurement sets; the
        trace-only modes need no measurements at all; sharded sources
        support :data:`STREAMING_INTERPOLATIONS` only.
    clc:
        Apply the controlled logical clock after interpolation.
    gamma / amortization_window:
        CLC knobs (see :class:`ControlledLogicalClock`).
    lmin:
        Clock-condition floor — used for the violation scans and as the
        CLC's message-latency bound.
    scan:
        Scan for violations before/after each stage.  Disable to skip
        the scans (the corrected trace is identical either way).
    output:
        Optional destination: a ``.npz`` / ``.jsonl`` path for
        materialized sources, a directory for sharded ones (where it is
        *required* — the streamed result only exists on disk).
    options / telemetry:
        A :class:`RunOptions` (only ``telemetry`` is consulted) or an
        explicit recorder (takes precedence).

    Returns
    -------
    CorrectionResult
    """
    if interpolation not in INTERPOLATIONS:
        raise SynchronizationError(f"unknown interpolation mode {interpolation!r}")
    if telemetry is None and options is not None:
        telemetry = options.telemetry
    tele = ensure_telemetry(telemetry)

    trace, run = _normalize_source(source)
    if _is_chunked(trace):
        return _correct_streaming(
            trace,
            interpolation=interpolation,
            clc=clc,
            gamma=gamma,
            lmin=lmin,
            scan=scan,
            output=output,
            telemetry=tele,
        )

    timings: dict[str, float] = {}
    with tele.span("sync.pipeline", interpolation=interpolation, clc=clc):
        stages = [_scan_stage("raw", trace, lmin, tele)] if scan else []

        start = time.perf_counter()
        with tele.span("sync.interpolate", mode=interpolation):
            correction = _build_correction(trace, run, interpolation, lmin)
            trace = correction.apply(trace)
        timings["interpolate"] = time.perf_counter() - start
        if scan:
            stages.append(_scan_stage(interpolation, trace, lmin, tele))

        clc_result = None
        if clc:
            start = time.perf_counter()
            with tele.span("sync.clc", gamma=gamma):
                corrector = ControlledLogicalClock(
                    gamma=gamma,
                    amortization_window=amortization_window,
                    telemetry=tele,
                )
                clc_result = corrector.correct(trace, lmin=lmin)
            trace = clc_result.trace
            timings["clc"] = time.perf_counter() - start
            if scan:
                stages.append(_scan_stage("clc", trace, lmin, tele))

    out_path = None
    if output is not None:
        from repro.tracing.writer import write_trace

        out_path = write_trace(trace, output)

    return CorrectionResult(
        trace=trace,
        stages=stages,
        correction=correction,
        clc=clc_result,
        interpolation=interpolation,
        applied_clc=clc,
        output=out_path,
        timings=timings,
    )


def _build_correction(
    trace: Trace, run: Optional[RunResult], interpolation: str, lmin: LminSpec
) -> ClockCorrection:
    """The interpolation stage's correction, from run or trace metadata."""
    if interpolation == "none":
        return identity_correction()
    if interpolation in ("regression", "hull", "minmax"):
        from repro.sync.error_estimation import synchronize_by_spanning_tree

        return synchronize_by_spanning_tree(trace, lmin=lmin, method=interpolation)
    if interpolation == "exchange":
        from repro.sync.exchange import exchange_correction

        return exchange_correction(trace)
    if interpolation == "piecewise":
        if run is None:
            raise SynchronizationError(
                "piecewise interpolation needs a RunResult source (its "
                "periodic measurement sets are not persisted in traces)"
            )
        sets = run.all_measurement_sets()
        if len(sets) < 2:
            raise SynchronizationError(
                "piecewise interpolation needs >= 2 measurement sets "
                "(enable periodic_sync_every on the world)"
            )
        return piecewise_interpolation(sets)

    # Measurement-based modes: from the run when available, else from
    # the measurements serialized into the trace metadata.
    if run is not None:
        init, final = run.init_offsets, run.final_offsets
    else:
        init = measurements_from_meta(trace.meta, "init_offsets")
        final = measurements_from_meta(trace.meta, "final_offsets")
    if init is None:
        raise SynchronizationError(
            "alignment requested but no init offsets measured"
            if interpolation == "align"
            else "trace has no offset measurements (metadata or run result)"
        )
    if interpolation == "align":
        return align_offsets(init)
    if final is None:
        raise SynchronizationError(
            "linear interpolation needs offset measurements at init and "
            "finalize; use interpolation='align' for init-only traces"
        )
    return linear_interpolation(init, final)


def _correct_streaming(
    chunked,
    *,
    interpolation: str,
    clc: bool,
    gamma: float,
    lmin,
    scan: bool,
    output,
    telemetry,
) -> CorrectionResult:
    """Bounded-memory correction of a sharded trace into ``output``."""
    import tempfile

    from repro.sync.streaming import (
        streaming_apply_correction,
        streaming_clc_correct,
    )
    from repro.tracing.store import ChunkedTrace

    if interpolation not in STREAMING_INTERPOLATIONS:
        raise SynchronizationError(
            f"interpolation {interpolation!r} needs the whole trace in "
            "memory; sharded trace directories support "
            f"{', '.join(STREAMING_INTERPOLATIONS)} (materialize the trace "
            "first for the others)"
        )
    if interpolation == "none" and not clc:
        raise SynchronizationError(
            "nothing to apply to a sharded trace: interpolation 'none' "
            "without clc (use scan_source for a scan-only pass)"
        )
    if output is None:
        raise SynchronizationError(
            "correcting a sharded trace requires output= (the streamed "
            "result is written shard by shard, never materialized)"
        )
    if not isinstance(lmin, (int, float)):
        raise SynchronizationError(
            "streaming correction takes a scalar lmin floor"
        )
    output = Path(output)

    timings: dict[str, float] = {}
    stages = [_scan_stage("raw", chunked, lmin, telemetry)] if scan else []

    correction = None
    if interpolation != "none":
        init = measurements_from_meta(chunked.meta, "init_offsets")
        final = measurements_from_meta(chunked.meta, "final_offsets")
        if init is None:
            raise SynchronizationError(
                "trace has no offset measurements in metadata"
            )
        if interpolation == "align":
            correction = align_offsets(init)
        else:
            if final is None:
                raise SynchronizationError(
                    "trace has no final offsets; use interpolation='align'"
                )
            correction = linear_interpolation(init, final)

    source = chunked
    clc_result = None
    with tempfile.TemporaryDirectory(prefix="repro-correct-") as tmp:
        if correction is not None:
            start = time.perf_counter()
            dest = f"{tmp}/interp" if clc else output
            source = streaming_apply_correction(
                correction, source, dest, telemetry=telemetry
            )
            timings["interpolate"] = time.perf_counter() - start
            if scan:
                stages.append(_scan_stage(interpolation, source, lmin, telemetry))
        if clc:
            start = time.perf_counter()
            clc_result = streaming_clc_correct(
                source, output, gamma=gamma, lmin=lmin, telemetry=telemetry
            )
            timings["clc"] = time.perf_counter() - start

    corrected = ChunkedTrace(output)
    if clc and scan:
        stages.append(_scan_stage("clc", corrected, lmin, telemetry))

    return CorrectionResult(
        trace=corrected,
        stages=stages,
        correction=correction,
        clc=clc_result,
        interpolation=interpolation,
        applied_clc=clc,
        streamed=True,
        output=output,
        timings=timings,
    )
