"""Region time profiles — and why clock errors (mostly) spare them.

A classic profile — inclusive/exclusive time per code region per rank —
is built entirely from *local interval lengths* (exit minus enter on the
same clock).  Constant clock offsets cancel out of every interval, and
ppm-scale drift perturbs a one-millisecond region by only nanoseconds.
Cross-process *orderings*, by contrast, feel the full offset.  That
asymmetry is implicit throughout the paper: timestamps are "taken on
most cluster nodes ... from insufficiently synchronized local clocks",
yet tracing tools still get per-region timings right — it is the
happened-before analyses (Section III's clock condition) that break.

:func:`region_profile` computes the profile; the test suite verifies
the asymmetry quantitatively (profiles agree across timer technologies
to ppm while orderings diverge completely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.tracing.events import EventType
from repro.tracing.trace import Trace

__all__ = ["RegionProfile", "region_profile"]

#: Event types that open/close a profiled region, paired.
_OPEN_CLOSE = {
    int(EventType.ENTER): int(EventType.EXIT),
    int(EventType.COLL_ENTER): int(EventType.COLL_EXIT),
    int(EventType.OMP_PAR_ENTER): int(EventType.OMP_PAR_EXIT),
    int(EventType.OMP_BARRIER_ENTER): int(EventType.OMP_BARRIER_EXIT),
}
_CLOSERS = set(_OPEN_CLOSE.values())


@dataclass
class RegionProfile:
    """Per-(rank, region) inclusive/exclusive times and visit counts.

    ``region`` keys are the ``a`` attribute of ENTER/EXIT events (the
    region id) and, for collectives, ``-(op + 1)`` so they can't clash
    with user region ids.
    """

    inclusive: dict[tuple[int, int], float] = field(default_factory=dict)
    exclusive: dict[tuple[int, int], float] = field(default_factory=dict)
    visits: dict[tuple[int, int], int] = field(default_factory=dict)

    def by_region(self, kind: str = "inclusive") -> dict[int, float]:
        """Aggregate a metric over ranks, per region id."""
        source = {"inclusive": self.inclusive, "exclusive": self.exclusive}[kind]
        out: dict[int, float] = {}
        for (_, region), value in source.items():
            out[region] = out.get(region, 0.0) + value
        return out

    def total_time(self, rank: int | None = None) -> float:
        """Sum of inclusive times over (rank, region) pairs.

        Nested regions contribute to their own entry *and* to their
        parents' inclusive time, like any callpath-less flat profile.
        """
        return sum(
            v for (r, _), v in self.inclusive.items() if rank is None or r == rank
        )

    def rank_region(self, rank: int, region: int) -> tuple[float, float, int]:
        """(inclusive, exclusive, visits) for one rank/region pair."""
        key = (rank, region)
        return (
            self.inclusive.get(key, 0.0),
            self.exclusive.get(key, 0.0),
            self.visits.get(key, 0),
        )


def _region_key(etype: int, a: int) -> int:
    if etype in (int(EventType.COLL_ENTER), int(EventType.COLL_EXIT)):
        return -(a + 1)  # collective op id, kept clear of user region ids
    return a


def region_profile(trace: Trace) -> RegionProfile:
    """Walk each rank's enter/exit nesting and accumulate times.

    Raises :class:`TraceError` on unbalanced enter/exit nesting (a
    truncated or corrupt trace).  SEND/RECV and fork/join events inside
    a region count toward its exclusive time (they are not regions).
    """
    profile = RegionProfile()
    for rank in trace.ranks:
        log = trace.logs[rank]
        ts, et, a = log.timestamps, log.etypes, log.a
        # Stack of (region_key, enter_ts, child_time).
        stack: list[list] = []
        for i in range(len(log)):
            kind = int(et[i])
            if kind in _OPEN_CLOSE:
                stack.append([_region_key(kind, int(a[i])), float(ts[i]), 0.0])
            elif kind in _CLOSERS:
                if not stack:
                    raise TraceError(
                        f"rank {rank}: region exit at index {i} without matching enter"
                    )
                region, t_enter, child_time = stack.pop()
                expected = _region_key(kind, int(a[i]))
                if expected != region:
                    raise TraceError(
                        f"rank {rank}: mismatched region nesting at index {i} "
                        f"(open {region}, close {expected})"
                    )
                span = float(ts[i]) - t_enter
                key = (rank, region)
                profile.inclusive[key] = profile.inclusive.get(key, 0.0) + span
                profile.exclusive[key] = (
                    profile.exclusive.get(key, 0.0) + span - child_time
                )
                profile.visits[key] = profile.visits.get(key, 0) + 1
                if stack:
                    stack[-1][2] += span
        if stack:
            raise TraceError(
                f"rank {rank}: {len(stack)} region(s) never exited (truncated trace?)"
            )
    return profile
