"""Repeated-probe clock-deviation measurement (Figs. 4, 5, 6).

The paper's deviation curves are sequences of offset measurements
between a master and each worker, replotted after a correction scheme:

* Fig. 4 — "after an initial alignment of offsets": subtract the first
  measured offset; the residual shows the raw (non-)constancy of drift;
* Fig. 5/6 — "after linear offset interpolation": subtract the line
  through the first and last measurements ("with an expected convergence
  of offsets at the end"); the residual is what Eq. 3 cannot remove.

:func:`measure_deviation` runs exactly that protocol in simulation —
the master performs a best-of-N Cristian exchange with every worker at
each probe epoch (the same estimator the tools use, so measurement
error behaves realistically) — and returns per-worker series with both
correction views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machines import ClusterPreset
from repro.cluster.pinning import Pinning
from repro.errors import ConfigurationError
from repro.mpi.runtime import MpiWorld
from repro.sync.offset import SYNC_TAG, cristian_offset

__all__ = ["DeviationSeries", "measure_deviation"]


@dataclass
class DeviationSeries:
    """Offset-probe series for one master/worker pair.

    Attributes
    ----------
    worker:
        Worker rank.
    times:
        Worker-clock times of the probes (abscissa), seconds.
    offsets:
        Measured master-minus-worker offsets, seconds.
    """

    worker: int
    times: np.ndarray
    offsets: np.ndarray

    def aligned(self) -> np.ndarray:
        """Residual after initial offset alignment (Fig. 4 view)."""
        return self.offsets - self.offsets[0]

    def interpolated(self) -> np.ndarray:
        """Residual after two-point linear interpolation (Fig. 5 view)."""
        if self.times.size < 2:
            return np.zeros_like(self.offsets)
        t0, t1 = self.times[0], self.times[-1]
        o0, o1 = self.offsets[0], self.offsets[-1]
        line = o0 + (o1 - o0) * (self.times - t0) / (t1 - t0)
        return self.offsets - line

    def max_abs(self, corrected: str = "interpolated") -> float:
        """Largest absolute residual under a correction view."""
        series = self.interpolated() if corrected == "interpolated" else self.aligned()
        return float(np.abs(series).max()) if series.size else 0.0

    def first_exceeding(self, threshold: float, corrected: str = "interpolated") -> float | None:
        """Elapsed run time (since the first probe) at which |residual|
        first exceeds ``threshold`` (None if it never does) —
        "deviations exceeded the message latency already after a few
        minutes"."""
        series = self.interpolated() if corrected == "interpolated" else self.aligned()
        idx = np.nonzero(np.abs(series) > threshold)[0]
        return float(self.times[idx[0]] - self.times[0]) if idx.size else None


def measure_deviation(
    preset: ClusterPreset,
    pinning: Pinning,
    timer: str,
    duration: float,
    probe_interval: float = 5.0,
    repeats: int = 10,
    seed: int = 0,
    master: int = 0,
) -> dict[int, DeviationSeries]:
    """Run the probe protocol; returns ``{worker: DeviationSeries}``.

    The master probes each worker every ``probe_interval`` seconds of
    true time for ``duration`` seconds, each probe being a best-of-
    ``repeats`` Cristian exchange.
    """
    if duration <= 0 or probe_interval <= 0:
        raise ConfigurationError("duration and probe_interval must be positive")
    nprobes = int(duration / probe_interval)
    if nprobes < 2:
        raise ConfigurationError("need at least two probes for interpolation")
    nworkers = pinning.nranks - 1
    if nworkers < 1:
        raise ConfigurationError("need at least one worker")

    world = MpiWorld(preset, pinning, timer=timer, seed=seed, duration_hint=duration * 1.05)

    def probe_master(ctx):
        series: dict[int, tuple[list, list]] = {
            w: ([], []) for w in range(ctx.size) if w != master
        }
        for k in range(nprobes):
            # Busy-wait until the next probe epoch of true time.  The
            # master cannot see true time; it spaces probes with its own
            # clock, like a real tool would (ppm errors are irrelevant
            # to the probe spacing).
            for worker in series:
                best_rtt = np.inf
                best = (0.0, 0.0)
                for _ in range(repeats):
                    t1 = yield from ctx.wtime()
                    yield from ctx.send_raw(worker, tag=SYNC_TAG, nbytes=8)
                    msg = yield from ctx.recv_raw(src=worker, tag=SYNC_TAG)
                    t2 = yield from ctx.wtime()
                    if t2 - t1 < best_rtt:
                        best_rtt = t2 - t1
                        best = (msg.payload, cristian_offset(t1, msg.payload, t2))
                series[worker][0].append(best[0])
                series[worker][1].append(best[1])
            yield from ctx.sleep(probe_interval)
        return {
            w: (np.asarray(t), np.asarray(o)) for w, (t, o) in series.items()
        }

    def probe_worker(ctx):
        for _ in range(nprobes * repeats):
            yield from ctx.recv_raw(src=master, tag=SYNC_TAG)
            t0 = yield from ctx.wtime()
            yield from ctx.send_raw(master, tag=SYNC_TAG, nbytes=8, payload=t0)
        return None

    def worker(ctx):
        if ctx.rank == master:
            return (yield from probe_master(ctx))
        return (yield from probe_worker(ctx))

    result = world.run(worker, tracing=False, measure_offsets=False)
    raw = result.results[master]
    return {
        w: DeviationSeries(worker=w, times=t, offsets=o) for w, (t, o) in raw.items()
    }
