"""ASCII time-line rendering of traces (the VAMPIR-view stand-in).

The paper motivates violations partly through visualization: backward
arrows in VAMPIR time-line views "confuse the user", and Fig. 3 is a
time-line screenshot.  This module renders a window of a trace as text:
one lane per rank/thread, region occupancy as bars, messages as
arrow annotations — enough to *see* a receive-before-send or a barrier
left early without a GUI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.tracing.events import EventType
from repro.tracing.trace import Trace

__all__ = ["render_timeline", "render_message_arrows", "TimelineOptions"]


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering knobs."""

    width: int = 72  # characters per lane
    lane_char: str = "#"  # region occupancy
    idle_char: str = " "  # outside regions


def _window(trace: Trace, t0: float | None, t1: float | None) -> tuple[float, float]:
    ts_min = min(
        float(trace.logs[r].timestamps.min()) for r in trace.ranks if len(trace.logs[r])
    )
    ts_max = max(
        float(trace.logs[r].timestamps.max()) for r in trace.ranks if len(trace.logs[r])
    )
    lo = ts_min if t0 is None else t0
    hi = ts_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-9
    return lo, hi


def render_timeline(
    trace: Trace,
    t0: float | None = None,
    t1: float | None = None,
    options: TimelineOptions = TimelineOptions(),
) -> str:
    """Render region occupancy per rank over ``[t0, t1]``.

    A rank is "busy" between each matched ENTER/EXIT pair (any region
    id) and between collective/barrier enter and exit events; nesting is
    flattened (depth > 0 renders the same).
    """
    if not any(len(trace.logs[r]) for r in trace.ranks):
        raise TraceError("cannot render an empty trace")
    lo, hi = _window(trace, t0, t1)
    width = options.width
    scale = (width - 1) / (hi - lo)

    opens = {
        int(EventType.ENTER),
        int(EventType.COLL_ENTER),
        int(EventType.OMP_PAR_ENTER),
        int(EventType.OMP_BARRIER_ENTER),
    }
    closes = {
        int(EventType.EXIT),
        int(EventType.COLL_EXIT),
        int(EventType.OMP_PAR_EXIT),
        int(EventType.OMP_BARRIER_EXIT),
    }

    lines = []
    for rank in trace.ranks:
        log = trace.logs[rank]
        lane = np.zeros(width, dtype=np.int32)
        depth = 0
        last_t = lo
        for i in range(len(log)):
            et = int(log.etypes[i])
            t = float(log.timestamps[i])
            if depth > 0:
                a = int(np.clip((max(last_t, lo) - lo) * scale, 0, width - 1))
                b = int(np.clip((min(t, hi) - lo) * scale, 0, width - 1))
                lane[a : b + 1] += 1
            if et in opens:
                depth += 1
                last_t = t
            elif et in closes:
                depth = max(depth - 1, 0)
                last_t = t
        chars = "".join(
            options.lane_char if v > 0 else options.idle_char for v in lane
        )
        lines.append(f"rank {rank:>3} |{chars}|")
    header = f"timeline {lo:.6f}s .. {hi:.6f}s ({(hi - lo) * 1e6:.2f} us window)"
    return "\n".join([header] + lines)


def render_message_arrows(
    trace: Trace,
    t0: float | None = None,
    t1: float | None = None,
    limit: int = 20,
    lmin: float = 0.0,
) -> str:
    """List messages in the window, flagging backward (violating) ones.

    The text analogue of VAMPIR's "arrows pointing backward in time-line
    views"; violating messages are marked ``<-- BACKWARD``.
    """
    lo, hi = _window(trace, t0, t1)
    msgs = trace.messages(strict=False)
    lines = []
    shown = 0
    order = np.argsort(msgs.send_ts)
    for k in order:
        s, r = float(msgs.send_ts[k]), float(msgs.recv_ts[k])
        if s < lo or s > hi:
            continue
        if shown >= limit:
            lines.append(f"... ({len(msgs)} messages total)")
            break
        flag = "  <-- BACKWARD" if r < s + lmin else ""
        lines.append(
            f"  {int(msgs.src[k]):>3} -> {int(msgs.dst[k]):>3}  "
            f"send {s:.9f}  recv {r:.9f}  dt {(r - s) * 1e6:+9.3f} us{flag}"
        )
        shown += 1
    if not lines:
        lines.append("  (no messages in window)")
    return "\n".join(lines)
