"""In-simulation latency measurement (Table II).

Runs the ping-pong / collective kernels of
:mod:`repro.workloads.pingpong` under a given pinning and reports the
quantities Table II lists per placement (inter-node / inter-chip /
inter-core message latency and the inter-node collective latency) as a
full :class:`repro.stats.SampleSummary`: mean, median, a Student t
confidence interval at a configurable level, an optional deterministic
bootstrap interval, and — when ``runs > 1`` or a
:class:`repro.stats.StoppingRule` asks for repetitions — the run-to-run
variance across independent simulations (distinct derived seeds).

Note that these are *measured through the simulated clocks*, exactly
like the paper's numbers: the reported mean includes clock read
overheads and send/receive software overheads on top of the wire floor,
and the spread reflects network jitter, OS noise and timer quantization.

Migration note (1.7): :class:`LatencyStats` now stores ``label``,
``floor`` and a ``summary``; the former ``mean`` / ``std`` /
``std_of_mean`` / ``samples`` fields remain available as read-only
properties delegating to the summary, so existing consumers keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machines import ClusterPreset
from repro.cluster.pinning import Pinning
from repro.mpi.runtime import MpiWorld
from repro.options import RunOptions
from repro.rng import stable_hash32
from repro.stats import DEFAULT_LEVEL, SampleSummary, StoppingRule, collect_runs, summarize
from repro.workloads.pingpong import collective_timing_worker, pingpong_worker

__all__ = ["LatencyStats", "measure_latency", "measure_collective_latency"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency measurement with its uncertainty."""

    label: str
    floor: float  # the model's l_min for this placement
    summary: SampleSummary

    @property
    def mean(self) -> float:  # seconds
        return self.summary.mean

    @property
    def median(self) -> float:  # seconds
        return self.summary.median

    @property
    def std(self) -> float:  # seconds (std dev of individual samples)
        return self.summary.std

    @property
    def std_of_mean(self) -> float:  # seconds (std dev of the mean estimate)
        return self.summary.std_of_mean

    @property
    def samples(self) -> int:
        return self.summary.n

    @property
    def runs(self) -> int:
        return self.summary.runs

    @property
    def ci(self) -> tuple[float, float]:
        return self.summary.ci_lower, self.summary.ci_upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: {self.summary.describe(unit_scale=1e6, unit='us')}"


def _stats(label: str, samples: np.ndarray, floor: float,
           level: float = DEFAULT_LEVEL) -> LatencyStats:
    """Summarize one run's samples (kept for single-run callers)."""
    return LatencyStats(label=label, floor=floor,
                        summary=summarize(samples, level=level))


def _measure(
    worker_factory,
    preset: ClusterPreset,
    pinning: Pinning,
    repeats: int,
    nbytes: int,
    seed: int,
    timer: str | None,
    label: str,
    engine: str,
    telemetry,
    duration_scale: float,
    runs: int,
    level: float,
    bootstrap: int,
    stopping: StoppingRule | None,
) -> LatencyStats:
    """Shared repetition loop behind both measurement entry points.

    Run 0 uses the base seed itself (a single-run measurement is
    bit-identical to pre-1.7 output); later runs derive independent
    seeds from ``(seed, label, run)``.
    """
    floor = preset.latency.min_latency(pinning[0], pinning[1], nbytes)

    def one_run(run_index: int) -> np.ndarray:
        run_seed = seed if run_index == 0 else stable_hash32(
            ("seed", int(seed)), "latency", label, run_index
        )
        world = MpiWorld(
            preset,
            pinning,
            timer=timer,
            seed=run_seed,
            duration_hint=max(repeats * duration_scale, 10.0),
        )
        result = world.run(
            worker_factory(repeats=repeats, nbytes=nbytes),
            tracing=False,
            measure_offsets=False,
            options=RunOptions(engine=engine, telemetry=telemetry),
        )
        return np.asarray(result.results[0], dtype=np.float64)

    run_samples = collect_runs(one_run, runs=runs, stopping=stopping, level=level)
    summary = summarize(
        run_samples, level=level, bootstrap=bootstrap,
        seed=stable_hash32(("seed", int(seed)), "latency-bootstrap", label),
    )
    return LatencyStats(label=label, floor=floor, summary=summary)


def measure_latency(
    preset: ClusterPreset,
    pinning: Pinning,
    repeats: int = 1000,
    nbytes: int = 0,
    seed: int = 0,
    timer: str | None = None,
    label: str | None = None,
    engine: str = "reference",
    telemetry=None,
    runs: int = 1,
    level: float = DEFAULT_LEVEL,
    bootstrap: int = 0,
    stopping: StoppingRule | None = None,
) -> LatencyStats:
    """One-way message latency between ranks 0 and 1 of ``pinning``.

    ``runs`` independent simulations (distinct derived seeds) are pooled
    into one :class:`~repro.stats.SampleSummary`; a ``stopping`` rule
    instead adds runs until the CI is tight enough (see
    :func:`repro.stats.collect_runs`).  ``bootstrap`` > 0 adds a
    deterministic percentile bootstrap interval with that many
    resamples.
    """
    return _measure(
        pingpong_worker, preset, pinning, repeats, nbytes, seed, timer,
        label or pinning.label or "latency", engine, telemetry,
        duration_scale=1e-4, runs=runs, level=level, bootstrap=bootstrap,
        stopping=stopping,
    )


def measure_collective_latency(
    preset: ClusterPreset,
    pinning: Pinning,
    repeats: int = 200,
    nbytes: int = 8,
    seed: int = 0,
    timer: str | None = None,
    label: str | None = None,
    engine: str = "reference",
    telemetry=None,
    runs: int = 1,
    level: float = DEFAULT_LEVEL,
    bootstrap: int = 0,
    stopping: StoppingRule | None = None,
) -> LatencyStats:
    """Allreduce completion latency over all ranks of ``pinning``.

    Repetition semantics match :func:`measure_latency`.
    """
    return _measure(
        collective_timing_worker, preset, pinning, repeats, nbytes, seed,
        timer, label or "collective", engine, telemetry,
        duration_scale=1e-3, runs=runs, level=level, bootstrap=bootstrap,
        stopping=stopping,
    )
