"""In-simulation latency measurement (Table II).

Runs the ping-pong / collective kernels of
:mod:`repro.workloads.pingpong` under a given pinning and reports the
mean and standard deviation of the mean, the quantities Table II lists
per placement (inter-node / inter-chip / inter-core message latency and
the inter-node collective latency).

Note that these are *measured through the simulated clocks*, exactly
like the paper's numbers: the reported mean includes clock read
overheads and send/receive software overheads on top of the wire floor,
and the standard deviation reflects network jitter, OS noise and timer
quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machines import ClusterPreset
from repro.cluster.pinning import Pinning
from repro.mpi.runtime import MpiWorld
from repro.options import RunOptions
from repro.workloads.pingpong import collective_timing_worker, pingpong_worker

__all__ = ["LatencyStats", "measure_latency", "measure_collective_latency"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency measurement."""

    label: str
    mean: float  # seconds
    std_of_mean: float  # seconds (std dev of the mean estimate)
    std: float  # seconds (std dev of individual samples)
    samples: int
    floor: float  # the model's l_min for this placement

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.label}: mean {self.mean * 1e6:.2f} us, "
            f"std(mean) {self.std_of_mean * 1e6:.2e} us ({self.samples} samples)"
        )


def _stats(label: str, samples: np.ndarray, floor: float) -> LatencyStats:
    std = float(samples.std(ddof=1)) if samples.size > 1 else 0.0
    return LatencyStats(
        label=label,
        mean=float(samples.mean()),
        std_of_mean=std / np.sqrt(samples.size) if samples.size > 1 else 0.0,
        std=std,
        samples=int(samples.size),
        floor=floor,
    )


def measure_latency(
    preset: ClusterPreset,
    pinning: Pinning,
    repeats: int = 1000,
    nbytes: int = 0,
    seed: int = 0,
    timer: str | None = None,
    label: str | None = None,
    engine: str = "reference",
    telemetry=None,
) -> LatencyStats:
    """One-way message latency between ranks 0 and 1 of ``pinning``."""
    world = MpiWorld(
        preset,
        pinning,
        timer=timer,
        seed=seed,
        duration_hint=max(repeats * 1e-4, 10.0),
    )
    result = world.run(
        pingpong_worker(repeats=repeats, nbytes=nbytes),
        tracing=False,
        measure_offsets=False,
        options=RunOptions(engine=engine, telemetry=telemetry),
    )
    samples = result.results[0]
    floor = world.min_latency(0, 1, nbytes)
    return _stats(label or pinning.label or "latency", samples, floor)


def measure_collective_latency(
    preset: ClusterPreset,
    pinning: Pinning,
    repeats: int = 200,
    nbytes: int = 8,
    seed: int = 0,
    timer: str | None = None,
    label: str | None = None,
    engine: str = "reference",
    telemetry=None,
) -> LatencyStats:
    """Allreduce completion latency over all ranks of ``pinning``."""
    world = MpiWorld(
        preset,
        pinning,
        timer=timer,
        seed=seed,
        duration_hint=max(repeats * 1e-3, 10.0),
    )
    result = world.run(
        collective_timing_worker(repeats=repeats, nbytes=nbytes),
        tracing=False,
        measure_offsets=False,
        options=RunOptions(engine=engine, telemetry=telemetry),
    )
    samples = result.results[0]
    floor = world.min_latency(0, 1, nbytes)
    return _stats(label or "collective", samples, floor)
