"""Measurement drivers and experiment harnesses.

* :mod:`repro.analysis.latency` — in-simulation latency benchmarks
  (Table II);
* :mod:`repro.analysis.deviation` — repeated-probe clock-deviation
  series under a correction scheme (Figs. 4-6 and the intra-node study);
* :mod:`repro.analysis.experiments` — one driver per paper table/figure,
  returning structured results;
* :mod:`repro.analysis.runner` — parallel grid execution with
  deterministic work stealing and result caching;
* :mod:`repro.analysis.reports` — ASCII rendering shared by benches,
  examples, and EXPERIMENTS.md.

Every measurement reports through :class:`repro.stats.SampleSummary`
(confidence intervals, repetition counts); see ``docs/methodology.md``.
"""

from repro.analysis.latency import LatencyStats, measure_collective_latency, measure_latency
from repro.analysis.deviation import DeviationSeries, measure_deviation
from repro.analysis.runner import derive_seed, run_grid, seed_grid
from repro.analysis.profile import RegionProfile, region_profile
from repro.analysis.reports import ascii_table, ci_cell, format_series, format_summary
from repro.analysis.timeline import render_message_arrows, render_timeline
from repro.analysis.waitstates import WaitStateReport, barrier_waits, late_sender

__all__ = [
    "LatencyStats",
    "measure_latency",
    "measure_collective_latency",
    "DeviationSeries",
    "measure_deviation",
    "ascii_table",
    "ci_cell",
    "format_series",
    "format_summary",
    "RegionProfile",
    "region_profile",
    "render_timeline",
    "render_message_arrows",
    "WaitStateReport",
    "late_sender",
    "barrier_waits",
    "run_grid",
    "derive_seed",
    "seed_grid",
]
