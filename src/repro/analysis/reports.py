"""ASCII rendering for experiment results.

Benches and examples print the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent between
them and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["ascii_table", "ci_cell", "format_series", "format_summary", "sparkline"]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render a fixed-width table with a header rule.

    Cells are stringified as-is; numbers should be pre-formatted by the
    caller (each table knows its own units).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_summary(label: str, summary, unit_scale: float = 1e6,
                   unit: str = "us") -> str:
    """One reported number with its uncertainty, methodology-style.

    Renders a :class:`repro.stats.SampleSummary` as
    ``label: mean ± halfwidth unit [lo, hi] (level CI, n=…, runs=…)`` —
    the format every figure/table line of the CLI uses (see
    ``docs/methodology.md`` for how to read it).
    """
    return f"{label}: {summary.describe(unit_scale=unit_scale, unit=unit)}"


def ci_cell(summary, unit_scale: float = 1e6, fmt: str = ".2f") -> str:
    """Compact ``mean ± halfwidth`` cell for :func:`ascii_table` rows."""
    return (
        f"{summary.mean * unit_scale:{fmt}} ± "
        f"{summary.ci_halfwidth * unit_scale:{fmt}}"
    )


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """A one-line unicode sketch of a series (for figure-shaped output)."""
    blocks = " .:-=+*#%@"
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return ""
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() if b > a else v[min(a, v.size - 1)] for a, b in zip(edges, edges[1:])])
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-30:
        return blocks[0] * v.size
    scaled = ((v - lo) / (hi - lo) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[s] for s in scaled)


def format_series(
    label: str, times: np.ndarray, values: np.ndarray, unit_scale: float = 1e6, unit: str = "us"
) -> str:
    """Summarize a deviation series: extremes, final value, sparkline."""
    v = np.asarray(values, dtype=np.float64) * unit_scale
    return (
        f"{label}: min {v.min():+.2f} {unit}, max {v.max():+.2f} {unit}, "
        f"final {v[-1]:+.2f} {unit}\n    [{sparkline(v)}]"
    )
