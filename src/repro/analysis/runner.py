"""Parallel experiment execution: a deterministic work-stealing grid runner.

Every paper figure is an embarrassingly parallel grid: independent
``(config, seed)`` simulation jobs whose outputs are aggregated
afterwards.  :func:`run_grid` executes such a grid either serially or
over a :class:`concurrent.futures.ProcessPoolExecutor`, with two
guarantees the figures depend on:

* **bit-for-bit determinism** — each job carries its complete
  configuration (including its seed) in its kwargs, every job seeds its
  own :class:`repro.rng.RngFabric` from those kwargs, and results are
  returned in grid order regardless of completion order.  Running with
  ``jobs=8`` therefore produces *exactly* the bytes of ``jobs=None``;
  there is no shared RNG state to race on.  :func:`derive_seed` is the
  blessed way to mint per-job seeds from a base seed and job names
  (stable across processes and Python versions, unlike ``hash``).

* **transparent caching** — pass a :class:`repro.cache.ResultCache` and
  completed jobs are stored under a content-addressed key; a re-run of
  an unchanged grid never spawns a worker.  Workers write through to the
  same on-disk cache, so a partially-complete interrupted grid resumes
  where it stopped.

Scheduling is *work stealing* rather than a fixed fan-out, so grids of
thousands of configs stay efficient: the pending indices are split into
one contiguous deque per worker lane, each lane pulls **batches** from
the head of its own deque (amortizing inter-process overhead), and a
lane that drains its deque steals half a batch from the tail of the
longest remaining deque.  Only a bounded number of batch futures is in
flight at any moment (*backpressure* — a 100k-config grid never
materializes 100k futures), and telemetry exposes the scheduler:
``runner.steals`` / ``runner.batches`` counters plus
``runner.queue_depth.peak`` and ``runner.inflight.peak`` gauges.
Because results are keyed by grid index and jobs are deterministic,
stealing never changes a single output byte.

Job functions must be module-level (picklable by reference) and accept
keyword arguments only from their grid entry.  Keep jobs coarse — one
simulation, not one event — so process startup cost stays negligible.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from time import perf_counter
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.cache import ResultCache
from repro.errors import ConfigurationError
from repro.options import _UNSET, RunOptions, resolve_options
from repro.rng import stable_hash32

__all__ = ["run_grid", "derive_seed", "resolve_jobs", "seed_grid"]

#: Ceiling on configs per submitted batch (keeps per-future latency low
#: and steal granularity fine even on huge grids).
_MAX_BATCH = 32

#: Batch futures in flight per worker lane: one running, one queued so
#: the pool never idles between completions (this bounds the number of
#: materialized futures at ``2 * nworkers``).
_INFLIGHT_PER_LANE = 2


def derive_seed(base_seed: int, *names) -> int:
    """Deterministic per-job seed from a base seed and job coordinates.

    >>> derive_seed(7, "fig7", 2) == derive_seed(7, "fig7", 2)
    True
    >>> derive_seed(7, "fig7", 2) != derive_seed(7, "fig7", 3)
    True
    """
    return stable_hash32(("seed", int(base_seed)), *names)


def seed_grid(base_config: dict[str, Any], seeds: Iterable[int],
              seed_key: str = "seed") -> list[dict[str, Any]]:
    """Expand one config into a grid varying only its seed."""
    return [{**base_config, seed_key: int(s)} for s in seeds]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 -> serial, 0 -> all cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _call(func: Callable[..., Any], kwargs: dict[str, Any],
          cache_root, cache_version) -> tuple[Any, float]:
    """Worker-side job body: compute and (best-effort) write through.

    Returns ``(value, elapsed_seconds)`` so the parent can account
    per-job wall time and worker utilization without clock skew games
    (each worker times itself).  The write-through is what makes an
    interrupted grid crash-resilient: results land in the shared
    on-disk cache the moment they exist, not when the parent collects
    them.
    """
    return _call_batch(func, [kwargs], cache_root, cache_version)[0]


def _call_batch(func: Callable[..., Any], kwargs_list: list[dict[str, Any]],
                cache_root, cache_version) -> list[tuple[Any, float]]:
    """Worker-side batch body: one pickled round-trip for many jobs."""
    cache = ResultCache(cache_root, version=cache_version) if cache_root is not None else None
    out = []
    for kwargs in kwargs_list:
        start = perf_counter()
        value = func(**kwargs)
        elapsed = perf_counter() - start
        if cache is not None:
            cache.store(cache.key(func, kwargs), value)
        out.append((value, elapsed))
    return out


class _StealingDeques:
    """Parent-side work-stealing state: one index deque per worker lane.

    Lanes own contiguous slices of the pending indices (cache-friendly:
    neighbouring configs usually share warm inputs).  An owner pops
    batches from the *head* of its deque; a lane whose deque is empty
    steals up to half the remaining work of the longest other deque
    from its *tail* — the classic owner-head/thief-tail split that
    minimizes contention on the hot end.
    """

    def __init__(self, pending: Sequence[int], nlanes: int, batch: int) -> None:
        self.batch = batch
        self.lanes: list[deque[int]] = [deque() for _ in range(nlanes)]
        chunk, extra = divmod(len(pending), nlanes)
        start = 0
        for lane in range(nlanes):
            size = chunk + (1 if lane < extra else 0)
            self.lanes[lane].extend(pending[start:start + size])
            start += size
        self.steals = 0

    def depth(self) -> int:
        return sum(len(lane) for lane in self.lanes)

    def next_batch(self, lane: int) -> list[int]:
        """The lane's next batch of grid indices (own head, else steal)."""
        own = self.lanes[lane]
        if not own:
            victim = max(self.lanes, key=len)
            if not victim:
                return []
            self.steals += 1
            take = min(self.batch, max(1, len(victim) // 2))
            stolen = [victim.pop() for _ in range(take)]
            stolen.reverse()  # keep ascending grid order within the batch
            return stolen
        return [own.popleft() for _ in range(min(self.batch, len(own)))]


def _auto_batch(njobs: int, nworkers: int) -> int:
    """Batch size balancing IPC amortization against steal granularity.

    Aim for ~8 batches per lane so late imbalance can still be stolen
    away, capped at :data:`_MAX_BATCH`; tiny grids degenerate to one
    config per batch.
    """
    return max(1, min(_MAX_BATCH, njobs // (nworkers * 8)))


def run_grid(
    func: Callable[..., Any],
    grid: Sequence[dict[str, Any]],
    *,
    jobs: Optional[int] = _UNSET,
    cache: Optional[ResultCache] = _UNSET,
    on_result: Optional[Callable[[int, Any], None]] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
    batch_size: Optional[int] = None,
) -> list[Any]:
    """Run ``func(**cfg)`` for every ``cfg`` in ``grid``.

    Parameters
    ----------
    func:
        Module-level callable (workers import it by reference).
    grid:
        Sequence of keyword-argument dicts, one per job.  Results come
        back as a list aligned with this sequence.
    jobs:
        Deprecated — pass ``options=RunOptions(jobs=...)``.
        ``None``/``1`` runs in-process (serial); ``N > 1`` fans out over
        a process pool of ``N`` workers; ``0`` uses every core.
    cache:
        Deprecated — pass ``options=RunOptions(cache=...)``.
        Optional :class:`ResultCache`.  Hits skip execution entirely;
        misses are stored after computing (both in the parent and, for
        crash resilience, by the worker that produced them).
    on_result:
        Optional callback ``(index, result)`` invoked as each job
        finishes (completion order, not grid order) — for progress
        reporting.
    options:
        A :class:`repro.options.RunOptions`; ``jobs``, ``cache``, and
        ``telemetry`` are consulted here.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder`; overrides
        ``options.telemetry`` when both are given.  The recorder is also
        attached to the cache for load/store latencies, and collects
        ``runner.job`` wall-time observations, a
        ``runner.worker_utilization`` gauge, ``runner.steals`` /
        ``runner.batches`` counters and ``runner.queue_depth.peak`` /
        ``runner.inflight.peak`` gauges for pool runs.
    batch_size:
        Configs per submitted batch for pool runs (default: sized
        automatically from the grid and worker count).  Purely a
        scheduling knob — results are identical for any value.

    Returns
    -------
    list
        ``[func(**grid[0]), func(**grid[1]), ...]`` — identical for any
        ``jobs`` value (and any ``batch_size``): work stealing reorders
        *execution*, never results.
    """
    options = resolve_options(options, caller="run_grid", jobs=jobs, cache=cache)
    tele = telemetry if telemetry is not None else options.telemetry_or_null
    jobs, cache = options.jobs, options.cache
    if batch_size is not None and batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if cache is not None and tele.enabled:
        cache.telemetry = tele

    configs = [dict(cfg) for cfg in grid]
    results: list[Any] = [None] * len(configs)
    pending = list(range(len(configs)))

    with tele.span("runner.run_grid", func=_func_label(func), njobs=len(configs)) as grid_span:
        if cache is not None:
            still_pending = []
            for i in pending:
                hit, value = cache.load(cache.key(func, configs[i]))
                if hit:
                    results[i] = value
                    if on_result is not None:
                        on_result(i, value)
                else:
                    still_pending.append(i)
            pending = still_pending
            if tele.enabled:
                tele.count("runner.jobs_from_cache", len(configs) - len(pending))

        nworkers = min(resolve_jobs(jobs), max(len(pending), 1))
        if nworkers <= 1 or len(pending) <= 1:
            for i in pending:
                if tele.enabled:
                    start = perf_counter()
                value = func(**configs[i])
                if tele.enabled:
                    tele.observe("runner.job", perf_counter() - start)
                    tele.count("runner.jobs_executed")
                if cache is not None:
                    cache.store(cache.key(func, configs[i]), value)
                results[i] = value
                if on_result is not None:
                    on_result(i, value)
            return results

        cache_root = str(cache.root) if cache is not None else None
        cache_version = cache.version if cache is not None else None
        batch = batch_size if batch_size is not None else _auto_batch(len(pending), nworkers)
        deques = _StealingDeques(pending, nworkers, batch)
        busy = 0.0
        batches = 0
        peak_inflight = 0
        pool_start = perf_counter() if tele.enabled else 0.0
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            outstanding: dict[Any, tuple[int, list[int]]] = {}

            def submit(lane: int) -> bool:
                indices = deques.next_batch(lane)
                if not indices:
                    return False
                fut = pool.submit(
                    _call_batch, func, [configs[i] for i in indices],
                    cache_root, cache_version,
                )
                outstanding[fut] = (lane, indices)
                return True

            if tele.enabled:
                tele.gauge_max("runner.queue_depth.peak", deques.depth())
            for lane in range(nworkers):
                for _ in range(_INFLIGHT_PER_LANE):
                    if not submit(lane):
                        break
            while outstanding:
                peak_inflight = max(peak_inflight, len(outstanding))
                done, _ = wait(set(outstanding), return_when=FIRST_COMPLETED)
                for fut in done:
                    lane, indices = outstanding.pop(fut)
                    batches += 1
                    pairs = fut.result()  # re-raises worker exceptions here
                    for i, (value, elapsed) in zip(indices, pairs):
                        if tele.enabled:
                            busy += elapsed
                            tele.observe("runner.job", elapsed)
                            tele.count("runner.jobs_executed")
                        results[i] = value
                        if on_result is not None:
                            on_result(i, value)
                    submit(lane)
        if tele.enabled:
            # Fraction of worker-seconds actually spent inside jobs; the
            # rest is pool startup, pickling, and scheduling slack.
            wall = perf_counter() - pool_start
            if wall > 0:
                tele.gauge("runner.worker_utilization", busy / (nworkers * wall))
            tele.count("runner.steals", deques.steals)
            tele.count("runner.batches", batches)
            tele.gauge_max("runner.inflight.peak", peak_inflight)
            grid_span.set(workers=nworkers, batch=batch, steals=deques.steals)
    return results


def _func_label(func: Callable[..., Any]) -> str:
    return getattr(func, "__qualname__", repr(func))
