"""Parallel experiment execution with deterministic fan-out.

Every paper figure is an embarrassingly parallel grid: independent
``(config, seed)`` simulation jobs whose outputs are aggregated
afterwards.  :func:`run_grid` executes such a grid either serially or
over a :class:`concurrent.futures.ProcessPoolExecutor`, with two
guarantees the figures depend on:

* **bit-for-bit determinism** — each job carries its complete
  configuration (including its seed) in its kwargs, every job seeds its
  own :class:`repro.rng.RngFabric` from those kwargs, and results are
  returned in grid order regardless of completion order.  Running with
  ``jobs=8`` therefore produces *exactly* the bytes of ``jobs=None``;
  there is no shared RNG state to race on.  :func:`derive_seed` is the
  blessed way to mint per-job seeds from a base seed and job names
  (stable across processes and Python versions, unlike ``hash``).

* **transparent caching** — pass a :class:`repro.cache.ResultCache` and
  completed jobs are stored under a content-addressed key; a re-run of
  an unchanged grid never spawns a worker.  Workers write through to the
  same on-disk cache, so a partially-complete interrupted grid resumes
  where it stopped.

Job functions must be module-level (picklable by reference) and accept
keyword arguments only from their grid entry.  Keep jobs coarse — one
simulation, not one event — so process startup cost stays negligible.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from time import perf_counter
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.cache import ResultCache
from repro.errors import ConfigurationError
from repro.options import _UNSET, RunOptions, resolve_options
from repro.rng import stable_hash32

__all__ = ["run_grid", "derive_seed", "resolve_jobs", "seed_grid"]


def derive_seed(base_seed: int, *names) -> int:
    """Deterministic per-job seed from a base seed and job coordinates.

    >>> derive_seed(7, "fig7", 2) == derive_seed(7, "fig7", 2)
    True
    >>> derive_seed(7, "fig7", 2) != derive_seed(7, "fig7", 3)
    True
    """
    return stable_hash32(("seed", int(base_seed)), *names)


def seed_grid(base_config: dict[str, Any], seeds: Iterable[int],
              seed_key: str = "seed") -> list[dict[str, Any]]:
    """Expand one config into a grid varying only its seed."""
    return [{**base_config, seed_key: int(s)} for s in seeds]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 -> serial, 0 -> all cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _call(func: Callable[..., Any], kwargs: dict[str, Any],
          cache_root, cache_version) -> tuple[Any, float]:
    """Worker-side job body: compute and (best-effort) write through.

    Returns ``(value, elapsed_seconds)`` so the parent can account
    per-job wall time and worker utilization without clock skew games
    (each worker times itself).
    """
    start = perf_counter()
    value = func(**kwargs)
    elapsed = perf_counter() - start
    if cache_root is not None:
        cache = ResultCache(cache_root, version=cache_version)
        cache.store(cache.key(func, kwargs), value)
    return value, elapsed


def run_grid(
    func: Callable[..., Any],
    grid: Sequence[dict[str, Any]],
    *,
    jobs: Optional[int] = _UNSET,
    cache: Optional[ResultCache] = _UNSET,
    on_result: Optional[Callable[[int, Any], None]] = None,
    options: Optional[RunOptions] = None,
    telemetry=None,
) -> list[Any]:
    """Run ``func(**cfg)`` for every ``cfg`` in ``grid``.

    Parameters
    ----------
    func:
        Module-level callable (workers import it by reference).
    grid:
        Sequence of keyword-argument dicts, one per job.  Results come
        back as a list aligned with this sequence.
    jobs:
        Deprecated — pass ``options=RunOptions(jobs=...)``.
        ``None``/``1`` runs in-process (serial); ``N > 1`` fans out over
        a process pool of ``N`` workers; ``0`` uses every core.
    cache:
        Deprecated — pass ``options=RunOptions(cache=...)``.
        Optional :class:`ResultCache`.  Hits skip execution entirely;
        misses are stored after computing (both in the parent and, for
        crash resilience, by the worker that produced them).
    on_result:
        Optional callback ``(index, result)`` invoked as each job
        finishes (completion order, not grid order) — for progress
        reporting.
    options:
        A :class:`repro.options.RunOptions`; ``jobs``, ``cache``, and
        ``telemetry`` are consulted here.
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder`; overrides
        ``options.telemetry`` when both are given.  The recorder is also
        attached to the cache for load/store latencies, and collects
        ``runner.job`` wall-time observations plus a
        ``runner.worker_utilization`` gauge for pool runs.

    Returns
    -------
    list
        ``[func(**grid[0]), func(**grid[1]), ...]`` — identical for any
        ``jobs`` value.
    """
    options = resolve_options(options, caller="run_grid", jobs=jobs, cache=cache)
    tele = telemetry if telemetry is not None else options.telemetry_or_null
    jobs, cache = options.jobs, options.cache
    if cache is not None and tele.enabled:
        cache.telemetry = tele

    configs = [dict(cfg) for cfg in grid]
    results: list[Any] = [None] * len(configs)
    pending = list(range(len(configs)))

    with tele.span("runner.run_grid", func=_func_label(func), njobs=len(configs)) as grid_span:
        if cache is not None:
            still_pending = []
            for i in pending:
                hit, value = cache.load(cache.key(func, configs[i]))
                if hit:
                    results[i] = value
                    if on_result is not None:
                        on_result(i, value)
                else:
                    still_pending.append(i)
            pending = still_pending
            if tele.enabled:
                tele.count("runner.jobs_from_cache", len(configs) - len(pending))

        nworkers = min(resolve_jobs(jobs), max(len(pending), 1))
        if nworkers <= 1 or len(pending) <= 1:
            for i in pending:
                if tele.enabled:
                    start = perf_counter()
                value = func(**configs[i])
                if tele.enabled:
                    tele.observe("runner.job", perf_counter() - start)
                    tele.count("runner.jobs_executed")
                if cache is not None:
                    cache.store(cache.key(func, configs[i]), value)
                results[i] = value
                if on_result is not None:
                    on_result(i, value)
            return results

        cache_root = str(cache.root) if cache is not None else None
        cache_version = cache.version if cache is not None else None
        busy = 0.0
        pool_start = perf_counter() if tele.enabled else 0.0
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            futures = {
                pool.submit(_call, func, configs[i], cache_root, cache_version): i
                for i in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = futures[fut]
                    value, elapsed = fut.result()  # re-raises worker exceptions here
                    if tele.enabled:
                        busy += elapsed
                        tele.observe("runner.job", elapsed)
                        tele.count("runner.jobs_executed")
                    results[i] = value
                    if on_result is not None:
                        on_result(i, value)
        if tele.enabled:
            # Fraction of worker-seconds actually spent inside jobs; the
            # rest is pool startup, pickling, and scheduling slack.
            wall = perf_counter() - pool_start
            if wall > 0:
                tele.gauge("runner.worker_utilization", busy / (nworkers * wall))
            grid_span.set(workers=nworkers)
    return results


def _func_label(func: Callable[..., Any]) -> str:
    return getattr(func, "__qualname__", repr(func))
