"""Wait-state analysis — the trace consumer the paper is protecting.

Section I: *"the Scalasca toolset scans event traces of parallel
applications for wait states that occur when processes fail to reach
synchronization points in a timely manner"*; Section III: *"Inaccurate
timestamps may lead to false conclusions during trace analysis, for
example, when the impact of certain behaviors is quantified."*

This module implements the canonical **Late Sender** pattern: a receive
was posted before the matching send started, so the receiver sat idle
for ``send_ts - recv_post_ts`` seconds.  Computing it needs the
*posting* time of the receive, i.e. traces recorded with
``mpi_regions=True`` (the ENTER/SEND/EXIT wrapper pattern).

The interesting quantity for the reproduction is the *error* such an
analysis commits on uncorrected or partially corrected timestamps:

* reversed messages make the inequality test fire the wrong way (the
  "wait" becomes negative — an impossibility real tools must special-
  case or mis-attribute);
* even when the sign survives, each wait is mismeasured by the residual
  clock error between the two ranks.

:func:`late_sender` computes per-message waits; compare its output on
raw / interpolated / CLC-corrected timestamps against the ground truth
of a perfect-clock run to quantify the paper's "false conclusions".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.mpi.comm import MPI_RECV_REGION
from repro.tracing.events import EventType
from repro.tracing.trace import Trace

__all__ = ["WaitStateReport", "late_sender", "barrier_waits"]


@dataclass
class WaitStateReport:
    """Late-sender analysis of one trace.

    Attributes
    ----------
    waits:
        Per-message ``send_ts - recv_post_ts`` (seconds): positive means
        the receiver idled (Late Sender), negative means the send came
        first (the Late *Receiver* side — perfectly legitimate).  Clock
        errors shift these values and can flip their sign, which changes
        the *classification* of the message — the concrete form of the
        paper's "false conclusions".
    dst:
        Receiving rank per message (aligned with ``waits``).
    """

    waits: np.ndarray
    dst: np.ndarray

    @property
    def total(self) -> float:
        """Total Late Sender waiting time (what a tool would report)."""
        return float(self.waits[self.waits > 0].sum())

    @property
    def late_sender_count(self) -> int:
        """Messages classified as Late Sender (positive wait)."""
        return int(np.count_nonzero(self.waits > 0))

    @property
    def negative_count(self) -> int:
        """Messages on the Late Receiver side (send preceded the post)."""
        return int(np.count_nonzero(self.waits < 0))

    def sign_flips(self, truth: "WaitStateReport") -> int:
        """Messages whose Late Sender/Late Receiver classification
        differs from ``truth`` — misdiagnosed wait states.

        Both reports must come from runs with the identical schedule
        (same workload and seed, different clocks), so the k-th message
        of one is the k-th message of the other.
        """
        if self.waits.shape != truth.waits.shape:
            raise TraceError("sign_flips needs reports over the same message set")
        return int(np.count_nonzero(np.sign(self.waits) != np.sign(truth.waits)))

    def by_rank(self) -> dict[int, float]:
        """Positive waiting time attributed to each receiving rank."""
        out: dict[int, float] = {}
        pos = self.waits > 0
        for rank in np.unique(self.dst[pos]):
            mask = pos & (self.dst == rank)
            out[int(rank)] = float(self.waits[mask].sum())
        return out

    def __len__(self) -> int:
        return self.waits.size


def late_sender(trace: Trace) -> WaitStateReport:
    """Late-sender waits for every matched message of ``trace``.

    For each message, the receive's posting time is the nearest
    preceding ``ENTER(MPI_RECV_REGION)`` event on the receiving rank;
    the wait is ``send_ts - post_ts`` (clipped conceptually at 0 — the
    report keeps raw values so callers can count sign violations).

    Raises :class:`TraceError` if the trace was not recorded with
    ``mpi_regions=True`` (no posting events to measure against).
    """
    messages = trace.messages(strict=False)
    n = len(messages)
    waits = np.empty(n, dtype=np.float64)

    # Per-rank sorted indices of recv-post ENTER events.
    post_idx: dict[int, np.ndarray] = {}
    post_ts: dict[int, np.ndarray] = {}
    for rank in trace.ranks:
        log = trace.logs[rank]
        mask = (log.etypes == int(EventType.ENTER)) & (log.a == MPI_RECV_REGION)
        idx = np.nonzero(mask)[0]
        post_idx[rank] = idx
        post_ts[rank] = log.timestamps[idx]

    for k in range(n):
        dst = int(messages.dst[k])
        recv_idx = int(messages.recv_idx[k])
        candidates = post_idx[dst]
        pos = np.searchsorted(candidates, recv_idx) - 1
        if pos < 0:
            raise TraceError(
                "trace has RECV events without preceding MPI_RECV_REGION "
                "enters; record it with mpi_regions=True for wait-state analysis"
            )
        waits[k] = messages.send_ts[k] - post_ts[dst][pos]

    return WaitStateReport(waits=waits, dst=messages.dst.copy())


def barrier_waits(trace: Trace) -> WaitStateReport:
    """"Wait at N x N" / "Wait at Barrier" times per collective instance.

    Scalasca's pattern: in an N-to-N operation every member idles from
    its own enter until the *last* member's enter.  Per instance and
    rank the wait is ``max(enter) - enter_i`` — nonnegative by
    definition on correct timestamps, so a negative value cannot occur
    (the max is taken over the same numbers); what clock errors corrupt
    here is the *attribution*: which rank appears to arrive last, and by
    how much.  The report's ``waits`` holds one entry per (instance,
    member), ``dst`` the member rank.

    Works on any trace with collective events (no ``mpi_regions``
    needed).
    """
    waits_l: list[float] = []
    dst_l: list[int] = []
    for rec in trace.collectives():
        if rec.ranks.size < 2:
            continue
        latest = float(rec.enter_ts.max())
        for i, rank in enumerate(rec.ranks):
            waits_l.append(latest - float(rec.enter_ts[i]))
            dst_l.append(int(rank))
    return WaitStateReport(
        waits=np.asarray(waits_l, dtype=np.float64),
        dst=np.asarray(dst_l, dtype=np.int64),
    )
