"""One driver per paper table/figure.

Every function returns a small result object holding the numbers the
corresponding table or figure reports; the benchmark harness prints them
via :mod:`repro.analysis.reports` and EXPERIMENTS.md records them next
to the paper's values.

Durations and event counts are scaled down from the paper's runs where
noted (the defaults keep a full regeneration in minutes of wall time on
a laptop), but every scale knob is a parameter, so full-size runs are a
function call away.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.deviation import DeviationSeries, measure_deviation
from repro.analysis.latency import (
    LatencyStats,
    measure_collective_latency,
    measure_latency,
)
from repro.analysis.runner import derive_seed, run_grid
from repro.cache import ResultCache
from repro.cluster.jitter import OsJitterModel
from repro.cluster.machines import (
    ClusterPreset,
    itanium_node,
    opteron_cluster,
    powerpc_cluster,
    xeon_cluster,
)
from repro.cluster.pinning import (
    Pinning,
    inter_chip,
    inter_core,
    inter_node,
    scheduler_default,
)
from repro.errors import ConfigurationError
from repro.mpi.runtime import MpiWorld
from repro.openmp.team import OmpTeamConfig, run_parallel_for_benchmark
from repro.options import _UNSET, RunOptions, resolve_options
from repro.rng import RngFabric
from repro.stats import DEFAULT_LEVEL, SampleSummary, StoppingRule, summarize
from repro.sync.clc import ControlledLogicalClock
from repro.sync.interpolation import align_offsets, linear_interpolation
from repro.sync.violations import (
    PompRegionReport,
    lmin_matrix_from_trace,
    scan_collectives,
    scan_messages,
    scan_pomp,
)
from repro.tracing.events import EventType
from repro.workloads.pop import PopConfig, pop_worker
from repro.workloads.smg2000 import Smg2000Config, smg2000_worker

__all__ = [
    "table1_pinnings",
    "table2_latencies",
    "fig3_barrier_violation",
    "fig4_timer_deviation",
    "fig4_all_panels",
    "fig5_interpolated_deviation",
    "fig6_short_run",
    "fig7_app_violations",
    "fig8_openmp_violations",
    "intranode_noise",
    "ext_openmp_correction",
    "ext_waitstate_accuracy",
]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
@dataclass
class Table1Result:
    pinnings: dict[str, Pinning]

    def rows(self) -> list[tuple[str, str]]:
        return [(name, pin.describe()) for name, pin in self.pinnings.items()]


def table1_pinnings(nprocs: int = 4) -> Table1Result:
    """The three deliberate Xeon placements of Table I."""
    machine = xeon_cluster().machine
    return Table1Result(
        pinnings={
            "inter node": inter_node(machine, nprocs),
            "inter chip": inter_chip(machine),
            "inter core": inter_core(machine),
        }
    )


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    rows: list[LatencyStats]

    def by_label(self) -> dict[str, LatencyStats]:
        return {r.label: r for r in self.rows}


def _table2_row(
    kind: str, seed: int, repeats: int, engine: str = "reference",
    runs: int = 1, level: float = DEFAULT_LEVEL,
    stopping: StoppingRule | None = None,
) -> LatencyStats:
    """One Table II measurement — a standalone job for :func:`run_grid`."""
    preset = xeon_cluster()
    machine = preset.machine
    common = dict(repeats=repeats, seed=seed, engine=engine, runs=runs,
                  level=level, stopping=stopping)
    if kind == "inter_node":
        return measure_latency(
            preset, inter_node(machine, 4),
            label="Inter node message latency", **common,
        )
    if kind == "inter_chip":
        return measure_latency(
            preset, inter_chip(machine),
            label="Inter chip message latency", **common,
        )
    if kind == "inter_core":
        return measure_latency(
            preset, inter_core(machine),
            label="Inter core message latency", **common,
        )
    if kind == "collective":
        return measure_collective_latency(
            preset, inter_node(machine, 4),
            label="Inter node collective latency", **common,
        )
    raise ConfigurationError(f"unknown Table II row kind {kind!r}")


def table2_latencies(
    seed: int = _UNSET,
    repeats: int = 1000,
    coll_repeats: int = 200,
    jobs: int | None = _UNSET,
    cache: ResultCache | None = _UNSET,
    engine: str = _UNSET,
    *,
    runs: int = 1,
    level: float = DEFAULT_LEVEL,
    options: RunOptions | None = None,
    telemetry=None,
) -> Table2Result:
    """Measured message and collective latencies per placement (Table II).

    The four placements are independent simulations; ``options.jobs`` /
    ``options.cache`` fan them out / memoize them via
    :func:`repro.analysis.runner.run_grid`.  ``options.engine`` selects
    the simulation path; both are bit-identical, and cache keys ignore
    it, so switching engines still hits prior entries.  Every row is a
    :class:`~repro.analysis.latency.LatencyStats` carrying a
    :class:`~repro.stats.SampleSummary` (CI at ``level``, repetition
    counts); ``runs`` pools that many independent simulations per row,
    and ``options.stopping`` instead adds runs per row until the rule's
    relative CI-width target is met (see ``docs/methodology.md``).  The
    ``seed`` / ``jobs`` / ``cache`` / ``engine`` keywords are deprecated
    shims.
    """
    options = resolve_options(
        options, caller="table2_latencies",
        seed=seed, jobs=jobs, cache=cache, engine=engine,
    )
    seed = options.resolved_seed(0)
    row = dict(seed=seed, repeats=repeats, engine=options.engine, runs=runs,
               level=level, stopping=options.stopping)
    grid = [
        dict(row, kind="inter_node"),
        dict(row, kind="inter_chip"),
        dict(row, kind="inter_core"),
        dict(row, kind="collective", repeats=coll_repeats),
    ]
    return Table2Result(
        rows=run_grid(_table2_row, grid, options=options, telemetry=telemetry)
    )


# ----------------------------------------------------------------------
# Fig. 3 — an observed OpenMP barrier violation
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """One concrete barrier-semantics violation, Fig. 3 style.

    ``timeline`` maps thread id -> (barrier_enter_ts, barrier_exit_ts)
    for the violating region instance; ``offender`` is the thread whose
    recorded exit precedes another thread's recorded enter.
    """

    instance: int
    timeline: dict[int, tuple[float, float]]
    offender: int
    victim: int
    overlap_gap: float  # how far (s) the offender's exit precedes the victim's enter

    @property
    def found(self) -> bool:
        return self.instance >= 0


def fig3_barrier_violation(seed: int = 1, threads: int = 4, regions: int = 200) -> Fig3Result:
    """Reproduce Fig. 3: a thread apparently leaving a barrier before
    another thread entered it, on the Itanium SMP node."""
    trace = run_parallel_for_benchmark(
        OmpTeamConfig(threads=threads, regions=regions), seed=seed
    )
    report = scan_pomp(trace)
    for inst in sorted(report.instances):
        if not report.instances[inst]["barrier"]:
            continue
        enters: dict[int, float] = {}
        exits: dict[int, float] = {}
        for tid in trace.ranks:
            log = trace.logs[tid]
            for i in range(len(log)):
                ev = log[i]
                if ev.d != inst:
                    continue
                if ev.etype == EventType.OMP_BARRIER_ENTER:
                    enters[tid] = ev.timestamp
                elif ev.etype == EventType.OMP_BARRIER_EXIT:
                    exits[tid] = ev.timestamp
        for i, ti in exits.items():
            for j, tj in enters.items():
                if i != j and ti < tj:
                    return Fig3Result(
                        instance=inst,
                        timeline={t: (enters[t], exits[t]) for t in sorted(enters)},
                        offender=i,
                        victim=j,
                        overlap_gap=tj - ti,
                    )
    return Fig3Result(instance=-1, timeline={}, offender=-1, victim=-1, overlap_gap=0.0)


# ----------------------------------------------------------------------
# Figs. 4, 5, 6 — deviation curves
# ----------------------------------------------------------------------
#: Paper panel -> (timer, run length): Fig. 4a short, 4b medium, 4c long.
FIG4_PANELS: dict[str, tuple[str, float]] = {
    "a": ("mpi_wtime", 300.0),
    "b": ("gettimeofday", 1800.0),
    "c": ("tsc", 3600.0),
}

#: Fig. 5 panel -> (cluster preset factory, timer), all 3600 s.
FIG5_PANELS = {
    "a": (xeon_cluster, "tsc"),
    "b": (powerpc_cluster, "timebase"),
    "c": (opteron_cluster, "gettimeofday"),
}


@dataclass
class DeviationResult:
    """Deviation series of one panel plus its context.

    ``runs`` and ``residual_summary`` are populated by the multi-run
    drivers (:func:`fig4_all_panels` with ``runs > 1``): the series
    shown are those of run 0 (bit-compatible with a single-run call),
    while ``residual_summary`` summarizes the peak aligned residual
    across all independent runs with a confidence interval.
    """

    label: str
    timer: str
    duration: float
    series: dict[int, DeviationSeries]
    lmin: float  # inter-node message latency floor of the platform
    runs: int = 1
    residual_summary: SampleSummary | None = None

    def max_residual(self, corrected: str) -> float:
        return max(s.max_abs(corrected) for s in self.series.values())

    def first_crossing(self, corrected: str = "interpolated") -> float | None:
        """Earliest time any worker's residual exceeds half of l_min
        (the accuracy requirement of Section III)."""
        times = [
            t
            for s in self.series.values()
            if (t := s.first_exceeding(self.lmin / 2.0, corrected)) is not None
        ]
        return min(times) if times else None


def fig4_timer_deviation(
    panel: str = "a",
    seed: int = 0,
    nprocs: int = 4,
    probe_interval: float = 5.0,
) -> DeviationResult:
    """Fig. 4: deviations after *initial offset alignment only*.

    ``panel``: "a" (MPI_Wtime, 300 s), "b" (gettimeofday, 1800 s),
    "c" (TSC, 3600 s), all on the Xeon cluster across distinct nodes.
    """
    if panel not in FIG4_PANELS:
        raise ConfigurationError(f"unknown Fig. 4 panel {panel!r}")
    timer, duration = FIG4_PANELS[panel]
    preset = xeon_cluster()
    pin = inter_node(preset.machine, nprocs)
    series = measure_deviation(
        preset, pin, timer=timer, duration=duration,
        probe_interval=probe_interval, seed=seed,
    )
    return DeviationResult(
        label=f"Fig.4{panel} {timer} {duration:.0f}s",
        timer=timer,
        duration=duration,
        series=series,
        lmin=preset.latency.min_latency(pin[0], pin[1]),
    )


def fig4_all_panels(
    panels: tuple[str, ...] = ("a", "b", "c"),
    seed: int = _UNSET,
    nprocs: int = 4,
    probe_interval: float = 5.0,
    jobs: int | None = _UNSET,
    cache: ResultCache | None = _UNSET,
    *,
    runs: int = 1,
    level: float = DEFAULT_LEVEL,
    options: RunOptions | None = None,
    telemetry=None,
) -> dict[str, DeviationResult]:
    """All Fig. 4 panels through the parallel runner.

    Panel "c" simulates an hour of drift; regenerating the whole figure
    serially is dominated by it, so the panels run as independent
    :func:`repro.analysis.runner.run_grid` jobs (and cache hits make an
    unchanged figure near-instant).  ``runs > 1`` repeats each panel
    under independent derived seeds and attaches a
    :class:`~repro.stats.SampleSummary` of the peak aligned residual
    (CI at ``level``) to each returned
    :class:`DeviationResult.residual_summary`; the series shown remain
    those of run 0.  The ``seed`` / ``jobs`` / ``cache`` keywords are
    deprecated shims for ``options``.
    """
    options = resolve_options(
        options, caller="fig4_all_panels", seed=seed, jobs=jobs, cache=cache
    )
    base = options.resolved_seed(0)
    grid = [
        dict(panel=p,
             seed=base if r == 0 else derive_seed(base, "fig4", p, r),
             nprocs=nprocs, probe_interval=probe_interval)
        for p in panels
        for r in range(runs)
    ]
    flat = run_grid(fig4_timer_deviation, grid, options=options, telemetry=telemetry)
    out: dict[str, DeviationResult] = {}
    for k, p in enumerate(panels):
        group = flat[k * runs:(k + 1) * runs]
        residuals = np.array([g.max_residual("aligned") for g in group])
        out[p] = dataclasses.replace(
            group[0], runs=runs,
            residual_summary=summarize(residuals, level=level),
        )
    return out


def fig5_interpolated_deviation(
    panel: str = "a",
    seed: int = 0,
    nprocs: int = 4,
    duration: float = 3600.0,
    probe_interval: float = 5.0,
) -> DeviationResult:
    """Fig. 5: residual deviations after linear offset interpolation.

    ``panel``: "a" (Xeon TSC), "b" (PowerPC time base), "c" (Opteron
    gettimeofday), 3600 s each.
    """
    if panel not in FIG5_PANELS:
        raise ConfigurationError(f"unknown Fig. 5 panel {panel!r}")
    factory, timer = FIG5_PANELS[panel]
    preset = factory()
    pin = inter_node(preset.machine, nprocs)
    series = measure_deviation(
        preset, pin, timer=timer, duration=duration,
        probe_interval=probe_interval, seed=seed,
    )
    return DeviationResult(
        label=f"Fig.5{panel} {preset.machine.name}/{timer}",
        timer=timer,
        duration=duration,
        series=series,
        lmin=preset.latency.min_latency(pin[0], pin[1]),
    )


def fig6_short_run(
    seed: int = 0, duration: float = 300.0, probe_interval: float = 2.0
) -> DeviationResult:
    """Fig. 6: short Xeon/TSC run — residuals after interpolation still
    slightly exceed the message latency."""
    preset = xeon_cluster()
    pin = inter_node(preset.machine, 4)
    series = measure_deviation(
        preset, pin, timer="tsc", duration=duration,
        probe_interval=probe_interval, seed=seed,
    )
    return DeviationResult(
        label="Fig.6 xeon/tsc short",
        timer="tsc",
        duration=duration,
        series=series,
        lmin=preset.latency.min_latency(pin[0], pin[1]),
    )


# ----------------------------------------------------------------------
# Fig. 7 — clock-condition violations in POP and SMG2000 traces
# ----------------------------------------------------------------------
@dataclass
class Fig7RunStats:
    """One traced application run, Scalasca-style corrected."""

    reversed_pct: float  # % of messages with send/recv order reversed
    message_event_pct: float  # % of message transfer events among all events
    messages: int  # p2p + logical messages checked
    events: int


@dataclass
class Fig7Result:
    app: str
    runs: list[Fig7RunStats] = field(default_factory=list)

    @property
    def mean_reversed_pct(self) -> float:
        return float(np.mean([r.reversed_pct for r in self.runs])) if self.runs else 0.0

    @property
    def mean_message_event_pct(self) -> float:
        return float(np.mean([r.message_event_pct for r in self.runs])) if self.runs else 0.0

    def reversed_summary(self, level: float = DEFAULT_LEVEL) -> SampleSummary:
        """CI of the reversed-message percentage over the repetitions."""
        return summarize(np.array([r.reversed_pct for r in self.runs]), level=level)

    def message_event_summary(self, level: float = DEFAULT_LEVEL) -> SampleSummary:
        """CI of the message-event percentage over the repetitions."""
        return summarize(np.array([r.message_event_pct for r in self.runs]), level=level)


def _grid_for(nprocs: int) -> tuple[int, int]:
    """Most-square 2-D factorization px * py == nprocs, px >= py."""
    from repro.workloads import most_square_grid

    return most_square_grid(nprocs)


def _pop_config(scale: float, nprocs: int) -> PopConfig:
    """Paper-shaped POP run, optionally scaled down.

    ``scale = 1`` is the paper's scenario: 9000 iterations, ~25 min,
    iterations 3500-5500 traced.  Smaller scales shrink the step count
    and the traced window proportionally while keeping the ~25 min of
    wall-clock drift exposure (step time grows accordingly).
    """
    steps = max(int(9000 * scale), 20)
    lo = int(steps * 3500 / 9000)
    hi = int(steps * 5500 / 9000)
    return PopConfig(
        steps=steps,
        step_time=0.165 * 9000 / steps,
        trace_window=(lo, max(hi, lo + 1)),
        grid=_grid_for(nprocs),
    )


def _smg_config(scale: float) -> Smg2000Config:
    cycles = max(int(5 * max(scale, 0.2)), 1)
    return Smg2000Config(cycles=cycles, pre_sleep=600.0, post_sleep=600.0)


def _fig7_one_run(
    app: str,
    rep_seed: int,
    nprocs: int,
    scale: float,
    timer: str,
    engine: str = "reference",
) -> Fig7RunStats:
    """One traced application run of Fig. 7 — a :func:`run_grid` job."""
    preset = xeon_cluster()
    fabric = RngFabric(rep_seed)
    pin = scheduler_default(preset.machine, nprocs, fabric.generator("placement"))
    if app == "pop":
        cfg = _pop_config(scale, nprocs)
        worker = pop_worker(cfg, seed=rep_seed)
        duration_hint = cfg.steps * cfg.step_time * 1.2 + 60.0
    else:
        cfg = _smg_config(scale)
        worker = smg2000_worker(cfg, seed=rep_seed)
        duration_hint = cfg.pre_sleep + cfg.post_sleep + 240.0
    world = MpiWorld(
        preset,
        pin,
        timer=timer,
        seed=rep_seed,
        duration_hint=duration_hint,
        jitter=OsJitterModel(rate=10.0, mean_delay=5e-6),
    )
    run = world.run(
        worker, tracing=True, tracing_initially=False,
        options=RunOptions(engine=engine),
    )
    corr = linear_interpolation(run.init_offsets, run.final_offsets)
    trace = corr.apply(run.trace)
    p2p = scan_messages(trace.messages(strict=False), lmin=0.0)
    coll, logical = scan_collectives(trace, lmin=0.0)
    checked = p2p.checked + coll.checked
    violated = p2p.violated + coll.violated
    total_events = trace.total_events()
    msg_events = trace.event_counts()
    transfer = (
        msg_events.get(EventType.SEND, 0)
        + msg_events.get(EventType.RECV, 0)
        + msg_events.get(EventType.COLL_ENTER, 0)
        + msg_events.get(EventType.COLL_EXIT, 0)
    )
    return Fig7RunStats(
        reversed_pct=100.0 * violated / checked if checked else 0.0,
        message_event_pct=100.0 * transfer / total_events if total_events else 0.0,
        messages=checked,
        events=total_events,
    )


def fig7_app_violations(
    app: str = "pop",
    seed: int = _UNSET,
    runs: int = 3,
    nprocs: int = 32,
    scale: float = 0.1,
    timer: str = "tsc",
    jobs: int | None = _UNSET,
    cache: ResultCache | None = _UNSET,
    engine: str = _UNSET,
    *,
    options: RunOptions | None = None,
    telemetry=None,
) -> Fig7Result:
    """Fig. 7: percentage of reversed messages in Scalasca-style traces.

    Emulates the paper's setup: 32 processes on the Xeon cluster,
    scheduler-chosen placement, tracing via interposition, linear offset
    interpolation from measurements at init and finalize, violations
    counted over real plus logical (collective) messages, averaged over
    ``runs`` repetitions.

    The repetitions are independent simulations with explicit per-rep
    seeds, so they fan out over ``options.jobs`` worker processes with
    results identical to a serial run; ``options.cache`` memoizes
    finished repetitions.  ``engine="batch"`` selects the vectorized
    trace generator — bit-identical by contract, and invisible to cache
    keys, so a cached figure regenerates from either engine's entries.
    The ``seed`` / ``jobs`` / ``cache`` / ``engine`` keywords are
    deprecated shims for ``options``.
    """
    if app not in ("pop", "smg2000"):
        raise ConfigurationError(f"unknown app {app!r} (use 'pop' or 'smg2000')")
    options = resolve_options(
        options, caller="fig7_app_violations",
        seed=seed, jobs=jobs, cache=cache, engine=engine,
    )
    seed = options.resolved_seed(0)
    grid = [
        dict(
            app=app, rep_seed=seed * 1000 + rep, nprocs=nprocs,
            scale=scale, timer=timer, engine=options.engine,
        )
        for rep in range(runs)
    ]
    stats = run_grid(_fig7_one_run, grid, options=options, telemetry=telemetry)
    return Fig7Result(app=app, runs=list(stats))


# ----------------------------------------------------------------------
# Fig. 8 — OpenMP violations vs thread count
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    threads: list[int]
    reports: dict[int, list[PompRegionReport]]

    def mean_pct(self, nthreads: int, kind: str) -> float:
        return float(np.mean([r.pct(kind) for r in self.reports[nthreads]]))

    def summary(self, nthreads: int, kind: str,
                level: float = DEFAULT_LEVEL) -> SampleSummary:
        """CI of the violation percentage over this thread count's runs."""
        return summarize(
            np.array([r.pct(kind) for r in self.reports[nthreads]]), level=level
        )

    def rows(self) -> list[tuple[int, float, float, float, float]]:
        return [
            (
                n,
                self.mean_pct(n, "any"),
                self.mean_pct(n, "entry"),
                self.mean_pct(n, "exit"),
                self.mean_pct(n, "barrier"),
            )
            for n in self.threads
        ]


def _fig8_one_run(nthreads: int, run_seed: int, regions: int) -> PompRegionReport:
    """One OpenMP benchmark run + POMP scan — a :func:`run_grid` job."""
    return scan_pomp(
        run_parallel_for_benchmark(
            OmpTeamConfig(threads=nthreads, regions=regions), seed=run_seed
        )
    )


def fig8_openmp_violations(
    threads: tuple[int, ...] = (4, 8, 12, 16),
    seed: int = _UNSET,
    runs: int = 3,
    regions: int = 200,
    jobs: int | None = _UNSET,
    cache: ResultCache | None = _UNSET,
    *,
    options: RunOptions | None = None,
    telemetry=None,
) -> Fig8Result:
    """Fig. 8: % of parallel regions with POMP violations vs threads.

    No offset alignment or interpolation is applied (paper's setup);
    numbers are averaged over ``runs`` seeds like the paper's three
    measurements.  The (thread count x repetition) grid fans out over
    ``options.jobs`` workers deterministically.  The ``seed`` / ``jobs``
    / ``cache`` keywords are deprecated shims for ``options``.
    """
    options = resolve_options(
        options, caller="fig8_openmp_violations", seed=seed, jobs=jobs, cache=cache
    )
    seed = options.resolved_seed(1)
    grid = [
        dict(nthreads=n, run_seed=seed + rep, regions=regions)
        for n in threads
        for rep in range(runs)
    ]
    flat = run_grid(_fig8_one_run, grid, options=options, telemetry=telemetry)
    reports: dict[int, list[PompRegionReport]] = {
        n: flat[k * runs : (k + 1) * runs] for k, n in enumerate(threads)
    }
    return Fig8Result(threads=list(threads), reports=reports)


# ----------------------------------------------------------------------
# Intra-node noise (Section IV text)
# ----------------------------------------------------------------------
@dataclass
class IntranodeResult:
    inter_chip_max: float  # max |deviation| between chips of one node
    inter_core_max: float  # max |deviation| between cores of one chip


def intranode_noise(seed: int = 0, duration: float = 300.0) -> IntranodeResult:
    """Same-SMP-node deviations: essentially noise around zero, max
    ~0.1 us (paper, Section IV) — MPI semantics survive untreated."""
    preset = xeon_cluster()
    chip_series = measure_deviation(
        preset, inter_chip(preset.machine), timer="tsc",
        duration=duration, probe_interval=2.0, seed=seed,
    )
    core_series = measure_deviation(
        preset, inter_core(preset.machine), timer="tsc",
        duration=duration, probe_interval=2.0, seed=seed,
    )
    return IntranodeResult(
        inter_chip_max=max(s.max_abs("aligned") for s in chip_series.values()),
        inter_core_max=max(s.max_abs("aligned") for s in core_series.values()),
    )


# ----------------------------------------------------------------------
# Extension studies (the paper's open questions; see DESIGN.md)
# ----------------------------------------------------------------------
@dataclass
class OmpCorrectionResult:
    """Violation percentages per scheme per thread count (means)."""

    threads: list[int]
    raw: dict[int, float]
    aligned: dict[int, float]
    linear: dict[int, float]
    clc: dict[int, float]

    def rows(self) -> list[tuple[int, float, float, float, float]]:
        return [
            (n, self.raw[n], self.aligned[n], self.linear[n], self.clc[n])
            for n in self.threads
        ]


def ext_openmp_correction(
    threads: tuple[int, ...] = (4, 8, 12, 16),
    seed: int = 2,
    runs: int = 3,
    regions: int = 120,
) -> OmpCorrectionResult:
    """Answer the paper's OpenMP open question inside the model.

    Per thread count, runs the parallel-for benchmark with offset
    measurements, then compares raw / alignment-corrected / linearly
    interpolated / POMP-CLC-corrected violation percentages (means over
    ``runs`` seeds).
    """
    from repro.openmp.correction import pomp_clc, thread_corrections

    result = OmpCorrectionResult(
        threads=list(threads), raw={}, aligned={}, linear={}, clc={}
    )
    for n in threads:
        raw, aligned, linear, clc = [], [], [], []
        for rep in range(runs):
            trace = run_parallel_for_benchmark(
                OmpTeamConfig(threads=n, regions=regions),
                seed=seed + rep,
                measure_offsets=True,
            )
            raw.append(scan_pomp(trace).pct("any"))
            aligned.append(
                scan_pomp(thread_corrections(trace, "align").apply(trace)).pct("any")
            )
            linear.append(
                scan_pomp(thread_corrections(trace, "linear").apply(trace)).pct("any")
            )
            clc.append(scan_pomp(pomp_clc(trace).trace).pct("any"))
        result.raw[n] = float(np.mean(raw))
        result.aligned[n] = float(np.mean(aligned))
        result.linear[n] = float(np.mean(linear))
        result.clc[n] = float(np.mean(clc))
    return result


@dataclass
class WaitstateAccuracyResult:
    """Late Sender analysis under each correction vs. ground truth."""

    truth_total: float
    totals: dict[str, float]  # scheme -> reported total wait
    sign_flips: dict[str, int]  # scheme -> misclassified messages

    def error_pct(self, scheme: str) -> float:
        if self.truth_total == 0:
            return 0.0
        return 100.0 * abs(self.totals[scheme] - self.truth_total) / self.truth_total


def _waitstate_worker(ws_seed: int, steps: int):
    """Deliberately imbalanced ring worker for the wait-state study."""

    def worker(ctx):
        rng = np.random.default_rng((ws_seed << 8) ^ ctx.rank)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for _ in range(steps):
            work = 2e-4 * (1.0 + 0.5 * float(rng.random()) + 0.5 * (ctx.rank % 2))
            yield from ctx.compute(work)
            yield from ctx.send(right, tag=1, nbytes=64)
            yield from ctx.recv(src=left, tag=1)
        return None

    return worker


def _waitstate_job(
    mode: str, timer: str, seed: int, nprocs: int, steps: int
):
    """One wait-state simulation — a :func:`run_grid` job.

    ``mode="truth"`` runs with perfect clocks and returns the ground-
    truth :class:`~repro.analysis.waitstates.WaitStateReport`;
    ``mode="measured"`` runs with ``timer`` and returns the reports of
    the raw / linearly interpolated / CLC-corrected analyses.
    """
    from repro.analysis.waitstates import late_sender
    from repro.sync.violations import lmin_matrix_from_trace

    preset = xeon_cluster()
    world = MpiWorld(
        preset,
        inter_node(preset.machine, nprocs),
        timer="global" if mode == "truth" else timer,
        seed=seed,
        duration_hint=60.0,
        mpi_regions=True,
    )
    run = world.run(_waitstate_worker(seed, steps))
    if mode == "truth":
        return late_sender(run.trace)

    raw = late_sender(run.trace)
    interp_trace = linear_interpolation(run.init_offsets, run.final_offsets).apply(run.trace)
    interp = late_sender(interp_trace)
    lmin = lmin_matrix_from_trace(run.trace, preset.latency)
    clc_trace = ControlledLogicalClock().correct(interp_trace, lmin=lmin).trace
    clc = late_sender(clc_trace)
    return {"raw": raw, "linear": interp, "clc": clc}


def ext_waitstate_accuracy(
    seed: int = _UNSET,
    nprocs: int = 6,
    steps: int = 60,
    timer: str = "mpi_wtime",
    jobs: int | None = _UNSET,
    cache: ResultCache | None = _UNSET,
    *,
    options: RunOptions | None = None,
    telemetry=None,
) -> WaitstateAccuracyResult:
    """Quantify the paper's "false conclusions": Late Sender analysis on
    ground truth vs. raw / interpolated / CLC-corrected timestamps.

    The ground-truth and measured simulations are independent worlds
    with the same seed, so they run as two :func:`run_grid` jobs.  The
    ``seed`` / ``jobs`` / ``cache`` keywords are deprecated shims for
    ``options``.
    """
    options = resolve_options(
        options, caller="ext_waitstate_accuracy", seed=seed, jobs=jobs, cache=cache
    )
    seed = options.resolved_seed(11)
    grid = [
        dict(mode="truth", timer=timer, seed=seed, nprocs=nprocs, steps=steps),
        dict(mode="measured", timer=timer, seed=seed, nprocs=nprocs, steps=steps),
    ]
    truth, schemes = run_grid(_waitstate_job, grid, options=options, telemetry=telemetry)

    return WaitstateAccuracyResult(
        truth_total=truth.total,
        totals={name: rep.total for name, rep in schemes.items()},
        sign_flips={name: rep.sign_flips(truth) for name, rep in schemes.items()},
    )
