"""Software/system clock drift builders: ``gettimeofday`` and ``MPI_Wtime``.

Per Section II of the paper, software clocks are realized as user or
library functions; *system* clocks (``gettimeofday()``) are maintained by
the OS on top of some hardware source and commonly steered by NTP.  Open
MPI's ``MPI_Wtime()`` defaults to ``gettimeofday()``, so both inherit the
NTP discipline's signature failure mode for tracing: **deliberate,
sudden drift adjustments** (Fig. 4a/4b).

The builders here wrap a hardware-style base oscillator
(:func:`repro.clocks.hardware.build_oscillator_drift`) in an
:class:`~repro.clocks.ntp.NTPDiscipline` whose parameters differ per
platform preset — e.g. the Opteron ("Jaguar") preset uses a long poll
interval and a strong ageing ramp, matching the paper's observation that
the worst residuals occurred with ``gettimeofday()`` on that system
(Fig. 5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clocks.drift import CompositeDrift, DriftModel, LinearRampDrift
from repro.clocks.hardware import OscillatorParams, build_oscillator_drift
from repro.clocks.ntp import NTPDiscipline

__all__ = [
    "NtpParams",
    "SoftwareClockParams",
    "GETTIMEOFDAY_XEON_PARAMS",
    "GETTIMEOFDAY_OPTERON_PARAMS",
    "MPI_WTIME_XEON_PARAMS",
    "build_software_drift",
]


@dataclass(frozen=True)
class NtpParams:
    """NTP discipline knobs (see :class:`repro.clocks.ntp.NTPDiscipline`)."""

    poll_interval: float = 64.0
    measurement_error: float = 5.0e-5
    adjust_threshold: float = 1.28e-4
    amortization: float = 300.0
    max_slew: float = 5.0e-4


@dataclass(frozen=True)
class SoftwareClockParams:
    """One platform's system-clock configuration.

    Attributes
    ----------
    oscillator:
        Underlying hardware source statistics.
    ntp:
        Discipline parameters, or ``None`` for an undisciplined system
        clock (free-running, like compute nodes without an NTP daemon).
    ageing_accel:
        Extra deterministic rate ramp (1/s^2) applied beneath the
        discipline — the "curvy" component visible in Fig. 4b / 5c.
    initial_offset_spread:
        Uniform scale of the initial system-time disagreement, seconds.
        System clocks are set at boot from some reference, so unlike raw
        counters they start out roughly (ms-scale) aligned.
    """

    oscillator: OscillatorParams = field(default_factory=OscillatorParams)
    ntp: NtpParams | None = field(default_factory=NtpParams)
    ageing_accel: float = 0.0
    initial_offset_spread: float = 2.0e-3


#: ``gettimeofday()`` on the Xeon cluster (Fig. 4b): NTP-disciplined,
#: with a gentle thermal curve underneath.
GETTIMEOFDAY_XEON_PARAMS = SoftwareClockParams(
    oscillator=OscillatorParams(
        rate_spread=9.0e-7,
        wander_sigma=1.0e-9,
        wander_step=10.0,
        thermal_amplitude=1.2e-8,
        thermal_period=900.0,
        initial_offset_spread=0.0,
    ),
    ntp=NtpParams(poll_interval=64.0, amortization=300.0, adjust_threshold=1.28e-4),
    ageing_accel=0.0,
    initial_offset_spread=2.5e-4,
)

#: ``MPI_Wtime()`` on the Xeon cluster (Fig. 4a).  Open MPI maps it to
#: ``gettimeofday()``; the compute partition polls NTP rarely, so drift
#: runs free for minutes and the eventual slew is comparatively violent —
#: reproducing the ">200 us after a short period, then an abrupt slope
#: change" of the paper.
MPI_WTIME_XEON_PARAMS = SoftwareClockParams(
    oscillator=OscillatorParams(
        rate_spread=1.2e-6,
        wander_sigma=8.0e-10,
        wander_step=10.0,
        thermal_amplitude=6.0e-9,
        thermal_period=1100.0,
        initial_offset_spread=0.0,
    ),
    ntp=NtpParams(poll_interval=128.0, amortization=100.0, adjust_threshold=2.5e-4),
    ageing_accel=0.0,
    initial_offset_spread=5.0e-5,
)

#: ``gettimeofday()`` on the Opteron cluster "Jaguar" (Fig. 5c): the
#: paper's worst case.  Catamount-era compute nodes synchronized rarely;
#: a strong ageing ramp defeats two-point interpolation badly
#: (parabolic residual ~ accel * T^2 / 8, hundreds of us over an hour).
GETTIMEOFDAY_OPTERON_PARAMS = SoftwareClockParams(
    oscillator=OscillatorParams(
        rate_spread=1.2e-6,
        wander_sigma=2.0e-9,
        wander_step=10.0,
        thermal_amplitude=2.0e-8,
        thermal_period=1800.0,
        initial_offset_spread=0.0,
    ),
    ntp=NtpParams(
        poll_interval=512.0,
        measurement_error=1.5e-4,
        amortization=1500.0,
        adjust_threshold=3.0e-4,
    ),
    ageing_accel=6.0e-11,
    initial_offset_spread=1.0e-3,
)


def build_software_drift(
    params: SoftwareClockParams,
    rng: np.random.Generator,
    duration: float,
) -> DriftModel:
    """Draw one node's system-clock drift model.

    Consumes randomness from ``rng`` for the oscillator draw, the ageing
    ramp sign, the initial offset, and the NTP measurement noise; the
    returned model is deterministic.
    """
    base = build_oscillator_drift(params.oscillator, rng, duration)
    if params.ageing_accel != 0.0:
        accel = float(rng.normal(0.0, params.ageing_accel))
        base = CompositeDrift([base, LinearRampDrift(rate0=0.0, accel=accel)])
    initial_offset = float(
        rng.uniform(-params.initial_offset_spread, params.initial_offset_spread)
    )
    if params.ntp is None:
        return CompositeDrift(
            [base, LinearRampDrift(rate0=0.0, accel=0.0, initial_offset=initial_offset)]
        )
    ntp = params.ntp
    return NTPDiscipline(
        base=base,
        rng=rng,
        duration=duration,
        poll_interval=ntp.poll_interval,
        measurement_error=ntp.measurement_error,
        adjust_threshold=ntp.adjust_threshold,
        amortization=ntp.amortization,
        max_slew=ntp.max_slew,
        initial_offset=initial_offset,
    )
