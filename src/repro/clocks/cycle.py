"""Cycle-counter clocks perturbed by dynamic frequency scaling.

Section II of the paper: *"Clocks based on cycle counters use the
processor clock signal to increment an internal counter on each tick.
The step size ... may change over time, as state-of-the-art power
management may dynamically slow down or accelerate the signal.  As a
consequence, remote cycle counters are very hard to synchronize and
therefore only useful to compare events happening on the same CPU
chip."*

A cycle counter converted to time by dividing by the *nominal* frequency
acquires an enormous rate error whenever DVFS switches the actual
frequency: running at 2.0 GHz on a nominal 3.0 GHz part makes "time" run
33 % slow.  We model DVFS as a semi-Markov process over a small set of
frequency levels with exponentially distributed dwell times, yielding a
piecewise-constant drift rate with rate steps many orders of magnitude
above anything NTP or thermal wander produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clocks.drift import CompositeDrift, ConstantDrift, DriftModel, PiecewiseConstantDrift
from repro.errors import ConfigurationError

__all__ = ["DvfsParams", "build_cycle_counter_drift"]


@dataclass(frozen=True)
class DvfsParams:
    """Dynamic voltage/frequency scaling behaviour of one chip.

    Attributes
    ----------
    nominal_ghz:
        Frequency the counter-to-seconds conversion assumes.
    levels_ghz:
        Frequencies the governor may select (including nominal).
    level_weights:
        Steady-state selection probabilities (normalized internally).
    mean_dwell:
        Mean dwell time in one frequency level, seconds.
    """

    nominal_ghz: float = 3.0
    levels_ghz: tuple[float, ...] = (3.0, 2.33, 2.0)
    level_weights: tuple[float, ...] = (0.6, 0.25, 0.15)
    mean_dwell: float = 30.0

    def __post_init__(self) -> None:
        if self.nominal_ghz <= 0 or any(f <= 0 for f in self.levels_ghz):
            raise ConfigurationError("frequencies must be positive")
        if len(self.levels_ghz) != len(self.level_weights):
            raise ConfigurationError("levels_ghz and level_weights lengths differ")
        if self.mean_dwell <= 0:
            raise ConfigurationError("mean_dwell must be positive")


def build_cycle_counter_drift(
    params: DvfsParams,
    rng: np.random.Generator,
    duration: float,
    base_rate_spread: float = 2.0e-6,
    initial_offset_spread: float = 5.0,
) -> DriftModel:
    """Draw one chip's DVFS-perturbed cycle-counter drift.

    The returned model is the sum of a small fixed oscillator offset and
    the (huge) DVFS steps: rate on a segment at frequency ``f`` is
    ``f / nominal - 1``.
    """
    weights = np.asarray(params.level_weights, dtype=np.float64)
    weights = weights / weights.sum()
    levels = np.asarray(params.levels_ghz, dtype=np.float64)

    times = [0.0]
    t = 0.0
    while t < duration:
        t += float(rng.exponential(params.mean_dwell))
        times.append(t)
    breakpoints = np.asarray(times, dtype=np.float64)
    chosen = rng.choice(levels.size, size=breakpoints.size, p=weights)
    rates = levels[chosen] / params.nominal_ghz - 1.0

    dvfs = PiecewiseConstantDrift(breakpoints, rates)
    base = ConstantDrift(
        rate=float(rng.normal(0.0, base_rate_spread)),
        initial_offset=float(rng.uniform(-initial_offset_spread, initial_offset_spread)),
    )
    return CompositeDrift([base, dvfs])
