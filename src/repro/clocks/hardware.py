"""Hardware clock (timestamp-counter) drift builders.

Section II of the paper considers three hardware clocks, all 64-bit
special-purpose registers driven by dedicated oscillators:

* **Intel TSC** — timestamp counter register, ticks at the nominal core
  frequency (constant-rate on the studied Xeons);
* **IBM TB** — PowerPC time base register, ticks at the time-base
  frequency (a fixed fraction of the bus clock);
* **IBM RTC** — real-time clock counting seconds and nanoseconds.

Their defining property (Fig. 4c) is an *approximately* constant drift:
no NTP discipline touches them, so the only error sources are the
oscillator's frequency offset (ppm-scale, fixed per board), slow random
wander (ppb-scale, thermal/ageing), and an optional periodic thermal
component.  These builders return :class:`~repro.clocks.drift.CompositeDrift`
instances assembled from those three ingredients.

The magnitudes below follow the paper's curves: inter-node deviations of
hardware clocks grow near-linearly at a few ppm (Fig. 4c reaches
milliseconds over an hour before interpolation), while the *nonlinear*
residual left after linear interpolation reaches tens of microseconds
over an hour (Fig. 5a/5b) — enough to exceed the 4.29 us inter-node
latency "already after a few minutes".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clocks.drift import (
    CompositeDrift,
    ConstantDrift,
    DriftModel,
    OrnsteinUhlenbeckDrift,
    RandomWalkDrift,
    SinusoidalDrift,
)

__all__ = [
    "OscillatorParams",
    "TSC_PARAMS",
    "TIMEBASE_PARAMS",
    "RTC_PARAMS",
    "build_oscillator_drift",
]


@dataclass(frozen=True)
class OscillatorParams:
    """Statistical description of one family of hardware oscillators.

    Attributes
    ----------
    rate_spread:
        Std. dev. of the fixed frequency offset across boards
        (dimensionless; 1e-6 = 1 ppm).
    wander_sigma:
        Std. dev. of the drift-rate random-walk increment per
        ``wander_step`` seconds (1e-9 = 1 ppb / step).
    wander_step:
        Random-walk sampling interval, seconds.
    thermal_amplitude:
        Amplitude of the sinusoidal drift-rate modulation (HVAC cycles).
    thermal_period:
        Period of the thermal cycle, seconds.
    initial_offset_spread:
        Scale of the uniform initial offset between boards, seconds.
        Hardware counters start at power-on, so raw offsets are huge;
        what matters to the study is only that they are unknown.
    fast_sigma / fast_tau:
        Stationary std and correlation time of the mean-reverting fast
        rate fluctuation (:class:`OrnsteinUhlenbeckDrift`) — the
        short-horizon wobble behind Fig. 6.  ``fast_sigma=0`` disables.
    """

    rate_spread: float = 2.0e-6
    wander_sigma: float = 1.0e-9
    wander_step: float = 10.0
    thermal_amplitude: float = 4.0e-9
    thermal_period: float = 1200.0
    initial_offset_spread: float = 5.0
    fast_sigma: float = 0.0
    fast_tau: float = 60.0


#: Intel timestamp counter register (Xeon cluster, Fig. 4c / 5a / 6).
TSC_PARAMS = OscillatorParams(
    rate_spread=1.8e-6,
    wander_sigma=1.4e-9,
    wander_step=10.0,
    thermal_amplitude=4.0e-9,
    thermal_period=1100.0,
    fast_sigma=2.0e-8,
    fast_tau=60.0,
)

#: IBM time base register (PowerPC cluster "MareNostrum", Fig. 5b).
TIMEBASE_PARAMS = OscillatorParams(
    rate_spread=2.2e-6,
    wander_sigma=1.4e-9,
    wander_step=10.0,
    thermal_amplitude=6.0e-9,
    thermal_period=1500.0,
    fast_sigma=1.5e-8,
    fast_tau=80.0,
)

#: IBM real-time clock (seconds + nanoseconds register).
RTC_PARAMS = OscillatorParams(
    rate_spread=2.0e-6,
    wander_sigma=1.2e-9,
    wander_step=10.0,
    thermal_amplitude=5.0e-9,
    thermal_period=1300.0,
)


def build_oscillator_drift(
    params: OscillatorParams,
    rng: np.random.Generator,
    duration: float,
    include_wander: bool = True,
) -> DriftModel:
    """Draw one concrete oscillator from a parameter family.

    Each call consumes randomness from ``rng`` to fix this board's
    frequency offset, initial offset, wander path, and thermal phase; the
    returned model is then deterministic.

    Parameters
    ----------
    params:
        Family statistics (e.g. :data:`TSC_PARAMS`).
    rng:
        Per-board random stream.
    duration:
        True-time horizon the wander path must cover, seconds.
    include_wander:
        Set False for an idealized constant-drift oscillator (used by
        baselines and tests).
    """
    base_rate = float(rng.normal(0.0, params.rate_spread))
    initial_offset = float(rng.uniform(-params.initial_offset_spread, params.initial_offset_spread))
    components: list[DriftModel] = [ConstantDrift(rate=base_rate, initial_offset=initial_offset)]
    if include_wander:
        if params.wander_sigma > 0.0:
            components.append(
                RandomWalkDrift(
                    rng=rng,
                    sigma=params.wander_sigma,
                    step=params.wander_step,
                    duration=max(duration, params.wander_step),
                )
            )
        if params.thermal_amplitude > 0.0:
            components.append(
                SinusoidalDrift(
                    amplitude=params.thermal_amplitude,
                    period=params.thermal_period,
                    phase_time=float(rng.uniform(0.0, params.thermal_period)),
                )
            )
        if params.fast_sigma > 0.0:
            components.append(
                OrnsteinUhlenbeckDrift(
                    rng=rng,
                    sigma=params.fast_sigma,
                    tau=params.fast_tau,
                    step=min(params.fast_tau / 10.0, 10.0),
                    duration=max(duration, 10.0),
                )
            )
    if len(components) == 1:
        return components[0]
    return CompositeDrift(components)
