"""Clock front-end: a readable clock with finite resolution and read costs.

A :class:`Clock` turns a drift model into something a simulated process
can *query*, adding the measurement-error mechanisms the paper lists in
Section III.c:

* **finite timer resolution** — readings are quantized to a grid
  ("insufficient timer resolution may introduce measurement errors");
* **read overhead** — each query consumes true time ("each access
  introduces a certain and usually not negligible overhead");
* **read jitter** — OS interference randomly delays the query
  ("an effect exacerbated by OS jitter");
* **monotonicity** — successive readings never go backwards, matching the
  behaviour of every real timer API.

Scalar :meth:`Clock.read` is the in-simulation path used by the
discrete-event engine; vectorized :meth:`Clock.read_array` is the
postmortem path used when an experiment needs the clock's value at many
true times at once (e.g. to paint deviation curves).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.clocks.drift import DriftModel
from repro.errors import ClockError, ConfigurationError

__all__ = ["Clock"]


class Clock:
    """A local processor clock as seen by one simulated process.

    Parameters
    ----------
    drift:
        Error model mapping true time to accumulated clock error.
    resolution:
        Quantization grid in seconds (0 disables quantization).  Readings
        are floored to a multiple of the resolution, like a tick counter.
    read_overhead:
        True-time cost of one query, seconds.  The simulation engine
        charges this to the calling process; the reading itself reflects
        the clock value at the *start* of the query.
    read_jitter:
        Scale (seconds) of an exponentially-distributed extra delay
        applied to the sampling instant, modeling preemption between the
        query and the actual register/syscall read.  Exponential because
        interference is one-sided: it can only make the reading *later*.
    rng:
        Randomness for jitter; required when ``read_jitter > 0``.
    name:
        Diagnostic label.
    """

    __slots__ = ("drift", "resolution", "read_overhead", "read_jitter", "rng", "name", "_last")

    def __init__(
        self,
        drift: DriftModel,
        resolution: float = 0.0,
        read_overhead: float = 0.0,
        read_jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        if resolution < 0 or read_overhead < 0 or read_jitter < 0:
            raise ConfigurationError("resolution, overhead and jitter must be non-negative")
        if read_jitter > 0 and rng is None:
            raise ConfigurationError("read_jitter > 0 requires an rng")
        self.drift = drift
        self.resolution = float(resolution)
        self.read_overhead = float(read_overhead)
        self.read_jitter = float(read_jitter)
        self.rng = rng
        self.name = name
        self._last = -math.inf

    # ------------------------------------------------------------------
    # In-simulation scalar path
    # ------------------------------------------------------------------
    def read(self, t_true: float) -> float:
        """Read the clock at true time ``t_true`` (jittered, quantized, monotone).

        Raises :class:`ClockError` if ``t_true`` precedes the time of a
        previous read — the simulation must only move forward.
        """
        sample_t = t_true
        if self.read_jitter > 0.0:
            sample_t = t_true + float(self.rng.exponential(self.read_jitter))
        # Scalar fast path: most drift models return a plain float for a
        # float input, so skip the float(np scalar) round-trip that the
        # engine's hot loop would otherwise pay on every read.
        offset = self.drift.offset_at(sample_t)
        if type(offset) is not float:
            offset = float(offset)
        value = self._quantize(sample_t + offset)
        if value < self._last:
            # A real timer API never returns a smaller value than a
            # previous call on the same clock; clamp like the kernel does.
            value = self._last
        self._last = value
        return value

    def ideal_read(self, t_true: float) -> float:
        """Noise-free reading (no jitter, no quantization, no clamping).

        Used by analyses that want the underlying drift curve itself.
        """
        return float(t_true + self.drift.offset_at(t_true))

    # ------------------------------------------------------------------
    # Postmortem vectorized path
    # ------------------------------------------------------------------
    def read_array(self, t_true: np.ndarray, jitter: bool = False) -> np.ndarray:
        """Vectorized readings at sorted true times.

        Parameters
        ----------
        t_true:
            1-D non-decreasing array of true times.
        jitter:
            Apply read jitter (requires an rng).  Quantization and a
            running-maximum monotonicity guard are always applied.

        Notes
        -----
        This path does not interact with :meth:`read`'s last-value state;
        it is an independent what-if evaluation of the same clock model.
        """
        t = np.asarray(t_true, dtype=np.float64)
        if t.ndim != 1:
            raise ClockError("read_array expects a 1-D array of true times")
        if t.size > 1 and np.any(np.diff(t) < 0):
            raise ClockError("read_array expects non-decreasing true times")
        sample_t = t
        if jitter and self.read_jitter > 0.0:
            if self.rng is None:
                raise ClockError("jittered read_array requires an rng")
            sample_t = t + self.rng.exponential(self.read_jitter, size=t.shape)
        values = sample_t + np.asarray(self.drift.offset_at(sample_t), dtype=np.float64)
        if self.resolution > 0.0:
            # Same one-ulp guard as _quantize, kept op-for-op identical
            # so read() and read_array() agree bitwise.
            k = np.floor(values / self.resolution)
            quantized = k * self.resolution
            over = quantized > values
            if over.any():
                quantized[over] = (k[over] - 1.0) * self.resolution
            values = quantized
        return np.maximum.accumulate(values)

    # ------------------------------------------------------------------
    def _quantize(self, value: float) -> float:
        if self.resolution > 0.0:
            # floor(value/res) can land one grid step high when the
            # division rounds up across an integer boundary (e.g.
            # 15.0/1e-9); a floored reading must never exceed the input.
            k = math.floor(value / self.resolution)
            q = k * self.resolution
            if q > value:
                q = (k - 1) * self.resolution
            return q
        return value

    def __repr__(self) -> str:
        return (
            f"Clock(name={self.name!r}, resolution={self.resolution:g}, "
            f"overhead={self.read_overhead:g}, jitter={self.read_jitter:g})"
        )
