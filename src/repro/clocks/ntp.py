"""NTP-style clock discipline.

Software clocks such as ``gettimeofday()`` (and ``MPI_Wtime()`` when it
wraps it, as Open MPI does by default) are periodically steered toward a
reference by an NTP daemon.  Per the paper (Section II): *"Jumps are
avoided by changing the drift while leaving the actual time unmodified"* —
i.e. the daemon **slews** the clock rate rather than stepping the value,
and *"varying network latencies limit the accuracy of NTP to about one
millisecond"*.

The consequences observed in Fig. 4a/4b — long phases of roughly constant
drift interrupted by sudden slope changes, deliberately introducing the
non-constant drifts that defeat linear offset interpolation — emerge here
from the mechanism itself rather than from curve fitting:

* every ``poll_interval`` seconds the daemon obtains an offset estimate
  contaminated with millisecond-scale network error;
* while the estimated magnitude stays below ``adjust_threshold`` the
  daemon leaves the current correction rate alone (a real ntpd's
  frequency discipline reacts on a much longer time constant than its
  poll interval — modeled as a dead band);
* once the threshold is exceeded, the correction rate is re-targeted to
  remove the estimated offset over ``amortization`` seconds, clamped to
  ``max_slew`` (ntpd clamps at 500 ppm).

The resulting disciplined offset is exactly representable as the base
drift plus a piecewise-constant correction rate, so evaluation stays
vectorized and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.clocks.drift import ArrayLike, DriftModel, _as_array, _ret
from repro.errors import ConfigurationError

__all__ = ["NTPDiscipline"]


class NTPDiscipline:
    """A drift model produced by slew-based steering of a base clock.

    Parameters
    ----------
    base:
        Undisciplined drift of the underlying oscillator.
    rng:
        Randomness for offset-measurement errors (consumed at
        construction; the resulting model is deterministic).
    duration:
        Horizon (seconds of true time) over which polls are simulated;
        beyond it the last correction rate is held.
    poll_interval:
        Seconds between daemon polls of the reference.
    measurement_error:
        Standard deviation of the offset estimate error, seconds
        (paper: "about one millisecond").
    adjust_threshold:
        Dead band: no rate change while ``|estimate| <= threshold``.
    amortization:
        Target horizon over which a detected offset is slewed away.
    max_slew:
        Clamp on the correction rate magnitude (dimensionless).
    initial_offset:
        Clock error at true time zero (the daemon does not know it).
    """

    __slots__ = ("base", "_epochs", "_offsets", "_corr_rates")

    def __init__(
        self,
        base: DriftModel,
        rng: np.random.Generator,
        duration: float = 4000.0,
        poll_interval: float = 64.0,
        measurement_error: float = 1e-3,
        adjust_threshold: float = 1.28e-4,
        amortization: float = 1000.0,
        max_slew: float = 5e-4,
        initial_offset: float = 0.0,
    ) -> None:
        if poll_interval <= 0 or duration <= 0:
            raise ConfigurationError("poll_interval and duration must be positive")
        if amortization <= 0:
            raise ConfigurationError("amortization must be positive")
        self.base = base

        n = max(1, int(np.ceil(duration / poll_interval))) + 1
        epochs = np.arange(n, dtype=np.float64) * poll_interval
        base_off = np.asarray(base.offset_at(epochs), dtype=np.float64)
        noise = rng.normal(0.0, measurement_error, size=n)

        offsets = np.empty(n)  # disciplined offset at each epoch
        corr = np.empty(n)  # correction rate applied on [epoch_k, epoch_{k+1})
        offsets[0] = initial_offset
        rate = 0.0
        for k in range(n):
            estimate = offsets[k] + noise[k]
            if abs(estimate) > adjust_threshold:
                rate = float(np.clip(-estimate / amortization, -max_slew, max_slew))
            corr[k] = rate
            if k + 1 < n:
                offsets[k + 1] = offsets[k] + (base_off[k + 1] - base_off[k]) + rate * poll_interval

        self._epochs = epochs
        self._offsets = offsets
        self._corr_rates = corr

    @property
    def adjustment_epochs(self) -> np.ndarray:
        """True times at which the correction rate actually changed."""
        changed = np.empty(self._corr_rates.size, dtype=bool)
        changed[0] = self._corr_rates[0] != 0.0
        changed[1:] = np.diff(self._corr_rates) != 0.0
        return self._epochs[changed]

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:  # scalar fast path (hot)
            i = int(np.searchsorted(self._epochs, t, side="right")) - 1
            if i < 0:
                i = 0
            last = self._epochs.size - 1
            if i > last:
                i = last
            epoch = float(self._epochs[i])
            return (
                float(self._offsets[i])
                + (float(self.base.offset_at(t)) - float(self.base.offset_at(epoch)))
                + float(self._corr_rates[i]) * (t - epoch)
            )
        arr, scalar = _as_array(t)
        idx = np.searchsorted(self._epochs, arr, side="right") - 1
        idx = np.clip(idx, 0, self._epochs.size - 1)
        base_arr = np.asarray(self.base.offset_at(arr), dtype=np.float64)
        base_at_epoch = np.asarray(self.base.offset_at(self._epochs[idx]), dtype=np.float64)
        out = (
            self._offsets[idx]
            + (base_arr - base_at_epoch)
            + self._corr_rates[idx] * (arr - self._epochs[idx])
        )
        return _ret(out, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        arr, scalar = _as_array(t)
        idx = np.searchsorted(self._epochs, arr, side="right") - 1
        idx = np.clip(idx, 0, self._epochs.size - 1)
        out = np.asarray(self.base.rate_at(arr), dtype=np.float64) + self._corr_rates[idx]
        return _ret(out, scalar)

    def __repr__(self) -> str:
        return (
            f"NTPDiscipline(base={self.base!r}, polls={self._epochs.size}, "
            f"adjustments={self.adjustment_epochs.size})"
        )
