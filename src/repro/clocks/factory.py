"""Assembly of per-machine clock ensembles.

A :class:`TimerSpec` describes one timer *technology* (which drift family,
what resolution/overhead/jitter, and at which level of the hierarchy a
distinct physical clock exists).  A :class:`ClockEnsemble` instantiates
that spec over a concrete :class:`~repro.cluster.topology.Machine`:

* ``scope="chip"`` — hardware counters (TSC, TB, ITC): one clock per
  chip; cores of a chip share it, and chips of one node share the node's
  oscillator (same board-level clock generator) apart from a small
  per-chip offset and rate epsilon.  This reproduces the paper's
  intra-node finding (deviations are pure noise, ~0.1 us) while leaving
  room for the Itanium preset where inter-chip offsets are large enough
  to break OpenMP semantics (Fig. 3/8).
* ``scope="node"`` — system clocks (``gettimeofday``, ``MPI_Wtime``):
  one clock per node, NTP-disciplined.
* ``scope="global"`` — a perfectly global clock (Blue Gene-style), used
  as ground truth in tests and baselines.

All randomness is drawn from named :class:`~repro.rng.RngFabric` streams,
so an ensemble is fully determined by ``(machine, spec, seed, duration)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.clocks.base import Clock
from repro.clocks.cycle import DvfsParams, build_cycle_counter_drift
from repro.clocks.drift import CompositeDrift, ConstantDrift, DriftModel
from repro.clocks.hardware import (
    RTC_PARAMS,
    TIMEBASE_PARAMS,
    TSC_PARAMS,
    OscillatorParams,
    build_oscillator_drift,
)
from repro.clocks.software import (
    GETTIMEOFDAY_OPTERON_PARAMS,
    GETTIMEOFDAY_XEON_PARAMS,
    MPI_WTIME_XEON_PARAMS,
    SoftwareClockParams,
    build_software_drift,
)
from repro.cluster.topology import Location, Machine
from repro.errors import ConfigurationError
from repro.rng import RngFabric

__all__ = ["TimerSpec", "timer_spec", "ClockEnsemble", "TIMER_TECHNOLOGIES"]

DriftBuilder = Callable[[np.random.Generator, float], DriftModel]


@dataclass(frozen=True)
class TimerSpec:
    """Description of one timer technology.

    Attributes
    ----------
    name:
        Technology label ("tsc", "gettimeofday", ...).
    scope:
        Where a distinct physical clock lives: "chip", "node" or "global".
    resolution:
        Reading quantization, seconds.
    read_overhead:
        True-time cost of one read, seconds.
    read_jitter:
        Exponential scale of read-delay noise, seconds.
    drift_builder:
        ``(rng, duration) -> DriftModel`` drawing one physical clock.
        Ignored for scope "global".
    chip_offset_spread / chip_rate_spread:
        For scope "chip": per-chip deviation from the node oscillator —
        uniform offset scale (seconds) and normal rate spread
        (dimensionless).
    """

    name: str
    scope: str
    resolution: float
    read_overhead: float
    read_jitter: float
    drift_builder: Optional[DriftBuilder] = None
    chip_offset_spread: float = 3.0e-8
    chip_rate_spread: float = 0.0

    def __post_init__(self) -> None:
        if self.scope not in ("chip", "node", "global"):
            raise ConfigurationError(f"unknown clock scope {self.scope!r}")
        if self.scope != "global" and self.drift_builder is None:
            raise ConfigurationError(f"spec {self.name!r} needs a drift_builder")


def _hw_builder(params: OscillatorParams) -> DriftBuilder:
    return lambda rng, duration: build_oscillator_drift(params, rng, duration)


def _sw_builder(params: SoftwareClockParams) -> DriftBuilder:
    return lambda rng, duration: build_software_drift(params, rng, duration)


def _cycle_builder(params: DvfsParams) -> DriftBuilder:
    return lambda rng, duration: build_cycle_counter_drift(params, rng, duration)


def _base_specs() -> dict[str, TimerSpec]:
    return {
        "tsc": TimerSpec(
            name="tsc",
            scope="chip",
            resolution=1.0 / 3.0e9,
            read_overhead=3.5e-8,
            read_jitter=1.5e-8,
            drift_builder=_hw_builder(TSC_PARAMS),
        ),
        "timebase": TimerSpec(
            name="timebase",
            scope="chip",
            resolution=1.0 / 14.318e6,
            read_overhead=3.0e-8,
            read_jitter=1.0e-8,
            drift_builder=_hw_builder(TIMEBASE_PARAMS),
        ),
        "rtc": TimerSpec(
            name="rtc",
            scope="chip",
            resolution=1.0e-9,
            read_overhead=8.0e-8,
            read_jitter=2.0e-8,
            drift_builder=_hw_builder(RTC_PARAMS),
        ),
        "gettimeofday": TimerSpec(
            name="gettimeofday",
            scope="node",
            resolution=1.0e-6,
            read_overhead=2.5e-7,
            read_jitter=8.0e-8,
            drift_builder=_sw_builder(GETTIMEOFDAY_XEON_PARAMS),
        ),
        "mpi_wtime": TimerSpec(
            name="mpi_wtime",
            scope="node",
            resolution=1.0e-6,
            read_overhead=4.0e-7,
            read_jitter=1.0e-7,
            drift_builder=_sw_builder(MPI_WTIME_XEON_PARAMS),
        ),
        "cycle": TimerSpec(
            name="cycle",
            scope="chip",
            resolution=1.0 / 3.0e9,
            read_overhead=1.0e-8,
            read_jitter=5.0e-9,
            drift_builder=_cycle_builder(DvfsParams()),
        ),
        "global": TimerSpec(
            name="global",
            scope="global",
            resolution=0.0,
            read_overhead=5.0e-8,
            read_jitter=0.0,
        ),
    }


#: Names accepted by :func:`timer_spec`.
TIMER_TECHNOLOGIES = tuple(sorted(_base_specs().keys()))


def timer_spec(technology: str, machine_kind: str = "xeon") -> TimerSpec:
    """Return the preset spec for a timer technology on a machine kind.

    ``machine_kind`` adapts platform-dependent details:

    * ``"opteron"`` swaps ``gettimeofday`` to the Jaguar preset
      (Fig. 5c's worst case);
    * ``"itanium"`` uses the ITC with *large* inter-chip offsets and a
      per-chip rate epsilon — the configuration behind Fig. 3/8;
    * ``"powerpc"`` leaves the base specs as-is (use "timebase" there).
    """
    specs = _base_specs()
    if technology not in specs:
        raise ConfigurationError(
            f"unknown timer technology {technology!r}; expected one of {TIMER_TECHNOLOGIES}"
        )
    spec = specs[technology]
    if machine_kind == "opteron" and technology == "gettimeofday":
        spec = replace(spec, drift_builder=_sw_builder(GETTIMEOFDAY_OPTERON_PARAMS))
    if machine_kind == "itanium" and technology in ("tsc", "cycle"):
        spec = replace(
            spec,
            resolution=1.0 / 1.6e9,
            read_jitter=3.0e-8,
            chip_offset_spread=6.0e-7,
            chip_rate_spread=2.0e-9,
        )
    return spec


class ClockEnsemble:
    """Concrete clocks for every location of one machine.

    Parameters
    ----------
    machine:
        Topology over which clocks are instantiated.
    spec:
        Timer technology (see :func:`timer_spec`).
    fabric:
        Deterministic randomness source.
    duration:
        True-time horizon drift paths must cover, seconds.

    Notes
    -----
    Clocks are instantiated lazily per scope unit and cached, so a
    62-node machine of which an experiment touches 4 nodes only pays for
    4 drift paths.  Processes/threads that share a physical clock share
    the same :class:`Clock` *instance* — including its monotonicity
    state, exactly like two threads reading one TSC register.
    """

    def __init__(
        self,
        machine: Machine,
        spec: TimerSpec,
        fabric: RngFabric,
        duration: float,
    ) -> None:
        self.machine = machine
        self.spec = spec
        self.fabric = fabric
        self.duration = float(duration)
        self._clocks: dict[tuple[int, int], Clock] = {}
        self._node_bases: dict[int, DriftModel] = {}
        self._global: Optional[Clock] = None

    # ------------------------------------------------------------------
    def clock_for(self, loc: Location) -> Clock:
        """The clock a process pinned at ``loc`` reads."""
        self.machine.validate(loc)
        if self.spec.scope == "global":
            return self._global_clock()
        if self.spec.scope == "node":
            key = (loc.node, -1)
        else:  # chip scope
            key = (loc.node, loc.chip)
        clock = self._clocks.get(key)
        if clock is None:
            clock = self._build(key)
            self._clocks[key] = clock
        return clock

    def drift_for(self, loc: Location) -> DriftModel:
        """Underlying drift model at ``loc`` (builds the clock if needed)."""
        return self.clock_for(loc).drift

    # ------------------------------------------------------------------
    def _global_clock(self) -> Clock:
        if self._global is None:
            self._global = Clock(
                drift=ConstantDrift(0.0, 0.0),
                resolution=self.spec.resolution,
                read_overhead=self.spec.read_overhead,
                read_jitter=self.spec.read_jitter,
                rng=self.fabric.generator("clock-jitter", "global"),
                name=f"{self.spec.name}@global",
            )
        return self._global

    def _node_base(self, node: int) -> DriftModel:
        base = self._node_bases.get(node)
        if base is None:
            rng = self.fabric.generator("clock-drift", self.spec.name, node)
            base = self.spec.drift_builder(rng, self.duration)
            self._node_bases[node] = base
        return base

    def _build(self, key: tuple[int, int]) -> Clock:
        node, chip = key
        drift = self._node_base(node)
        if chip >= 0:
            # Per-chip deviation from the node oscillator.
            rng = self.fabric.generator("clock-chip", self.spec.name, node, chip)
            chip_offset = float(
                rng.uniform(-self.spec.chip_offset_spread, self.spec.chip_offset_spread)
            )
            chip_rate = (
                float(rng.normal(0.0, self.spec.chip_rate_spread))
                if self.spec.chip_rate_spread > 0.0
                else 0.0
            )
            if chip_offset != 0.0 or chip_rate != 0.0:
                drift = CompositeDrift([drift, ConstantDrift(chip_rate, chip_offset)])
        label = f"{self.spec.name}@n{node}" + (f"c{chip}" if chip >= 0 else "")
        return Clock(
            drift=drift,
            resolution=self.spec.resolution,
            read_overhead=self.spec.read_overhead,
            read_jitter=self.spec.read_jitter,
            rng=self.fabric.generator("clock-jitter", self.spec.name, node, chip),
            name=label,
        )
