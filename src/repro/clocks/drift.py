"""Drift models: deterministic offset-vs-true-time functions.

A *drift model* describes the error of a clock as a function of ideal
("true") time.  If the true time is ``t``, a clock governed by drift model
``d`` reads ``t + d.offset_at(t)`` (before quantization and read noise,
which are applied by :class:`repro.clocks.base.Clock`).

The paper (Section II, Figure 1) characterizes clocks by their *offset*
(value difference at one instant) and *drift* (rate of change of the
offset).  Crucially, the study's subject is that drift is **not constant**:
NTP slews it abruptly (Fig. 4a/4b), temperature and power management bend
it slowly (Fig. 5).  Each of those mechanisms has a model class here, and
:class:`CompositeDrift` sums them.

All models are

* **deterministic** — any randomness is fixed at construction time, so an
  experiment can evaluate the same model repeatedly (e.g. once per probe
  and once per trace event) and get consistent values;
* **vectorized** — ``offset_at`` accepts scalars or numpy arrays of true
  time and evaluates in O(n log k) for k internal breakpoints.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Union, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DriftModel",
    "ConstantDrift",
    "LinearRampDrift",
    "PiecewiseConstantDrift",
    "SinusoidalDrift",
    "RandomWalkDrift",
    "CompositeDrift",
]

ArrayLike = Union[float, np.ndarray]


@runtime_checkable
class DriftModel(Protocol):
    """Protocol for clock-error functions.

    Implementations must be pure: two calls with the same argument return
    the same value.
    """

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        """Accumulated clock error (seconds) at true time ``t`` (seconds)."""
        ...

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        """Instantaneous drift rate (d offset / d t) at true time ``t``."""
        ...


def _as_array(t: ArrayLike) -> tuple[np.ndarray, bool]:
    """Coerce to float64 ndarray; report whether the input was scalar."""
    arr = np.asarray(t, dtype=np.float64)
    return arr, arr.ndim == 0


def _ret(values: np.ndarray, scalar: bool) -> ArrayLike:
    return float(values) if scalar else values


class ConstantDrift:
    """The textbook model: fixed initial offset and fixed drift rate.

    ``offset_at(t) = initial_offset + rate * t``

    This is the model that linear offset interpolation (paper Eq. 3)
    corrects *exactly*; its purpose here is mostly as a baseline and as a
    component of composites.

    Parameters
    ----------
    rate:
        Drift rate, dimensionless (1e-6 = 1 ppm).
    initial_offset:
        Clock error at true time 0, in seconds.
    """

    __slots__ = ("rate", "initial_offset")

    def __init__(self, rate: float = 0.0, initial_offset: float = 0.0) -> None:
        self.rate = float(rate)
        self.initial_offset = float(initial_offset)

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:  # scalar fast path (hot)
            return self.initial_offset + self.rate * t
        arr, scalar = _as_array(t)
        return _ret(self.initial_offset + self.rate * arr, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:
            return self.rate
        arr, scalar = _as_array(t)
        return _ret(np.full_like(arr, self.rate), scalar)

    def __repr__(self) -> str:
        return f"ConstantDrift(rate={self.rate:g}, initial_offset={self.initial_offset:g})"


class LinearRampDrift:
    """Drift rate that changes linearly with time (oscillator ageing).

    ``rate(t) = rate0 + accel * t`` hence
    ``offset_at(t) = offset0 + rate0 * t + accel * t**2 / 2``.

    Quartz ageing and slow monotone temperature trends produce exactly
    this gentle curvature; it is the simplest model that defeats two-point
    linear interpolation (the residual is the parabola's sagitta,
    ``accel * T**2 / 8`` over an interval of length ``T``).
    """

    __slots__ = ("rate0", "accel", "initial_offset")

    def __init__(self, rate0: float = 0.0, accel: float = 0.0, initial_offset: float = 0.0) -> None:
        self.rate0 = float(rate0)
        self.accel = float(accel)
        self.initial_offset = float(initial_offset)

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        arr, scalar = _as_array(t)
        return _ret(self.initial_offset + self.rate0 * arr + 0.5 * self.accel * arr * arr, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        arr, scalar = _as_array(t)
        return _ret(self.rate0 + self.accel * arr, scalar)

    def __repr__(self) -> str:
        return (
            f"LinearRampDrift(rate0={self.rate0:g}, accel={self.accel:g}, "
            f"initial_offset={self.initial_offset:g})"
        )


class PiecewiseConstantDrift:
    """Drift rate that is constant on intervals and jumps at breakpoints.

    This is the workhorse model: NTP slews, DVFS frequency steps, and the
    sampled random-walk wander all reduce to a piecewise-constant rate,
    i.e. a continuous, piecewise-*linear* offset curve — precisely the
    "phases of roughly constant drift interrupted by sudden drift
    adjustments" the paper observes in Fig. 4.

    Parameters
    ----------
    breakpoints:
        Strictly increasing true times ``[t_0, t_1, ..., t_{k-1}]`` at
        which the rate changes; ``rates[i]`` applies on
        ``[t_i, t_{i+1})`` and ``rates[0]`` also applies for ``t < t_0``
        (extended leftward), ``rates[-1]`` for ``t >= t_{k-1}``.
    rates:
        Drift rate per segment; ``len(rates) == len(breakpoints)``.
    initial_offset:
        Offset at ``t = breakpoints[0]``.
    """

    __slots__ = ("breakpoints", "rates", "initial_offset", "_cum")

    def __init__(
        self,
        breakpoints: Sequence[float],
        rates: Sequence[float],
        initial_offset: float = 0.0,
    ) -> None:
        bp = np.asarray(breakpoints, dtype=np.float64)
        rt = np.asarray(rates, dtype=np.float64)
        if bp.ndim != 1 or bp.size == 0:
            raise ConfigurationError("breakpoints must be a non-empty 1-D sequence")
        if rt.shape != bp.shape:
            raise ConfigurationError(
                f"rates shape {rt.shape} must match breakpoints shape {bp.shape}"
            )
        if bp.size > 1 and not np.all(np.diff(bp) > 0):
            raise ConfigurationError("breakpoints must be strictly increasing")
        self.breakpoints = bp
        self.rates = rt
        self.initial_offset = float(initial_offset)
        # Accumulated offset at each breakpoint: cum[i] = offset(bp[i]).
        seg = np.diff(bp) * rt[:-1]
        self._cum = self.initial_offset + np.concatenate(([0.0], np.cumsum(seg)))

    def _segment(self, t: float) -> int:
        """Segment index for a scalar time (clipped like the vector path)."""
        idx = int(np.searchsorted(self.breakpoints, t, side="right")) - 1
        if idx < 0:
            return 0
        last = self.breakpoints.size - 1
        return last if idx > last else idx

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:  # scalar fast path (hot)
            i = self._segment(t)
            return float(self._cum[i]) + float(self.rates[i]) * (
                t - float(self.breakpoints[i])
            )
        arr, scalar = _as_array(t)
        # Segment index: largest i with bp[i] <= t, clipped to [0, k-1]
        # so times before the first breakpoint extrapolate with rates[0].
        idx = np.searchsorted(self.breakpoints, arr, side="right") - 1
        idx = np.clip(idx, 0, self.breakpoints.size - 1)
        out = self._cum[idx] + self.rates[idx] * (arr - self.breakpoints[idx])
        return _ret(out, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:
            return float(self.rates[self._segment(t)])
        arr, scalar = _as_array(t)
        idx = np.searchsorted(self.breakpoints, arr, side="right") - 1
        idx = np.clip(idx, 0, self.breakpoints.size - 1)
        return _ret(self.rates[idx], scalar)

    def __repr__(self) -> str:
        return (
            f"PiecewiseConstantDrift(<{self.breakpoints.size} segments>, "
            f"initial_offset={self.initial_offset:g})"
        )


class SinusoidalDrift:
    """Periodic drift-rate modulation (machine-room temperature cycles).

    ``rate(t) = amplitude * sin(2*pi*(t - phase_time)/period)`` with the
    offset chosen so that ``offset_at(0) == 0``:

    ``offset_at(t) = -A*T/(2*pi) * (cos(w*(t-p)) - cos(-w*p))``.

    Temperature-induced frequency wander of a quartz oscillator over an
    HVAC cycle is the canonical source; the paper attributes the *curvy*
    residuals of Fig. 5 to "varying temperature and flexible power
    management".
    """

    __slots__ = ("amplitude", "period", "phase_time")

    def __init__(self, amplitude: float, period: float, phase_time: float = 0.0) -> None:
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase_time = float(phase_time)

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:  # scalar fast path (hot)
            import math

            w = 2.0 * math.pi / self.period
            scale = self.amplitude / w
            return -scale * (
                math.cos(w * (t - self.phase_time)) - math.cos(-w * self.phase_time)
            )
        arr, scalar = _as_array(t)
        w = 2.0 * np.pi / self.period
        scale = self.amplitude / w
        out = -scale * (np.cos(w * (arr - self.phase_time)) - np.cos(-w * self.phase_time))
        return _ret(out, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        arr, scalar = _as_array(t)
        w = 2.0 * np.pi / self.period
        return _ret(self.amplitude * np.sin(w * (arr - self.phase_time)), scalar)

    def __repr__(self) -> str:
        return (
            f"SinusoidalDrift(amplitude={self.amplitude:g}, period={self.period:g}, "
            f"phase_time={self.phase_time:g})"
        )


class RandomWalkDrift(PiecewiseConstantDrift):
    """Sampled random-walk drift rate (flicker/random-walk FM noise).

    The rate performs a Gaussian random walk sampled every ``step``
    seconds over ``[0, duration]``; beyond ``duration`` the last rate is
    held.  This is the standard phenomenological model for oscillator
    instability that is "predictable to some degree" but, per the paper,
    must be treated as non-deterministic by generic tools.

    Parameters
    ----------
    rng:
        Source of randomness (fixed at construction; the model itself is
        then deterministic).
    sigma:
        Standard deviation of the rate increment per step (dimensionless
        rate units, e.g. 1e-9 = 1 ppb per step).
    step:
        Sampling interval of the walk, seconds.
    duration:
        Horizon covered by distinct segments, seconds.
    rate0, initial_offset:
        Starting rate and offset.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        sigma: float,
        step: float = 10.0,
        duration: float = 4000.0,
        rate0: float = 0.0,
        initial_offset: float = 0.0,
    ) -> None:
        if step <= 0 or duration <= 0:
            raise ConfigurationError("step and duration must be positive")
        n = max(1, int(np.ceil(duration / step)))
        increments = rng.normal(0.0, sigma, size=n)
        rates = rate0 + np.concatenate(([0.0], np.cumsum(increments)))[:n]
        breakpoints = np.arange(n, dtype=np.float64) * step
        super().__init__(breakpoints, rates, initial_offset=initial_offset)


class OrnsteinUhlenbeckDrift(PiecewiseConstantDrift):
    """Mean-reverting drift-rate fluctuation (fast thermal noise).

    The rate follows a discretized Ornstein-Uhlenbeck process with
    stationary standard deviation ``sigma`` and correlation time ``tau``:
    unlike the random walk (whose integrated offset wanders as
    ``T^1.5``), the OU rate's *offset* fluctuation grows only like
    ``sqrt(T)`` for ``T >> tau`` — this is the short-horizon wobble that
    makes even a hardware clock's residual exceed the message latency on
    a 300 s run (paper Fig. 6) without blowing up the hour-scale
    residual of Fig. 5.

    Parameters
    ----------
    rng:
        Source of randomness (consumed at construction).
    sigma:
        Stationary std of the rate fluctuation (dimensionless).
    tau:
        Correlation time of the fluctuation, seconds.
    step:
        Sampling interval, seconds (should be << tau).
    duration:
        Horizon covered; the last rate is held beyond it.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        sigma: float,
        tau: float = 60.0,
        step: float = 5.0,
        duration: float = 4000.0,
    ) -> None:
        if tau <= 0 or step <= 0 or duration <= 0:
            raise ConfigurationError("tau, step and duration must be positive")
        n = max(1, int(np.ceil(duration / step)))
        decay = np.exp(-step / tau)
        innovation_std = sigma * np.sqrt(max(1.0 - decay * decay, 0.0))
        noise = rng.normal(0.0, innovation_std, size=n)
        rates = np.empty(n)
        rates[0] = float(rng.normal(0.0, sigma))
        for k in range(1, n):
            rates[k] = rates[k - 1] * decay + noise[k]
        breakpoints = np.arange(n, dtype=np.float64) * step
        super().__init__(breakpoints, rates)


class CompositeDrift:
    """Sum of several drift components.

    A realistic node clock is e.g. ``ConstantDrift(base ppm) +
    RandomWalkDrift(wander) + SinusoidalDrift(thermal)``; an NTP clock is
    ``NTPDiscipline`` wrapped around such a composite.
    """

    __slots__ = ("components",)

    def __init__(self, components: Sequence[DriftModel]) -> None:
        if not components:
            raise ConfigurationError("CompositeDrift needs at least one component")
        self.components = tuple(components)

    def offset_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:  # scalar fast path (hot)
            total = 0.0
            for c in self.components:
                total += float(c.offset_at(t))
            return total
        arr, scalar = _as_array(t)
        out = np.zeros_like(arr)
        for c in self.components:
            out = out + c.offset_at(arr)
        return _ret(out, scalar)

    def rate_at(self, t: ArrayLike) -> ArrayLike:
        if type(t) is float or type(t) is int:
            total = 0.0
            for c in self.components:
                total += float(c.rate_at(t))
            return total
        arr, scalar = _as_array(t)
        out = np.zeros_like(arr)
        for c in self.components:
            out = out + c.rate_at(arr)
        return _ret(out, scalar)

    def __repr__(self) -> str:
        return f"CompositeDrift({list(self.components)!r})"
