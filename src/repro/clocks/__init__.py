"""Clock and drift models.

This package models processor clocks as described in Section II of the
paper: cycle counters, hardware clocks (timestamp counters), software
clocks, and system clocks, each characterized by its *offset* and
(possibly time-varying) *drift* relative to an ideal global reference.

The central abstractions are

* :class:`repro.clocks.drift.DriftModel` — a deterministic function
  ``offset_at(t)`` giving the accumulated clock error at true time ``t``;
* :class:`repro.clocks.base.Clock` — a readable clock front-end combining
  a drift model with finite resolution, read overhead, and read jitter;
* :class:`repro.clocks.factory.ClockEnsemble` — per-machine assignment of
  clocks to nodes/chips for a given timer technology.
"""

from repro.clocks.drift import (
    CompositeDrift,
    ConstantDrift,
    DriftModel,
    LinearRampDrift,
    PiecewiseConstantDrift,
    RandomWalkDrift,
    SinusoidalDrift,
)
from repro.clocks.ntp import NTPDiscipline
from repro.clocks.base import Clock
from repro.clocks.factory import ClockEnsemble, TimerSpec, timer_spec
from repro.clocks.calibrate import DriftEstimate, allan_deviation, estimate_drift

__all__ = [
    "DriftModel",
    "ConstantDrift",
    "LinearRampDrift",
    "PiecewiseConstantDrift",
    "SinusoidalDrift",
    "RandomWalkDrift",
    "CompositeDrift",
    "NTPDiscipline",
    "Clock",
    "ClockEnsemble",
    "TimerSpec",
    "timer_spec",
    "allan_deviation",
    "estimate_drift",
    "DriftEstimate",
]
