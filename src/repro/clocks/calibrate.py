"""Clock characterization from measured offset series.

The paper characterizes timers by eyeballing deviation curves; this
module does it quantitatively, closing the loop between measurement and
model: feed it a probe series (e.g. from
:func:`repro.analysis.deviation.measure_deviation` — or from *your own
cluster*) and get back the parameters of the drift models in
:mod:`repro.clocks.drift`, so the simulator can be calibrated against a
real machine.

Two tools:

* :func:`allan_deviation` — the standard oscillator-stability statistic
  sigma_y(tau).  Its log-log slope identifies the dominant noise
  process: white phase noise falls as 1/tau, a frequency random walk
  rises as sqrt(tau), flicker/OU noise plateaus — exactly the three
  ingredients of the hardware-clock model;
* :func:`estimate_drift` — decomposes a series into the affine part
  (initial offset + mean rate: what Eq. 3 interpolation removes) and the
  residual (what it cannot), with the residual's wander scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SynchronizationError

__all__ = ["allan_deviation", "DriftEstimate", "estimate_drift"]


def allan_deviation(
    times: np.ndarray, offsets: np.ndarray, taus: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Non-overlapping Allan deviation of a clock-offset series.

    Parameters
    ----------
    times / offsets:
        Probe times and measured offsets (seconds), uniformly spaced —
        the standard estimator assumes a constant sampling interval
        ``tau0`` and is evaluated at integer multiples of it.
    taus:
        Averaging times to evaluate, seconds; defaults to octave-spaced
        multiples of the sampling interval up to a quarter of the span.

    Returns
    -------
    (taus_used, adev) arrays.

    Notes
    -----
    With phase (offset) samples ``x_k`` at spacing ``tau``:

        sigma_y^2(tau) = < (x_{k+2} - 2 x_{k+1} + x_k)^2 > / (2 tau^2)
    """
    t = np.asarray(times, dtype=np.float64)
    x = np.asarray(offsets, dtype=np.float64)
    if t.size != x.size or t.size < 4:
        raise SynchronizationError("allan_deviation needs >= 4 aligned samples")
    dt = np.diff(t)
    tau0 = float(np.median(dt))
    if tau0 <= 0 or np.any(np.abs(dt - tau0) > 0.1 * tau0):
        raise SynchronizationError("allan_deviation expects uniform sampling")

    n = t.size
    if taus is None:
        max_m = max(n // 4, 1)
        ms = np.unique((2 ** np.arange(0, np.log2(max_m) + 1)).astype(int))
    else:
        ms = np.unique(np.maximum((np.asarray(taus) / tau0).astype(int), 1))
    taus_used = []
    adev = []
    for m in ms:
        if 2 * m >= n:
            break
        # Decimate to averaging time m*tau0 (phase samples every m).
        xs = x[:: m]
        if xs.size < 3:
            break
        d2 = xs[2:] - 2 * xs[1:-1] + xs[:-2]
        avar = float(np.mean(d2 * d2)) / (2.0 * (m * tau0) ** 2)
        taus_used.append(m * tau0)
        adev.append(np.sqrt(avar))
    return np.asarray(taus_used), np.asarray(adev)


@dataclass(frozen=True)
class DriftEstimate:
    """Decomposition of an offset series into model parameters.

    Attributes
    ----------
    initial_offset:
        Affine intercept at the first probe, seconds.
    rate:
        Mean drift rate over the series (dimensionless) — the component
        linear interpolation removes exactly.
    residual_rms / residual_max:
        RMS and peak of the series minus its affine fit, seconds — the
        component interpolation cannot remove (the paper's Figs. 5/6).
    wander_rate_std:
        Std of the locally estimated rate (first differences / spacing):
        the scale knob of the random-walk / OU wander models.
    """

    initial_offset: float
    rate: float
    residual_rms: float
    residual_max: float
    wander_rate_std: float


def estimate_drift(times: np.ndarray, offsets: np.ndarray) -> DriftEstimate:
    """Fit the affine drift and characterize the residual wander."""
    t = np.asarray(times, dtype=np.float64)
    x = np.asarray(offsets, dtype=np.float64)
    if t.size != x.size or t.size < 3:
        raise SynchronizationError("estimate_drift needs >= 3 aligned samples")
    rate, intercept = np.polyfit(t - t[0], x, 1)
    residual = x - (intercept + rate * (t - t[0]))
    local_rates = np.diff(x) / np.diff(t)
    return DriftEstimate(
        initial_offset=float(intercept),
        rate=float(rate),
        residual_rms=float(np.sqrt(np.mean(residual**2))),
        residual_max=float(np.abs(residual).max()),
        wander_rate_std=float(np.std(local_rates - rate)),
    )
