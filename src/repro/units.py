"""Time-unit constants and helpers.

Internally the whole library measures *time in seconds* as ``float64``
(both "true" simulation time and local clock readings) and *drift rates*
as dimensionless ratios (seconds of clock error per second of true time,
so ``1e-6`` is 1 ppm — one microsecond of divergence per second).

These helpers exist so that model parameters taken from the paper can be
written in their natural unit (``4.29 * units.USEC``) instead of raw
powers of ten, and so that reports can render times in a human unit.
"""

from __future__ import annotations

import math

__all__ = [
    "SEC",
    "MSEC",
    "USEC",
    "NSEC",
    "PPM",
    "PPB",
    "MINUTE",
    "HOUR",
    "format_seconds",
    "format_rate",
]

#: One second (the base unit).
SEC: float = 1.0
#: One millisecond in seconds.
MSEC: float = 1e-3
#: One microsecond in seconds.
USEC: float = 1e-6
#: One nanosecond in seconds.
NSEC: float = 1e-9
#: One minute in seconds.
MINUTE: float = 60.0
#: One hour in seconds.
HOUR: float = 3600.0

#: Parts per million, the natural unit of clock drift rates.
PPM: float = 1e-6
#: Parts per billion, the natural unit of drift *instability*.
PPB: float = 1e-9

_SCALES = (
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
)


def format_seconds(value: float, digits: int = 3) -> str:
    """Render a duration in the largest unit that keeps it >= 1.

    Parameters
    ----------
    value:
        Duration in seconds.  May be negative (sign is preserved).
    digits:
        Significant decimal digits after the point.

    Examples
    --------
    >>> format_seconds(4.29e-6)
    '4.290 us'
    >>> format_seconds(-0.25)
    '-250.000 ms'
    >>> format_seconds(0.0)
    '0.000 s'
    """
    if value == 0.0 or not math.isfinite(value):
        return f"{value:.{digits}f} s"
    mag = abs(value)
    for scale, suffix in _SCALES:
        if mag >= scale:
            return f"{value / scale:.{digits}f} {suffix}"
    scale, suffix = _SCALES[-1]
    return f"{value / scale:.{digits}f} {suffix}"


def format_rate(rate: float, digits: int = 2) -> str:
    """Render a drift rate in ppm (or ppb when below 0.01 ppm).

    Examples
    --------
    >>> format_rate(2.5e-6)
    '2.50 ppm'
    >>> format_rate(3e-9)
    '3.00 ppb'
    """
    if rate != 0.0 and abs(rate) < 0.01 * PPM:
        return f"{rate / PPB:.{digits}f} ppb"
    return f"{rate / PPM:.{digits}f} ppm"
