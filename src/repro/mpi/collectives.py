"""Collective-communication algorithms built from point-to-point transfers.

Each algorithm is a generator subroutine operating on an
:class:`~repro.mpi.comm.MpiContext` through its *raw* (untraced) send
and receive — a real trace records a collective as one enter/exit pair
per rank, not as its internal tree messages, and the paper's analysis
then maps the collective back onto *logical* point-to-point messages
(Section V).  The algorithms are the textbook ones MPI libraries use,
so the simulated collective latencies have realistic structure: a
4-rank inter-node allreduce costs two recursive-doubling rounds of
~4.3 us plus overheads, landing near Table II's 12.86 us.

All internal messages use the reserved tag space above
:data:`repro.mpi.comm.COLL_TAG_BASE` so they can never match
application traffic.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import ConfigurationError

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "reduce_scatter",
    "STAGE_COST",
]

#: CPU time per communication stage inside a collective: tag matching,
#: buffer management, and (for reductions) the combine operation in the
#: MPI stack.  On 2008-era hardware this protocol overhead is why a
#: 4-rank allreduce costs ~3x a bare message (Table II: 12.86 us vs
#: 4.29 us) rather than the 2x its two recursive-doubling rounds of wire
#: time alone would suggest.
STAGE_COST: float = 1.0e-6


def _tag(instance: int) -> int:
    """Internal tag for one collective instance.

    Lives in the negative tag space (<= -2; -1 is the ANY_TAG wildcard)
    so it can never collide with application traffic on any
    communicator, including the namespaced tags of sub-communicators.
    """
    return -(instance + 2)


def _stage(ctx) -> Generator:
    """Charge one stage's protocol-processing cost."""
    yield from ctx.sleep(STAGE_COST)


def barrier(ctx, instance: int) -> Generator:
    """Dissemination barrier: ceil(log2(n)) rounds of shifted exchanges."""
    n = ctx.size
    tag = _tag(instance)
    dist = 1
    while dist < n:
        dst = (ctx.rank + dist) % n
        src = (ctx.rank - dist) % n
        yield from ctx.send_raw(dst, tag=tag, nbytes=0)
        yield from ctx.recv_raw(src=src, tag=tag)
        yield from _stage(ctx)
        dist <<= 1


def bcast(ctx, instance: int, root: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
    """Binomial-tree broadcast from ``root``; returns the payload."""
    n = ctx.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (ctx.rank - root) % n
    # Receive from parent (unless root).
    if rel != 0:
        parent_rel = rel & (rel - 1)  # clear lowest set bit
        parent = (parent_rel + root) % n
        msg = yield from ctx.recv_raw(src=parent, tag=tag)
        yield from _stage(ctx)
        payload = msg.payload
    # Forward to children: set bits above our lowest set bit.
    mask = 1
    while mask < n:
        if rel & mask:
            break
        child_rel = rel | mask
        if child_rel < n:
            child = (child_rel + root) % n
            yield from ctx.send_raw(child, tag=tag, nbytes=nbytes, payload=payload)
        mask <<= 1
    return payload


def reduce(
    ctx, instance: int, root: int = 0, nbytes: int = 0, value: Any = None, op=None
) -> Generator:
    """Binomial-tree reduction to ``root``; returns the result at root.

    ``op`` combines two contribution values (default: collect into a
    list-agnostic sum when numeric, else keep a list).
    """
    n = ctx.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (ctx.rank - root) % n
    acc = value
    mask = 1
    while mask < n:
        if rel & mask:
            parent_rel = rel & ~mask
            parent = (parent_rel + root) % n
            yield from ctx.send_raw(parent, tag=tag, nbytes=nbytes, payload=acc)
            return None
        child_rel = rel | mask
        if child_rel < n:
            child = (child_rel + root) % n
            msg = yield from ctx.recv_raw(src=child, tag=tag)
            yield from _stage(ctx)
            acc = _combine(acc, msg.payload, op)
        mask <<= 1
    return acc


def allreduce(ctx, instance: int, nbytes: int = 0, value: Any = None, op=None) -> Generator:
    """Recursive-doubling allreduce with non-power-of-two folding.

    Extra ranks (beyond the largest power of two ``p <= n``) fold their
    contribution into a partner before the doubling rounds and receive
    the result afterwards — the standard MPICH scheme.
    """
    n = ctx.size
    tag = _tag(instance)
    p = 1
    while p * 2 <= n:
        p *= 2
    extras = n - p
    acc = value

    if ctx.rank >= p:
        # Extra rank: hand contribution to partner, await the result.
        partner = ctx.rank - p
        yield from ctx.send_raw(partner, tag=tag, nbytes=nbytes, payload=acc)
        msg = yield from ctx.recv_raw(src=partner, tag=tag)
        return msg.payload

    if ctx.rank < extras:
        msg = yield from ctx.recv_raw(src=ctx.rank + p, tag=tag)
        yield from _stage(ctx)
        acc = _combine(acc, msg.payload, op)

    mask = 1
    while mask < p:
        partner = ctx.rank ^ mask
        yield from ctx.send_raw(partner, tag=tag, nbytes=nbytes, payload=acc)
        msg = yield from ctx.recv_raw(src=partner, tag=tag)
        yield from _stage(ctx)
        acc = _combine(acc, msg.payload, op)
        mask <<= 1

    if ctx.rank < extras:
        yield from ctx.send_raw(ctx.rank + p, tag=tag, nbytes=nbytes, payload=acc)
    return acc


def gather(ctx, instance: int, root: int = 0, nbytes: int = 0, value: Any = None) -> Generator:
    """Binomial-tree gather; root returns ``{rank: value}``."""
    n = ctx.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (ctx.rank - root) % n
    collected = {ctx.rank: value}
    mask = 1
    while mask < n:
        if rel & mask:
            parent = ((rel & ~mask) + root) % n
            yield from ctx.send_raw(
                parent, tag=tag, nbytes=nbytes * len(collected), payload=collected
            )
            return None
        child_rel = rel | mask
        if child_rel < n:
            child = (child_rel + root) % n
            msg = yield from ctx.recv_raw(src=child, tag=tag)
            yield from _stage(ctx)
            collected.update(msg.payload)
        mask <<= 1
    return collected


def scatter(
    ctx, instance: int, root: int = 0, nbytes: int = 0, values: Optional[dict] = None
) -> Generator:
    """Binomial-tree scatter; each rank returns its slice of ``values``.

    ``values`` (root only) maps rank -> payload.
    """
    n = ctx.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (ctx.rank - root) % n
    if rel == 0:
        bundle = dict(values or {})
    else:
        parent = ((rel & (rel - 1)) + root) % n
        msg = yield from ctx.recv_raw(src=parent, tag=tag)
        yield from _stage(ctx)
        bundle = msg.payload
    mask = 1
    while mask < n:
        if rel & mask:
            break
        child_rel = rel | mask
        if child_rel < n:
            # Pass along the sub-bundle destined for the child's subtree.
            subtree = {
                (r + root) % n: bundle.get((r + root) % n)
                for r in range(child_rel, min(child_rel + mask, n))
            }
            child = (child_rel + root) % n
            yield from ctx.send_raw(
                child, tag=tag, nbytes=nbytes * max(len(subtree), 1), payload=subtree
            )
        mask <<= 1
    return bundle.get(ctx.rank)


def allgather(ctx, instance: int, nbytes: int = 0, value: Any = None) -> Generator:
    """Ring allgather: n-1 rounds; returns ``{rank: value}`` everywhere."""
    n = ctx.size
    tag = _tag(instance)
    right = (ctx.rank + 1) % n
    left = (ctx.rank - 1) % n
    collected = {ctx.rank: value}
    carry_rank, carry_value = ctx.rank, value
    for _ in range(n - 1):
        yield from ctx.send_raw(right, tag=tag, nbytes=nbytes, payload=(carry_rank, carry_value))
        msg = yield from ctx.recv_raw(src=left, tag=tag)
        yield from _stage(ctx)
        carry_rank, carry_value = msg.payload
        collected[carry_rank] = carry_value
    return collected


def alltoall(ctx, instance: int, nbytes: int = 0, values: Optional[dict] = None) -> Generator:
    """Shifted pairwise exchange; returns ``{src: payload}``.

    ``values`` maps destination rank -> payload for this rank's slices.
    """
    n = ctx.size
    tag = _tag(instance)
    values = values or {}
    received = {ctx.rank: values.get(ctx.rank)}
    for shift in range(1, n):
        dst = (ctx.rank + shift) % n
        src = (ctx.rank - shift) % n
        yield from ctx.send_raw(dst, tag=tag, nbytes=nbytes, payload=values.get(dst))
        msg = yield from ctx.recv_raw(src=src, tag=tag)
        yield from _stage(ctx)
        received[src] = msg.payload
    return received


def scan(ctx, instance: int, nbytes: int = 0, value: Any = None, op=None) -> Generator:
    """Inclusive prefix reduction (MPI_Scan): linear pipeline.

    Rank i receives the prefix of ranks 0..i-1 from its left neighbour,
    folds in its own contribution, forwards to the right, and returns
    the inclusive prefix.  Linear chains are what small-message scans
    use in practice and give the correct PREFIX dependency structure.
    """
    n = ctx.size
    tag = _tag(instance)
    acc = value
    if ctx.rank > 0:
        msg = yield from ctx.recv_raw(src=ctx.rank - 1, tag=tag)
        yield from _stage(ctx)
        acc = _combine(msg.payload, acc, op)
    if ctx.rank + 1 < n:
        yield from ctx.send_raw(ctx.rank + 1, tag=tag, nbytes=nbytes, payload=acc)
    return acc


def reduce_scatter(
    ctx, instance: int, nbytes: int = 0, values: Optional[dict] = None, op=None
) -> Generator:
    """Reduce-scatter: chunk i of the elementwise reduction lands on rank i.

    Implemented as a binomial gather of per-chunk contribution maps to
    rank 0 (which folds them) followed by a binomial scatter of the
    reduced chunks — both phases inside the same collective instance,
    like MPICH's fallback algorithm for irregular sizes.

    ``values`` maps destination rank -> this rank's contribution to that
    chunk; the return value is the reduction of the caller's own chunk.
    """
    n = ctx.size
    values = values or {}
    # Phase 1: gather everyone's contribution maps at rank 0.
    collected = yield from gather(ctx, instance, root=0, nbytes=nbytes, value=values)
    scattered: Optional[dict] = None
    if ctx.rank == 0:
        scattered = {}
        for dst in range(n):
            acc = None
            for contributor in sorted(collected):
                chunk = collected[contributor].get(dst)
                if chunk is not None:
                    acc = _combine(acc, chunk, op)
            scattered[dst] = acc
    # Phase 2: scatter the reduced chunks.
    result = yield from scatter(ctx, instance, root=0, nbytes=nbytes, values=scattered)
    return result


def _combine(a: Any, b: Any, op) -> Any:
    if op is not None:
        if a is None:
            return b
        return op(a, b)
    if a is None:
        return b
    if b is None:
        return a
    try:
        return a + b
    except TypeError:
        return (a, b)


def _check_root(root: int, n: int) -> None:
    if not 0 <= root < n:
        raise ConfigurationError(f"root {root} outside communicator of size {n}")
