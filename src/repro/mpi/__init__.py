"""Simulated message-passing runtime (the MPI stand-in).

Provides rank contexts with point-to-point and collective operations on
top of the discrete-event engine, an ``MPI_Wtime``-style clock query,
and the :class:`~repro.mpi.runtime.MpiWorld` orchestrator that runs a
job like a tracing tool would: offset measurement at init, the
application, offset measurement at finalize (the Scalasca scheme the
paper's Fig. 7 experiments use).
"""

from repro.mpi.comm import COLL_TAG_BASE, MpiContext
from repro.mpi.subcomm import SubComm
from repro.mpi.runtime import MpiWorld, RunResult

__all__ = ["MpiContext", "SubComm", "MpiWorld", "RunResult", "COLL_TAG_BASE"]
