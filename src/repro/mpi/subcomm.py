"""Sub-communicators (the ``MPI_Comm_split`` analogue).

Real codes rarely talk only over ``MPI_COMM_WORLD`` — POP splits row and
column communicators for its solver, multigrid codes split per level.
:meth:`repro.mpi.comm.MpiContext.split` performs the collective split
(an allgather of ``(color, key)`` over the parent, so membership is
derived identically everywhere without out-of-band knowledge) and
returns a :class:`SubComm` exposing the full context API with
comm-local ranks.

Design choices, mirroring how tracing tools handle communicators:

* events record **world ranks** (the "global rank translation" real
  analyzers perform), so every postmortem algorithm keeps working
  unchanged on traces that used sub-communicators;
* collective instance ids fold in the communicator id
  (``comm_id * COMM_INSTANCE_STRIDE + count``), so instance grouping,
  flavor mapping and CLC dependencies stay correct across comms — the
  world communicator is id 0 and must issue fewer than
  ``COMM_INSTANCE_STRIDE`` collectives;
* collective-internal tags live in the negative tag space (see
  ``repro.mpi.collectives._tag``) and application tags are namespaced
  per communicator, so identical tags on different comms never
  cross-match;
* wildcard-source receives on a sub-communicator are rejected — they
  would otherwise match traffic from non-members.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import ConfigurationError
from repro.sim.primitives import ANY_SOURCE, ANY_TAG

__all__ = [
    "SubComm",
    "COMM_TAG_STRIDE",
    "COMM_INSTANCE_STRIDE",
    "MAX_COLORS_PER_SPLIT",
    "MAX_SPLITS_PER_COMM",
]

#: Application-tag namespace width per communicator.
COMM_TAG_STRIDE: int = 1 << 14
#: Collective-instance namespace width per communicator (max collectives
#: any single communicator may issue).
COMM_INSTANCE_STRIDE: int = 1 << 24
#: Distinct colors allowed in one split call.
MAX_COLORS_PER_SPLIT: int = 64
#: Split calls allowed on one communicator.
MAX_SPLITS_PER_COMM: int = 64


class SubComm:
    """A communicator over a subset of the world's ranks.

    Obtained via :meth:`MpiContext.split`; presents the same generator
    API as :class:`~repro.mpi.comm.MpiContext` with ranks local to the
    group.  Do not construct directly.
    """

    def __init__(self, world, members: list[int], comm_id: int) -> None:
        if world.rank not in members:
            raise ConfigurationError("calling rank is not a member of this group")
        self.parent = world
        self.members = list(members)
        self.comm_id = comm_id
        self.rank = self.members.index(world.rank)
        self.size = len(self.members)
        self._coll_instance = 0
        self._next_split_seq = 0
        # Fields the shared collective wrapper and split logic consult.
        self.tracer = world.tracer
        self.mpi_regions = world.mpi_regions
        self.periodic_sync_every = 0  # periodic sync stays on the world comm
        self.periodic_sync_repeats = world.periodic_sync_repeats
        self.periodic_series: list = []

    # ------------------------------------------------------------------
    # Hooks the shared MpiContext machinery dispatches through
    # ------------------------------------------------------------------
    def _alloc_instance(self) -> int:
        instance = self.comm_id * COMM_INSTANCE_STRIDE + self._coll_instance
        self._coll_instance += 1
        return instance

    def _root_to_world(self, root: int) -> int:
        return self.world_rank(root)

    def _world_rank_of(self, local: int) -> int:
        return self.members[local]

    def _world_context(self):
        return self.parent

    # ------------------------------------------------------------------
    # Rank/tag translation
    # ------------------------------------------------------------------
    def world_rank(self, local: int) -> int:
        if not 0 <= local < self.size:
            raise ConfigurationError(
                f"rank {local} outside communicator of size {self.size}"
            )
        return self.members[local]

    def _xlate_tag(self, tag: int) -> int:
        if tag == ANY_TAG:
            return ANY_TAG
        if tag < -1:
            # Reserved protocol space (collective internals, sync
            # probes): already globally unique via namespaced instance
            # ids — pass through untranslated.
            return tag
        if not 0 <= tag < COMM_TAG_STRIDE:
            raise ConfigurationError(
                f"sub-communicator tags must be in [0, {COMM_TAG_STRIDE}); got {tag}"
            )
        return self.comm_id * COMM_TAG_STRIDE + tag

    def _xlate_src(self, src: int) -> int:
        if src == ANY_SOURCE:
            raise ConfigurationError(
                "wildcard-source receives are not supported on sub-communicators"
            )
        return self.world_rank(src)

    # ------------------------------------------------------------------
    # Point-to-point (delegating to the world context with translation)
    # ------------------------------------------------------------------
    def send_raw(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        return (
            yield from self.parent.send_raw(
                self.world_rank(dst), self._xlate_tag(tag), nbytes, payload
            )
        )

    def recv_raw(self, src: int, tag: int = ANY_TAG) -> Generator:
        return (
            yield from self.parent.recv_raw(self._xlate_src(src), self._xlate_tag(tag))
        )

    def send(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        return (
            yield from self.parent.send(
                self.world_rank(dst), self._xlate_tag(tag), nbytes, payload
            )
        )

    def recv(self, src: int, tag: int = ANY_TAG) -> Generator:
        return (yield from self.parent.recv(self._xlate_src(src), self._xlate_tag(tag)))

    # Compute / timing / regions pass straight through.
    def compute(self, duration: float) -> Generator:
        return (yield from self.parent.compute(duration))

    def sleep(self, duration: float) -> Generator:
        return (yield from self.parent.sleep(duration))

    def wtime(self) -> Generator:
        return (yield from self.parent.wtime())

    def enter_region(self, region_id: int) -> Generator:
        return (yield from self.parent.enter_region(region_id))

    def exit_region(self, region_id: int) -> Generator:
        return (yield from self.parent.exit_region(region_id))

    def set_tracing(self, enabled: bool) -> None:
        self.parent.set_tracing(enabled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubComm(id={self.comm_id}, rank={self.rank}/{self.size}, "
            f"members={self.members})"
        )


def _borrow_context_methods() -> None:
    """Bind MpiContext's collective/split machinery onto SubComm.

    Those methods only touch attributes and hooks SubComm provides
    (rank, size, tracer, ``_alloc_instance``, ``_root_to_world``, the
    raw operations), so the identical function objects work unchanged
    with comm-local ranks.
    """
    from repro.mpi.comm import MpiContext

    for name in (
        "barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
        "allgather", "alltoall", "scan", "reduce_scatter",
        "_collective", "split", "_child_comm_id",
    ):
        setattr(SubComm, name, getattr(MpiContext, name))


_borrow_context_methods()
