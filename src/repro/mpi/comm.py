"""The per-rank MPI context.

An :class:`MpiContext` is what a simulated application sees: its rank,
the communicator size, and generator methods for communication, compute,
and timing.  Methods are used with ``yield from`` inside a process
generator::

    def worker(ctx):
        yield from ctx.compute(1e-3)
        if ctx.rank == 0:
            yield from ctx.send(1, tag=7, nbytes=64)
        else:
            msg = yield from ctx.recv(src=0, tag=7)
        total = yield from ctx.allreduce(value=1)

Tracing is layered exactly like PMPI interposition: the *public* methods
(``send``, ``recv``, the collectives, ``enter_region``/``exit_region``)
consult the attached :class:`~repro.tracing.instrument.Tracer` and
record events around the *raw* operations (``send_raw``, ``recv_raw``),
which never record anything.  Collectives run their internal tree
messages through the raw layer, so a trace contains one
``COLL_ENTER``/``COLL_EXIT`` pair per rank per collective — the level at
which real tools record them — and never the tree's messages.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.cluster.topology import Location
from repro.mpi import collectives as _coll
from repro.sim.primitives import ANY_SOURCE, ANY_TAG, Compute, Message, ReadClock, Recv, Send
from repro.sync.offset import measurement_protocol
from repro.tracing.events import CollectiveOp, EventType

__all__ = [
    "MpiContext",
    "RecvRequest",
    "COLL_TAG_BASE",
    "MPI_SEND_REGION",
    "MPI_RECV_REGION",
    "periodic_sync_due",
]


def periodic_sync_due(every: int, instance: int) -> bool:
    """Does the piggybacked offset measurement fire on this collective?

    The protocol runs after every ``every``-th collective instance
    (``instance % every == 0``; disabled when ``every <= 0``).  Single
    source of truth for the schedule: the live path
    (:meth:`MpiContext._collective_impl`) and the batch plan compiler
    (:mod:`repro.sim.batch`) both consult it, so the statically compiled
    timelines fire the protocol at exactly the instances the engine
    would.
    """
    return every > 0 and instance % every == 0

#: Application tags must stay below this; collectives use the space above.
COLL_TAG_BASE: int = 1 << 20

#: Reserved region ids recorded around MPI calls when a context is
#: created with ``mpi_regions=True`` (the full ENTER/SEND/EXIT pattern
#: real PMPI wrappers produce, needed e.g. by wait-state analysis).
MPI_SEND_REGION: int = 1
MPI_RECV_REGION: int = 2


class RecvRequest:
    """Handle for a posted nonblocking receive (see MpiContext.irecv)."""

    __slots__ = ("src", "tag")

    def __init__(self, src: int, tag: int) -> None:
        self.src = src
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecvRequest(src={self.src}, tag={self.tag})"


class MpiContext:
    """Rank-local façade over the simulation engine.

    Parameters
    ----------
    rank, size:
        This process's rank and the communicator size.
    location:
        Hardware placement (determines latency and clock).
    jitter_model / jitter_rng:
        OS-noise inflation applied to :meth:`compute`.
    tracer:
        Event recorder, or ``None`` for an untraced run.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        location: Location,
        jitter_model=None,
        jitter_rng: Optional[np.random.Generator] = None,
        tracer=None,
        mpi_regions: bool = False,
    ) -> None:
        self.rank = rank
        self.size = size
        self.location = location
        self.jitter_model = jitter_model
        self.jitter_rng = jitter_rng
        self.tracer = tracer
        #: Record ENTER/EXIT events around traced MPI calls (the full
        #: PMPI-wrapper pattern; doubles event volume, required by
        #: wait-state analysis which needs to know when a receive was
        #: *posted*, not just when it completed).
        self.mpi_regions = mpi_regions
        self._coll_instance = 0
        #: Piggyback an offset measurement on every k-th collective
        #: (Doleschal-style internal timer synchronization, the paper's
        #: "periodic offset measurements during global synchronization
        #: operations"); 0 disables.  Set by MpiWorld.
        self.periodic_sync_every = 0
        self.periodic_sync_repeats = 3
        #: Master-side series of periodic measurement dicts.
        self.periodic_series: list[dict] = []
        #: Communicator identity (0 = world) and split bookkeeping.
        self.comm_id = 0
        self._next_split_seq = 0

    # ------------------------------------------------------------------
    # Raw (untraced) primitives
    # ------------------------------------------------------------------
    def send_raw(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        """Eager send without event recording; returns the match id."""
        mid = yield Send(dst, tag, nbytes, payload)
        return mid

    def recv_raw(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive without event recording; returns the Message."""
        msg = yield Recv(src, tag)
        return msg

    def compute(self, duration: float) -> Generator:
        """Busy the CPU for ``duration`` seconds, inflated by OS jitter."""
        if self.jitter_model is not None and self.jitter_rng is not None:
            duration = self.jitter_model.perturb(duration, self.jitter_rng)
        if duration > 0:
            yield Compute(duration)

    def sleep(self, duration: float) -> Generator:
        """Idle for exactly ``duration`` seconds (no jitter)."""
        if duration > 0:
            yield Compute(duration)

    def wtime(self) -> Generator:
        """Read the local clock (``MPI_Wtime`` analogue); returns seconds."""
        value = yield ReadClock()
        return value

    # ------------------------------------------------------------------
    # Traced point-to-point
    # ------------------------------------------------------------------
    def send(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        """Send, recording a ``SEND`` event (timestamp taken before the
        transfer is initiated, like a wrapper around ``MPI_Send``)."""
        if self.tracer is not None and self.tracer.active:
            if self.mpi_regions:
                yield from self._simple_event(EventType.ENTER, MPI_SEND_REGION)
            ts = yield ReadClock()
            mid = yield Send(dst, tag, nbytes, payload)
            cost = self.tracer.record(ts, EventType.SEND, dst, tag, nbytes, mid)
            if cost > 0:
                yield Compute(cost)
            if self.mpi_regions:
                yield from self._simple_event(EventType.EXIT, MPI_SEND_REGION)
            return mid
        return (yield from self.send_raw(dst, tag, nbytes, payload))

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Receive, recording a ``RECV`` event at completion (wildcards
        are resolved from the delivered message, like ``MPI_Status``).

        With ``mpi_regions``, an ``ENTER(MPI_RECV_REGION)`` is recorded
        when the receive is *posted* — the timestamp wait-state analysis
        measures Late Sender against."""
        if self.tracer is not None and self.tracer.active:
            if self.mpi_regions:
                yield from self._simple_event(EventType.ENTER, MPI_RECV_REGION)
            msg = yield Recv(src, tag)
            ts = yield ReadClock()
            cost = self.tracer.record(
                ts, EventType.RECV, msg.src, msg.tag, msg.nbytes, msg.match_id
            )
            if cost > 0:
                yield Compute(cost)
            if self.mpi_regions:
                yield from self._simple_event(EventType.EXIT, MPI_RECV_REGION)
            return msg
        return (yield from self.recv_raw(src, tag))

    def sendrecv(
        self,
        dst: int,
        src: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: int = 0,
        payload: Any = None,
    ) -> Generator:
        """Combined send+receive (safe under eager sends); returns Message."""
        yield from self.send(dst, sendtag, nbytes, payload)
        msg = yield from self.recv(src, recvtag)
        return msg

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def enter_region(self, region_id: int) -> Generator:
        """Record an ``ENTER`` event for a code region."""
        yield from self._simple_event(EventType.ENTER, region_id)

    def exit_region(self, region_id: int) -> Generator:
        """Record an ``EXIT`` event for a code region."""
        yield from self._simple_event(EventType.EXIT, region_id)

    def _simple_event(self, etype: EventType, a: int = 0, b: int = 0, c: int = 0, d: int = 0):
        if self.tracer is not None and self.tracer.active:
            ts = yield ReadClock()
            cost = self.tracer.record(ts, etype, a, b, c, d)
            if cost > 0:
                yield Compute(cost)

    def set_tracing(self, enabled: bool) -> None:
        """Toggle event recording (partial tracing, Fig. 7 style)."""
        if self.tracer is not None:
            self.tracer.active = enabled

    # ------------------------------------------------------------------
    # Traced collectives
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        return (
            yield from self._collective(CollectiveOp.BARRIER, 0, 0, _coll.barrier)
        )

    def bcast(self, root: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.BCAST, root, nbytes, _coll.bcast, root=root, nbytes=nbytes,
                payload=payload,
            )
        )

    def reduce(self, root: int = 0, nbytes: int = 0, value: Any = None, op=None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.REDUCE, root, nbytes, _coll.reduce, root=root, nbytes=nbytes,
                value=value, op=op,
            )
        )

    def allreduce(self, nbytes: int = 0, value: Any = None, op=None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.ALLREDUCE, 0, nbytes, _coll.allreduce, nbytes=nbytes,
                value=value, op=op,
            )
        )

    def gather(self, root: int = 0, nbytes: int = 0, value: Any = None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.GATHER, root, nbytes, _coll.gather, root=root, nbytes=nbytes,
                value=value,
            )
        )

    def scatter(self, root: int = 0, nbytes: int = 0, values: Optional[dict] = None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.SCATTER, root, nbytes, _coll.scatter, root=root, nbytes=nbytes,
                values=values,
            )
        )

    def allgather(self, nbytes: int = 0, value: Any = None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.ALLGATHER, 0, nbytes, _coll.allgather, nbytes=nbytes, value=value
            )
        )

    def alltoall(self, nbytes: int = 0, values: Optional[dict] = None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.ALLTOALL, 0, nbytes, _coll.alltoall, nbytes=nbytes, values=values
            )
        )

    def scan(self, nbytes: int = 0, value: Any = None, op=None) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.SCAN, 0, nbytes, _coll.scan, nbytes=nbytes, value=value, op=op
            )
        )

    def reduce_scatter(
        self, nbytes: int = 0, values: Optional[dict] = None, op=None
    ) -> Generator:
        return (
            yield from self._collective(
                CollectiveOp.REDUCE_SCATTER, 0, nbytes, _coll.reduce_scatter,
                nbytes=nbytes, values=values, op=op,
            )
        )

    # ------------------------------------------------------------------
    # Nonblocking point-to-point
    # ------------------------------------------------------------------
    def isend(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> Generator:
        """Nonblocking send.  The runtime's sends are eager (buffered),
        so ``isend`` is complete on return — like a small-message
        MPI_Isend whose buffer is immediately reusable."""
        return (yield from self.send(dst, tag, nbytes, payload))

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> "RecvRequest":
        """Post a nonblocking receive intent; complete it with
        :meth:`wait`/:meth:`waitall`.

        Matching happens at wait time (the intent is not registered with
        the engine), so multiple outstanding requests on the same
        (src, tag) channel must be waited in posting order — which MPI's
        non-overtaking rule requires of matching receives anyway.
        """
        return RecvRequest(src=src, tag=tag)

    def wait(self, request: "RecvRequest") -> Generator:
        """Complete a posted receive; returns the Message."""
        return (yield from self.recv(request.src, request.tag))

    def waitall(self, requests: "list[RecvRequest]") -> Generator:
        """Complete several receives; returns their Messages in order."""
        out = []
        for request in requests:
            msg = yield from self.recv(request.src, request.tag)
            out.append(msg)
        return out

    def _collective(self, coll_op: CollectiveOp, coll_root: int, coll_nbytes: int, algo, **kwargs):
        """Allocate this call's instance id and run the traced wrapper.

        The instance id increments identically on every rank because MPI
        requires all ranks to issue collectives on a communicator in the
        same order.  Sub-communicators override the allocation to fold
        in their communicator id (see :mod:`repro.mpi.subcomm`).
        """
        instance = self._alloc_instance()
        world_root = self._root_to_world(coll_root) if 0 <= coll_root < self.size else coll_root
        return MpiContext._collective_impl(
            self, coll_op, world_root, coll_nbytes, algo, instance, **kwargs
        )

    def _collective_impl(
        self, coll_op: CollectiveOp, coll_root: int, coll_nbytes: int, algo, instance, **kwargs
    ) -> Generator:
        """Record COLL_ENTER / run algorithm / record COLL_EXIT.

        ``self`` may be an :class:`MpiContext` or a
        :class:`~repro.mpi.subcomm.SubComm`; only rank/size/tracer and
        the raw operations are touched.  ``coll_root`` is recorded in
        *world* ranks so postmortem flavor mapping works uniformly.
        """
        traced = self.tracer is not None and self.tracer.active
        if traced:
            ts = yield ReadClock()
            cost = self.tracer.record(
                ts, EventType.COLL_ENTER, int(coll_op), coll_root, self.size, instance
            )
            if cost > 0:
                yield Compute(cost)
        result = yield from algo(self, instance, **kwargs)
        if periodic_sync_due(self.periodic_sync_every, instance):
            # All ranks have completed the algorithm and sit at the same
            # program point — the window [17] exploits to measure
            # offsets without extra global synchronization.  The
            # exchange is tool traffic (raw ops, never traced).
            measurements = yield from measurement_protocol(
                self, repeats=self.periodic_sync_repeats
            )
            if measurements is not None:
                self.periodic_series.append(measurements)
        if traced:
            ts = yield ReadClock()
            cost = self.tracer.record(
                ts, EventType.COLL_EXIT, int(coll_op), coll_root, self.size, instance
            )
            if cost > 0:
                yield Compute(cost)
        return result

    def _alloc_instance(self) -> int:
        """Next collective-instance id on this communicator (world: plain
        counter; sub-communicators namespace it — see repro.mpi.subcomm)."""
        instance = self._coll_instance
        self._coll_instance += 1
        return instance

    def _root_to_world(self, root: int) -> int:
        """Translate a communicator-local root to a world rank."""
        return root

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int, key: Optional[int] = None) -> Generator:
        """Collective communicator split (``MPI_Comm_split`` analogue).

        Every rank of this communicator must call ``split``; ranks with
        equal ``color`` land in the same group, ordered by ``key``
        (default: current rank).  Returns the rank's
        :class:`~repro.mpi.subcomm.SubComm`.

        The membership exchange is an (untraced) allgather, so no rank
        needs out-of-band knowledge of the others' colors.  Limits:
        at most 64 distinct colors per split and application tags below
        ``COMM_TAG_STRIDE`` on the resulting communicator.
        """
        from repro.mpi.subcomm import MAX_COLORS_PER_SPLIT, SubComm

        seq = self._next_split_seq
        self._next_split_seq += 1
        instance = self._alloc_instance()
        me = (int(color), int(key) if key is not None else self.rank, self.rank)
        gathered = yield from _coll.allgather(self, instance, value=me)
        by_color: dict[int, list[tuple[int, int]]] = {}
        for local_rank, (c, k, _) in gathered.items():
            by_color.setdefault(c, []).append((k, local_rank))
        colors = sorted(by_color)
        if len(colors) > MAX_COLORS_PER_SPLIT:
            raise ConfigurationError(
                f"split produced {len(colors)} colors (max {MAX_COLORS_PER_SPLIT})"
            )
        color_index = colors.index(int(color))
        members_local = [r for _, r in sorted(by_color[int(color)])]
        members_world = [self._world_rank_of(r) for r in members_local]
        comm_id = self._child_comm_id(seq, color_index)
        return SubComm(self._world_context(), members_world, comm_id)

    def _world_rank_of(self, local: int) -> int:
        return local  # the world context's local ranks ARE world ranks

    def _world_context(self) -> "MpiContext":
        return self

    def _child_comm_id(self, seq: int, color_index: int) -> int:
        from repro.mpi.subcomm import MAX_COLORS_PER_SPLIT, MAX_SPLITS_PER_COMM

        if seq >= MAX_SPLITS_PER_COMM:
            raise ConfigurationError(f"too many splits on one communicator ({seq})")
        return (
            self.comm_id * (MAX_SPLITS_PER_COMM * MAX_COLORS_PER_SPLIT)
            + seq * MAX_COLORS_PER_SPLIT
            + color_index
            + 1
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MpiContext(rank={self.rank}, size={self.size}, loc={self.location})"
