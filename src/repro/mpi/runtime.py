"""Job orchestration: clocks + network + tracing around an application.

:class:`MpiWorld` assembles everything a run needs (engine, transport,
clock ensemble, per-rank tracers) from a cluster preset, a pinning, and
a timer technology, and executes an application generator on every rank
the way Scalasca executes a traced job:

1. offset measurement against rank 0 during ``MPI_Init``;
2. the application;
3. offset measurement during ``MPI_Finalize``.

The returned :class:`RunResult` bundles the trace, both measurement
sets (the inputs to linear offset interpolation, Eq. 3), per-rank
return values, and engine statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.clocks.factory import ClockEnsemble, TimerSpec, timer_spec
from repro.cluster.jitter import OsJitterModel
from repro.cluster.machines import ClusterPreset
from repro.cluster.pinning import Pinning
from repro.errors import ConfigurationError
from repro.mpi.comm import MpiContext
from repro.options import _UNSET, RunOptions, resolve_options
from repro.rng import RngFabric
from repro.sim.engine import Engine, Transport
from repro.sync.offset import OffsetMeasurement, measurement_protocol
from repro.tracing.buffer import TraceBuffer
from repro.tracing.instrument import Tracer
from repro.tracing.trace import Trace

__all__ = ["MpiWorld", "RunResult"]

Worker = Callable[[MpiContext], Any]


@dataclass
class RunResult:
    """Everything a finished run produced."""

    trace: Optional[Trace]
    init_offsets: Optional[dict[int, OffsetMeasurement]]
    final_offsets: Optional[dict[int, OffsetMeasurement]]
    results: dict[int, Any] = field(default_factory=dict)
    duration: float = 0.0
    events_processed: int = 0
    #: Measurement sets taken during collectives (Doleschal-style
    #: periodic synchronization); empty unless the world was configured
    #: with ``periodic_sync_every > 0``.
    periodic_offsets: list[dict[int, OffsetMeasurement]] = field(default_factory=list)
    #: Which execution path produced this result: ``"reference"`` (the
    #: discrete-event engine) or ``"batch"`` (the vectorized fast path of
    #: :mod:`repro.sim.batch`).  Both paths are bit-identical; this field
    #: exists so tests and oracles can assert the fast path engaged.
    engine: str = "reference"
    #: Post-run RNG stream positions (``{"network": state, "clocks":
    #: {rank: (jitter_rng_state | None, last_reading)}}``) — the
    #: ``batch_matches_engine`` oracle compares these to prove the fast
    #: path consumed every stream exactly as far as the engine did.
    rng_states: dict = field(default_factory=dict)
    #: When ``engine="batch"`` was requested but the vectorized fast path
    #: declined the workload, the machine-readable reason code from
    #: :class:`repro.sim.batch.BatchFallback` (e.g. ``"wildcard_recv"``,
    #: ``"congestion"``).  ``None`` when the fast path engaged or the
    #: reference engine was requested directly.  Recorded even with
    #: telemetry off, and round-trips through the runner and cache.
    fallback_reason: Optional[str] = None

    def all_measurement_sets(self) -> list[dict[int, OffsetMeasurement]]:
        """init + periodic + final, in run order (piecewise-ready)."""
        sets: list[dict[int, OffsetMeasurement]] = []
        if self.init_offsets:
            sets.append(self.init_offsets)
        sets.extend(self.periodic_offsets)
        if self.final_offsets:
            sets.append(self.final_offsets)
        return sets


class MpiWorld:
    """A configured cluster job, ready to :meth:`run` applications.

    Parameters
    ----------
    preset:
        Platform (machine + latency model + timer presets).
    pinning:
        Rank placement (defines both latencies and clock sharing).
    timer:
        Timer technology name (resolved against the preset's machine
        kind) or an explicit :class:`TimerSpec`.
    seed:
        Root seed; every random stream of the run derives from it.
    duration_hint:
        True-time horizon drift paths must cover, seconds.  Runs longer
        than the hint still work (models extrapolate), but the hint
        should normally be an upper bound.
    jitter:
        OS-noise model applied to application compute phases.
    send_overhead / recv_overhead:
        Per-message CPU costs charged by the transport.
    trace_buffer_capacity / record_cost / flush_cost:
        Trace-buffer behaviour (see :class:`TraceBuffer`).
    """

    def __init__(
        self,
        preset: ClusterPreset,
        pinning: Pinning,
        timer: str | TimerSpec | None = None,
        seed: int = 0,
        duration_hint: float = 3700.0,
        jitter: Optional[OsJitterModel] = None,
        send_overhead: float = 1.0e-7,
        recv_overhead: float = 1.0e-7,
        trace_buffer_capacity: int = 0,
        record_cost: float = 3.0e-8,
        flush_cost: float = 5.0e-3,
        mpi_regions: bool = False,
        periodic_sync_every: int = 0,
        periodic_sync_repeats: int = 3,
        congestion_alpha: float = 0.0,
        congestion_capacity: int = 16,
    ) -> None:
        if pinning.machine is not preset.machine and pinning.machine != preset.machine:
            raise ConfigurationError("pinning was built for a different machine")
        self.preset = preset
        self.pinning = pinning
        if timer is None:
            timer = preset.default_timer
        self.spec = timer if isinstance(timer, TimerSpec) else timer_spec(timer, preset.kind)
        self.fabric = RngFabric(seed)
        self.duration_hint = float(duration_hint)
        self.jitter = jitter if jitter is not None else OsJitterModel.quiet()
        self.send_overhead = send_overhead
        self.recv_overhead = recv_overhead
        self.trace_buffer_capacity = trace_buffer_capacity
        self.record_cost = record_cost
        self.flush_cost = flush_cost
        self.mpi_regions = mpi_regions
        self.periodic_sync_every = periodic_sync_every
        self.periodic_sync_repeats = periodic_sync_repeats
        #: Optional load-dependent latency inflation (Section III.c's
        #: "network load"); see :class:`repro.sim.engine.Transport`.
        self.congestion_alpha = congestion_alpha
        self.congestion_capacity = congestion_capacity
        self.ensemble = ClockEnsemble(preset.machine, self.spec, self.fabric, self.duration_hint)

    # ------------------------------------------------------------------
    def run(
        self,
        worker: Worker,
        tracing: bool = True,
        measure_offsets: bool = True,
        sync_repeats: int = 10,
        tracing_initially: bool = True,
        until: Optional[float] = None,
        engine: str = _UNSET,
        *,
        options: Optional[RunOptions] = None,
        telemetry=None,
        trace_sink=None,
    ) -> RunResult:
        """Execute ``worker`` on every rank.

        Parameters
        ----------
        worker:
            ``worker(ctx)`` generator run by each rank.
        tracing:
            Attach tracers and build a :class:`Trace`.
        measure_offsets:
            Run the Cristian protocol at init and finalize (the
            Scalasca scheme).  Without it, interpolation has no inputs.
        sync_repeats:
            Exchanges per worker per measurement (min-RTT wins).
        tracing_initially:
            Initial recording state; workloads may toggle via
            ``ctx.set_tracing`` (partial tracing).
        until:
            Optional true-time cap for the event loop.
        engine:
            Deprecated — pass ``options=RunOptions(engine=...)``.
            ``"reference"`` runs the discrete-event engine; ``"batch"``
            tries the vectorized fast path of :mod:`repro.sim.batch`
            and falls back to the reference engine whenever
            bit-identity cannot be guaranteed.  Both produce identical
            results; check ``RunResult.engine`` for the path actually
            taken and ``RunResult.fallback_reason`` for why a fallback
            happened.
        options:
            A :class:`repro.options.RunOptions`; only ``engine`` and
            ``telemetry`` are consulted here (seeding is fixed at world
            construction).
        telemetry:
            A :class:`repro.telemetry.TelemetryRecorder`; overrides
            ``options.telemetry`` when both are given.
        trace_sink:
            A :class:`repro.tracing.store.ShardedTraceWriter` to spill
            trace events into as they are recorded (out-of-core
            generation: no rank ever holds more than one shard).  The
            sink is finalized by this call and ``RunResult.trace``
            becomes a :class:`repro.tracing.store.ChunkedTrace` over
            its directory.  ``options.trace_dir`` / ``shard_events``
            construct one implicitly.
        """
        options = resolve_options(options, caller="MpiWorld.run", engine=engine)
        tele = telemetry if telemetry is not None else options.telemetry_or_null
        if trace_sink is None and options.trace_dir is not None:
            from repro.tracing.store import DEFAULT_SHARD_EVENTS, ShardedTraceWriter

            trace_sink = ShardedTraceWriter(
                options.trace_dir,
                shard_events=options.shard_events or DEFAULT_SHARD_EVENTS,
                run_id="run",
            )
        fallback_reason = None
        if options.engine == "batch" and tracing and trace_sink is not None:
            # The batch planner emits whole timelines at once; spilling
            # per shard requires the incremental engine path.
            fallback_reason = "trace_sink"
            tele.count("sim.batch.fallback.trace_sink")
        elif options.engine == "batch":
            from repro.sim.batch import BatchFallback, run_batch

            try:
                with tele.span("sim.batch.run", nranks=self.pinning.nranks):
                    result = run_batch(
                        self,
                        worker,
                        tracing=tracing,
                        measure_offsets=measure_offsets,
                        sync_repeats=sync_repeats,
                        tracing_initially=tracing_initially,
                        until=until,
                    )
                if tele.enabled:
                    tele.count("sim.batch.engaged")
                    tele.count("sim.batch.events", result.events_processed)
                return result
            except BatchFallback as fb:
                # Run the reference engine below; results identical.  The
                # reason survives on the result even with telemetry off.
                fallback_reason = fb.code
                tele.count(f"sim.batch.fallback.{fb.code}")
        engine = Engine(
            Transport(
                self.preset.latency,
                self.fabric.generator("network"),
                send_overhead=self.send_overhead,
                recv_overhead=self.recv_overhead,
                congestion_alpha=self.congestion_alpha,
                congestion_capacity=self.congestion_capacity,
            )
        )
        nranks = self.pinning.nranks
        tracers: dict[int, Tracer] = {}
        for rank in range(nranks):
            loc = self.pinning[rank]
            tracer = None
            if tracing:
                if trace_sink is not None:
                    from repro.tracing.store import SpillingTraceBuffer

                    buffer = SpillingTraceBuffer(
                        trace_sink,
                        rank,
                        capacity=self.trace_buffer_capacity,
                        record_cost=self.record_cost,
                        flush_cost=self.flush_cost,
                    )
                else:
                    buffer = TraceBuffer(
                        capacity=self.trace_buffer_capacity,
                        record_cost=self.record_cost,
                        flush_cost=self.flush_cost,
                    )
                tracer = Tracer(buffer, active=tracing_initially)
                tracers[rank] = tracer
            ctx = MpiContext(
                rank=rank,
                size=nranks,
                location=loc,
                jitter_model=self.jitter,
                jitter_rng=self.fabric.generator("jitter", rank),
                tracer=tracer,
                mpi_regions=self.mpi_regions,
            )
            ctx.periodic_sync_every = self.periodic_sync_every
            ctx.periodic_sync_repeats = self.periodic_sync_repeats
            if rank == 0:
                master_ctx = ctx
            engine.add_process(
                rank,
                self._main(ctx, worker, measure_offsets, sync_repeats),
                loc,
                self.ensemble.clock_for(loc),
            )
        with tele.span("sim.engine.run", nranks=nranks):
            final_time = engine.run(until=until)
        if tele.enabled:
            # Aggregate once per run — never per event — so the loop
            # itself stays telemetry-free.
            tele.count("sim.engine.events", engine.events_processed)
            tele.count("sim.engine.messages_matched", engine._next_match_id)
            tele.gauge_max("sim.engine.queue_depth_high_water", engine.queue_high_water)
            tele.gauge_max("sim.engine.peak_in_flight", engine.transport.peak_in_flight)

        init_offsets = final_offsets = None
        results: dict[int, Any] = {}
        for rank in range(nranks):
            app_result, init_off, final_off = engine.result_of(rank)
            results[rank] = app_result
            if rank == 0:
                init_offsets, final_offsets = init_off, final_off

        trace = None
        if tracing:
            meta = {
                "machine": self.preset.machine.name,
                "timer": self.spec.name,
                "locations": [
                    (loc.node, loc.chip, loc.core) for loc in self.pinning.locations
                ],
                "duration": final_time,
            }
            if init_offsets is not None:
                meta["init_offsets"] = {
                    str(r): (m.worker_time, m.offset) for r, m in init_offsets.items()
                }
            if final_offsets is not None:
                meta["final_offsets"] = {
                    str(r): (m.worker_time, m.offset) for r, m in final_offsets.items()
                }
            if trace_sink is not None:
                from repro.tracing.store import ChunkedTrace, ShardedTraceReader

                for tracer in tracers.values():
                    tracer.buffer.drain()
                trace_sink.finish(meta=meta)
                trace = ChunkedTrace(ShardedTraceReader(trace_sink.directory))
            else:
                trace = Trace({r: t.log for r, t in tracers.items()}, meta=meta)

        clocks = {rank: self.ensemble.clock_for(self.pinning[rank]) for rank in range(nranks)}
        rng_states = {
            "network": engine.transport.rng.bit_generator.state,
            "clocks": {
                rank: (
                    clock.rng.bit_generator.state if clock.rng is not None else None,
                    clock._last,
                )
                for rank, clock in clocks.items()
            },
        }
        return RunResult(
            trace=trace,
            init_offsets=init_offsets,
            final_offsets=final_offsets,
            results=results,
            duration=final_time,
            events_processed=engine.events_processed,
            periodic_offsets=list(master_ctx.periodic_series),
            engine="reference",
            rng_states=rng_states,
            fallback_reason=fallback_reason,
        )

    # ------------------------------------------------------------------
    def _main(self, ctx: MpiContext, worker: Worker, measure: bool, repeats: int):
        """Init measurement -> application -> finalize measurement."""
        init_off = None
        if measure:
            init_off = yield from measurement_protocol(ctx, repeats=repeats)
        result = yield from worker(ctx)
        final_off = None
        if measure:
            final_off = yield from measurement_protocol(ctx, repeats=repeats)
        return (result, init_off, final_off)

    def min_latency(self, rank_a: int, rank_b: int, nbytes: int = 0) -> float:
        """``l_min`` between two ranks under the current pinning."""
        return self.preset.latency.min_latency(
            self.pinning[rank_a], self.pinning[rank_b], nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MpiWorld(machine={self.preset.machine.name!r}, timer={self.spec.name!r}, "
            f"nranks={self.pinning.nranks})"
        )
