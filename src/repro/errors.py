"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "MatchingError",
    "TraceError",
    "TraceFormatError",
    "SynchronizationError",
    "ClockError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A model, machine, or experiment was configured inconsistently.

    Examples: a pinning that requests more cores than the machine provides,
    a drift model with non-monotone breakpoints, or a latency table missing
    a required distance class.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class DeadlockError(SimulationError):
    """All simulated processes are blocked and the event queue is empty.

    Raised by :class:`repro.sim.engine.Engine` when forward progress is
    impossible, e.g. a receive was posted for which no matching send will
    ever arrive.
    """


class MatchingError(ReproError):
    """Send/receive matching failed while extracting messages from a trace.

    Raised postmortem when a trace contains a receive event without a
    matching send (or vice versa), which indicates either a truncated trace
    or an instrumentation bug.
    """


class TraceError(ReproError):
    """Generic error concerning event traces."""


class TraceFormatError(TraceError):
    """A trace file could not be parsed (wrong magic, version, or schema)."""


class SynchronizationError(ReproError):
    """A timestamp-synchronization algorithm could not be applied.

    Examples: linear interpolation requested with fewer than two offset
    measurements, or an error-estimation pair with no messages in either
    direction.
    """


class ClockError(ReproError):
    """A clock model violated one of its contracts (e.g. monotonicity)."""
