"""Message-latency models.

The clock condition (paper Eq. 1) ties timestamp accuracy to the
*minimum* message latency, and Table II shows that latency depends
strongly on where the communicating processes sit: on the Xeon cluster
4.29 us between nodes, 0.86 us between chips of one node, 0.47 us
between cores of one chip.  A latency model therefore answers two
questions:

* :meth:`LatencyModel.min_latency` — the deterministic floor ``l_min``
  used by the clock condition and by synchronization algorithms;
* :meth:`LatencyModel.sample` — an actual delivery delay for one
  message, ``l_min`` plus non-negative noise ("network topology and load
  may adversely affect the predictability of message latencies").

Noise is gamma-distributed (shape ``k``, mean ``jitter``): strictly
positive, right-skewed like real network residuals, and never below the
floor — so a simulated trace can *never* contain a genuine causality
violation; every violation observed postmortem is attributable to the
clocks, exactly as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cluster.topology import DistanceClass, Location, distance_class
from repro.errors import ConfigurationError

__all__ = ["LatencyModel", "LatencySample", "HierarchicalLatency", "TorusLatency"]


@dataclass(frozen=True)
class LatencySample:
    """One latency-class parameterization: floor, bandwidth, noise."""

    base: float  # zero-byte latency floor, seconds
    bandwidth: float  # bytes/second
    jitter: float  # mean of the additive noise, seconds
    jitter_shape: float = 4.0  # gamma shape; larger = tighter

    def __post_init__(self) -> None:
        if self.base < 0 or self.bandwidth <= 0 or self.jitter < 0 or self.jitter_shape <= 0:
            raise ConfigurationError(f"invalid latency sample {self}")

    def floor(self, nbytes: int) -> float:
        return self.base + nbytes / self.bandwidth

    def draw(self, nbytes: int, rng: np.random.Generator) -> float:
        noise = 0.0
        if self.jitter > 0.0:
            noise = float(rng.gamma(self.jitter_shape, self.jitter / self.jitter_shape))
        return self.floor(nbytes) + noise


@runtime_checkable
class LatencyModel(Protocol):
    """Protocol answered by all network models."""

    def min_latency(self, src: Location, dst: Location, nbytes: int = 0) -> float:
        """Deterministic lower bound on the delivery delay (``l_min``)."""
        ...

    def sample(
        self, src: Location, dst: Location, nbytes: int, rng: np.random.Generator
    ) -> float:
        """One concrete delivery delay, ``>= min_latency``."""
        ...


class HierarchicalLatency:
    """Latency determined purely by the distance class of the endpoints.

    Parameterized directly from Table II-style measurements.  ``same_core``
    covers self-messages and oversubscribed cores (rare but legal).
    """

    def __init__(
        self,
        inter_node: LatencySample,
        same_node: LatencySample,
        same_chip: LatencySample,
        same_core: LatencySample | None = None,
    ) -> None:
        self._table = {
            DistanceClass.INTER_NODE: inter_node,
            DistanceClass.SAME_NODE: same_node,
            DistanceClass.SAME_CHIP: same_chip,
            DistanceClass.SAME_CORE: same_core or same_chip,
        }

    def sample_for_class(self, cls: DistanceClass) -> LatencySample:
        return self._table[cls]

    def min_latency(self, src: Location, dst: Location, nbytes: int = 0) -> float:
        return self._table[distance_class(src, dst)].floor(nbytes)

    def sample(
        self, src: Location, dst: Location, nbytes: int, rng: np.random.Generator
    ) -> float:
        return self._table[distance_class(src, dst)].draw(nbytes, rng)


class TorusLatency:
    """3-D torus network (Cray SeaStar, paper's Opteron cluster).

    Nodes are mapped to torus coordinates in row-major order over
    ``dims``; the inter-node floor grows with the minimal hop count
    (wrap-around Manhattan distance), modelling "messages travel through
    various stages of the network".  Intra-node classes fall back to a
    hierarchical table.
    """

    def __init__(
        self,
        dims: tuple[int, int, int],
        inter_node_base: float,
        per_hop: float,
        bandwidth: float,
        jitter: float,
        intra_node: HierarchicalLatency,
        jitter_shape: float = 4.0,
    ) -> None:
        if any(d <= 0 for d in dims):
            raise ConfigurationError(f"invalid torus dims {dims}")
        if inter_node_base < 0 or per_hop < 0 or bandwidth <= 0 or jitter < 0:
            raise ConfigurationError("invalid torus latency parameters")
        self.dims = dims
        self.inter_node_base = float(inter_node_base)
        self.per_hop = float(per_hop)
        self.bandwidth = float(bandwidth)
        self.jitter = float(jitter)
        self.jitter_shape = float(jitter_shape)
        self.intra_node = intra_node

    def coordinates(self, node: int) -> tuple[int, int, int]:
        """Row-major mapping of a node index to torus coordinates."""
        dx, dy, dz = self.dims
        if not 0 <= node < dx * dy * dz:
            raise ConfigurationError(f"node {node} outside torus {self.dims}")
        x, rest = divmod(node, dy * dz)
        y, z = divmod(rest, dz)
        return (x, y, z)

    def hops(self, src_node: int, dst_node: int) -> int:
        """Minimal wrap-around Manhattan distance between two nodes."""
        a = self.coordinates(src_node)
        b = self.coordinates(dst_node)
        total = 0
        for ai, bi, d in zip(a, b, self.dims):
            delta = abs(ai - bi)
            total += min(delta, d - delta)
        return total

    def min_latency(self, src: Location, dst: Location, nbytes: int = 0) -> float:
        if src.node == dst.node:
            return self.intra_node.min_latency(src, dst, nbytes)
        return (
            self.inter_node_base
            + self.per_hop * self.hops(src.node, dst.node)
            + nbytes / self.bandwidth
        )

    def sample(
        self, src: Location, dst: Location, nbytes: int, rng: np.random.Generator
    ) -> float:
        if src.node == dst.node:
            return self.intra_node.sample(src, dst, nbytes, rng)
        noise = 0.0
        if self.jitter > 0.0:
            noise = float(rng.gamma(self.jitter_shape, self.jitter / self.jitter_shape))
        return self.min_latency(src, dst, nbytes) + noise
