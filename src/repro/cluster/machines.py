"""Presets for the paper's evaluation platforms.

Section IV describes three clusters plus the Itanium SMP node of the
OpenMP study.  Each preset bundles the topology, a latency model
parameterized from the paper (Table II for the Xeon cluster; typical
published numbers for Myrinet and SeaStar), the ``machine_kind`` tag
used by :func:`repro.clocks.factory.timer_spec`, and the timer the
paper evaluated on that platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import HierarchicalLatency, LatencyModel, LatencySample, TorusLatency
from repro.cluster.topology import Machine
from repro.units import USEC

__all__ = ["ClusterPreset", "xeon_cluster", "powerpc_cluster", "opteron_cluster", "itanium_node"]


@dataclass(frozen=True)
class ClusterPreset:
    """A ready-to-simulate platform."""

    machine: Machine
    latency: LatencyModel
    kind: str  # machine_kind for timer_spec()
    default_timer: str  # the timer the paper evaluated on this platform

    @property
    def name(self) -> str:
        return self.machine.name


def xeon_cluster() -> ClusterPreset:
    """RWTH Aachen Xeon cluster: 62 nodes x 2 quad-core Xeon 3.0 GHz, InfiniBand.

    Latency floors are taken directly from Table II (messages: 4.29 /
    0.86 / 0.47 us; the 12.86 us collective latency emerges from the
    collective algorithms rather than being parameterized).
    """
    machine = Machine(
        name="xeon",
        nodes=62,
        chips_per_node=2,
        cores_per_chip=4,
        interconnect="InfiniBand",
        clock_ghz=3.0,
    )
    latency = HierarchicalLatency(
        inter_node=LatencySample(base=4.29 * USEC, bandwidth=1.4e9, jitter=0.06 * USEC),
        same_node=LatencySample(base=0.86 * USEC, bandwidth=2.8e9, jitter=0.012 * USEC),
        same_chip=LatencySample(base=0.47 * USEC, bandwidth=4.0e9, jitter=0.006 * USEC),
    )
    return ClusterPreset(machine=machine, latency=latency, kind="xeon", default_timer="tsc")


def powerpc_cluster() -> ClusterPreset:
    """MareNostrum: 2560 JS21 blades x 2 dual-core PowerPC 970MP 2.3 GHz, Myrinet.

    Myrinet-2000 zero-byte latency is a few microseconds higher than the
    Xeon cluster's InfiniBand; the blade-internal classes are similar.
    """
    machine = Machine(
        name="powerpc",
        nodes=2560,
        chips_per_node=2,
        cores_per_chip=2,
        interconnect="Myrinet",
        clock_ghz=2.3,
    )
    latency = HierarchicalLatency(
        inter_node=LatencySample(base=6.3 * USEC, bandwidth=0.9e9, jitter=0.12 * USEC),
        same_node=LatencySample(base=0.95 * USEC, bandwidth=2.4e9, jitter=0.015 * USEC),
        same_chip=LatencySample(base=0.52 * USEC, bandwidth=3.5e9, jitter=0.008 * USEC),
    )
    return ClusterPreset(
        machine=machine, latency=latency, kind="powerpc", default_timer="timebase"
    )


def opteron_cluster() -> ClusterPreset:
    """Jaguar (Cray XT3): 3744 nodes x 1 dual-core Opteron 2.6 GHz, SeaStar 3-D torus.

    Every node owns a SeaStar router; the torus is sized 12 x 12 x 26 =
    3744.  Inter-node latency grows ~0.1 us per hop from a ~4.8 us base.
    """
    machine = Machine(
        name="opteron",
        nodes=3744,
        chips_per_node=1,
        cores_per_chip=2,
        interconnect="SeaStar 3-D torus",
        clock_ghz=2.6,
    )
    intra = HierarchicalLatency(
        inter_node=LatencySample(base=4.8 * USEC, bandwidth=1.1e9, jitter=0.1 * USEC),
        same_node=LatencySample(base=0.7 * USEC, bandwidth=2.6e9, jitter=0.01 * USEC),
        same_chip=LatencySample(base=0.5 * USEC, bandwidth=3.2e9, jitter=0.008 * USEC),
    )
    latency = TorusLatency(
        dims=(12, 12, 26),
        inter_node_base=4.8 * USEC,
        per_hop=0.1 * USEC,
        bandwidth=1.1e9,
        jitter=0.15 * USEC,
        intra_node=intra,
    )
    return ClusterPreset(
        machine=machine, latency=latency, kind="opteron", default_timer="gettimeofday"
    )


def itanium_node() -> ClusterPreset:
    """The OpenMP test system: one Itanium SMP node, 4 chips x 4 cores.

    Shared-memory synchronization latencies are far below network ones —
    which is exactly why OpenMP semantics are so easily violated by
    sub-microsecond clock disagreements between chips (Fig. 3/8).
    """
    machine = Machine(
        name="itanium-smp",
        nodes=1,
        chips_per_node=4,
        cores_per_chip=4,
        interconnect="shared memory",
        clock_ghz=1.6,
    )
    latency = HierarchicalLatency(
        inter_node=LatencySample(base=10.0 * USEC, bandwidth=1.0e9, jitter=0.2 * USEC),
        same_node=LatencySample(base=0.9 * USEC, bandwidth=2.0e9, jitter=0.02 * USEC),
        same_chip=LatencySample(base=0.35 * USEC, bandwidth=3.0e9, jitter=0.01 * USEC),
    )
    return ClusterPreset(machine=machine, latency=latency, kind="itanium", default_timer="tsc")
