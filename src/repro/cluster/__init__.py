"""Simulated cluster substrate: topology, network latency, machine presets.

Models the three evaluation platforms of the paper (Xeon/InfiniBand,
PowerPC/Myrinet "MareNostrum", Opteron/SeaStar "Jaguar") plus the Itanium
SMP node used for the OpenMP study, at the level of detail the study
needs: a node/chip/core hierarchy, location-dependent message latencies
(Table II), process pinning (Table I), and OS jitter.
"""

from repro.cluster.topology import Location, Machine, distance_class, DistanceClass
from repro.cluster.network import (
    HierarchicalLatency,
    LatencyModel,
    TorusLatency,
    LatencySample,
)
from repro.cluster.machines import (
    itanium_node,
    opteron_cluster,
    powerpc_cluster,
    xeon_cluster,
)
from repro.cluster.pinning import Pinning, inter_chip, inter_core, inter_node, scheduler_default
from repro.cluster.jitter import OsJitterModel

__all__ = [
    "Location",
    "Machine",
    "DistanceClass",
    "distance_class",
    "LatencyModel",
    "LatencySample",
    "HierarchicalLatency",
    "TorusLatency",
    "xeon_cluster",
    "powerpc_cluster",
    "opteron_cluster",
    "itanium_node",
    "Pinning",
    "inter_node",
    "inter_chip",
    "inter_core",
    "scheduler_default",
    "OsJitterModel",
]
