"""Process pinning strategies (paper Table I).

The Xeon-cluster measurements distinguish three deliberate placements —
inter-node (4 nodes x 1 process), inter-chip (1 node, 1 process per
chip) and inter-core (1 node, 1 chip, 4 processes) — plus the
"realistic scenario" of Fig. 7 where *"we refrained from using a
specific process pinning ... and let the scheduler choose"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.cluster.topology import DistanceClass, Location, Machine, distance_class
from repro.errors import ConfigurationError

__all__ = ["Pinning", "inter_node", "inter_chip", "inter_core", "scheduler_default"]


@dataclass(frozen=True)
class Pinning:
    """An immutable rank -> location assignment on a machine."""

    machine: Machine
    locations: tuple[Location, ...]
    label: str = ""

    def __post_init__(self) -> None:
        for loc in self.locations:
            self.machine.validate(loc)

    def __len__(self) -> int:
        return len(self.locations)

    def __getitem__(self, rank: int) -> Location:
        return self.locations[rank]

    def __iter__(self) -> Iterator[Location]:
        return iter(self.locations)

    @property
    def nranks(self) -> int:
        return len(self.locations)

    def dominant_distance(self) -> DistanceClass:
        """The farthest distance class present among any pair of ranks.

        This is the class whose latency bounds the clock-condition
        requirement for the whole job.
        """
        worst = DistanceClass.SAME_CORE
        order = [
            DistanceClass.SAME_CORE,
            DistanceClass.SAME_CHIP,
            DistanceClass.SAME_NODE,
            DistanceClass.INTER_NODE,
        ]
        for i in range(len(self.locations)):
            for j in range(i + 1, len(self.locations)):
                cls = distance_class(self.locations[i], self.locations[j])
                if order.index(cls) > order.index(worst):
                    worst = cls
        return worst

    def describe(self) -> str:
        """Human-readable summary matching the style of Table I."""
        nodes = sorted({loc.node for loc in self.locations})
        chips = sorted({(loc.node, loc.chip) for loc in self.locations})
        return (
            f"{self.label or 'pinning'}: {self.nranks} processes on "
            f"{len(nodes)} node(s), {len(chips)} chip(s)"
        )


def inter_node(machine: Machine, nprocs: int = 4) -> Pinning:
    """Table I "Inter node": one process per node, ``nprocs`` nodes."""
    if nprocs > machine.nodes:
        raise ConfigurationError(f"{nprocs} processes need {nprocs} nodes; have {machine.nodes}")
    locs = tuple(Location(n, 0, 0) for n in range(nprocs))
    return Pinning(machine, locs, label="inter-node")


def inter_chip(machine: Machine, nprocs: Optional[int] = None) -> Pinning:
    """Table I "Inter chip": one node, one process per chip."""
    nprocs = machine.chips_per_node if nprocs is None else nprocs
    if nprocs > machine.chips_per_node:
        raise ConfigurationError(
            f"{nprocs} processes need {nprocs} chips/node; have {machine.chips_per_node}"
        )
    locs = tuple(Location(0, c, 0) for c in range(nprocs))
    return Pinning(machine, locs, label="inter-chip")


def inter_core(machine: Machine, nprocs: Optional[int] = None) -> Pinning:
    """Table I "Inter core": one node, one chip, one process per core."""
    nprocs = machine.cores_per_chip if nprocs is None else nprocs
    if nprocs > machine.cores_per_chip:
        raise ConfigurationError(
            f"{nprocs} processes need {nprocs} cores/chip; have {machine.cores_per_chip}"
        )
    locs = tuple(Location(0, 0, k) for k in range(nprocs))
    return Pinning(machine, locs, label="inter-core")


def scheduler_default(
    machine: Machine, nprocs: int, rng: Optional[np.random.Generator] = None
) -> Pinning:
    """Emulate the batch scheduler's default placement (Fig. 7 scenario).

    Nodes are filled in order (the common block allocation), but the
    assignment of ranks to cores *within* each node is arbitrary — that
    is the part the paper deliberately left to the scheduler.  Passing an
    ``rng`` shuffles the within-node core order; without one the order is
    the BIOS enumeration.
    """
    if nprocs > machine.total_cores:
        raise ConfigurationError(f"{nprocs} processes exceed {machine.total_cores} cores")
    locs: list[Location] = []
    remaining = nprocs
    node = 0
    while remaining > 0:
        take = min(remaining, machine.cores_per_node)
        core_order = list(range(machine.cores_per_node))
        if rng is not None:
            rng.shuffle(core_order)
        for flat in core_order[:take]:
            chip, core = divmod(flat, machine.cores_per_chip)
            locs.append(Location(node, chip, core))
        remaining -= take
        node += 1
    return Pinning(machine, tuple(locs), label="scheduler-default")
