"""Operating-system jitter.

Section III.c: *"Jitter interference is primarily caused by scheduling
daemon processes or handling asynchronous events such as interrupts on
the side of the operating system."*  We model jitter as a Poisson stream
of preemptions: a compute phase of nominal length ``L`` suffers on
average ``rate * L`` interruptions, each stealing an exponentially
distributed slice of CPU time.

This perturbs every simulated compute interval (and, through
:class:`repro.clocks.base.Clock`'s ``read_jitter``, the timestamping
itself), so that identical iterations of a workload take slightly
different times on different ranks — the raw material of the wait
states trace tools look for, and one of the paper's listed sources of
timestamp inaccuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["OsJitterModel"]


@dataclass(frozen=True)
class OsJitterModel:
    """Poisson preemption model.

    Attributes
    ----------
    rate:
        Expected preemptions per second of computation (e.g. 50/s for a
        noisy full OS, ~1/s for a stripped compute-node kernel).
    mean_delay:
        Mean length of one preemption, seconds.
    """

    rate: float = 25.0
    mean_delay: float = 8.0e-6

    def __post_init__(self) -> None:
        if self.rate < 0 or self.mean_delay < 0:
            raise ConfigurationError("jitter rate and mean_delay must be non-negative")

    def perturb(self, duration: float, rng: np.random.Generator) -> float:
        """Actual wall time for a compute phase of nominal ``duration``."""
        if duration < 0:
            raise ConfigurationError("duration must be non-negative")
        if self.rate == 0.0 or self.mean_delay == 0.0 or duration == 0.0:
            return duration
        hits = rng.poisson(self.rate * duration)
        if hits == 0:
            return duration
        return duration + float(rng.exponential(self.mean_delay, size=hits).sum())

    def perturb_array(self, durations: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized :meth:`perturb` for a batch of compute phases."""
        d = np.asarray(durations, dtype=np.float64)
        if np.any(d < 0):
            raise ConfigurationError("durations must be non-negative")
        if self.rate == 0.0 or self.mean_delay == 0.0:
            return d.copy()
        hits = rng.poisson(self.rate * d)
        # Sum of k exponentials(mean m) is Gamma(k, m); draw in one shot.
        extra = np.where(hits > 0, rng.gamma(np.maximum(hits, 1), self.mean_delay), 0.0)
        return d + np.where(hits > 0, extra, 0.0)

    @classmethod
    def quiet(cls) -> "OsJitterModel":
        """A jitter-free OS (for deterministic tests)."""
        return cls(rate=0.0, mean_delay=0.0)

    @classmethod
    def compute_node(cls) -> "OsJitterModel":
        """A stripped compute-node kernel (Catamount/CNK-like)."""
        return cls(rate=1.0, mean_delay=3.0e-6)

    @classmethod
    def full_os(cls) -> "OsJitterModel":
        """A full Linux node with daemons."""
        return cls(rate=50.0, mean_delay=10.0e-6)
