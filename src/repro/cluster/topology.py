"""Hierarchical machine topology: machine > node > chip > core.

The paper's measurements distinguish events by the *relative location* of
the processes involved — same core, same chip, same SMP node, or
different nodes (Table I/II) — because both message latency and clock
agreement depend on that relation.  :class:`Location` pins a process to a
``(node, chip, core)`` triple and :func:`distance_class` classifies a
pair of locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Location", "Machine", "DistanceClass", "distance_class"]


@dataclass(frozen=True, order=True)
class Location:
    """Placement of one process/thread: node, chip within node, core within chip."""

    node: int
    chip: int
    core: int

    def __post_init__(self) -> None:
        if self.node < 0 or self.chip < 0 or self.core < 0:
            raise ConfigurationError(f"negative location component: {self}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"n{self.node}c{self.chip}k{self.core}"


class DistanceClass(enum.Enum):
    """Relation between two locations, ordered from closest to farthest."""

    SAME_CORE = "same_core"
    SAME_CHIP = "same_chip"  # different cores, one chip ("inter core" in Table II)
    SAME_NODE = "same_node"  # different chips, one node ("inter chip")
    INTER_NODE = "inter_node"  # different nodes ("inter node")


def distance_class(a: Location, b: Location) -> DistanceClass:
    """Classify the relation between two process locations.

    Note the Table II naming quirk: the paper's "inter core" latency is
    between cores of the *same chip* (``SAME_CHIP`` here) and its
    "inter chip" latency is between chips of the *same node*
    (``SAME_NODE`` here).
    """
    if a.node != b.node:
        return DistanceClass.INTER_NODE
    if a.chip != b.chip:
        return DistanceClass.SAME_NODE
    if a.core != b.core:
        return DistanceClass.SAME_CHIP
    return DistanceClass.SAME_CORE


@dataclass(frozen=True)
class Machine:
    """A homogeneous cluster: ``nodes`` SMP nodes of ``chips_per_node`` chips
    with ``cores_per_chip`` cores each.

    Parameters mirror the paper's platform descriptions, e.g. the Xeon
    cluster has 62 nodes x 2 quad-core chips.  ``name`` and
    ``interconnect`` are labels used in reports.
    """

    name: str
    nodes: int
    chips_per_node: int
    cores_per_chip: int
    interconnect: str = ""
    clock_ghz: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.chips_per_node <= 0 or self.cores_per_chip <= 0:
            raise ConfigurationError(f"machine {self.name!r} has a non-positive dimension")

    @property
    def cores_per_node(self) -> int:
        return self.chips_per_node * self.cores_per_chip

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def validate(self, loc: Location) -> Location:
        """Check that a location exists on this machine; return it."""
        if loc.node >= self.nodes:
            raise ConfigurationError(f"{loc} exceeds node count {self.nodes} of {self.name}")
        if loc.chip >= self.chips_per_node:
            raise ConfigurationError(
                f"{loc} exceeds chips/node {self.chips_per_node} of {self.name}"
            )
        if loc.core >= self.cores_per_chip:
            raise ConfigurationError(
                f"{loc} exceeds cores/chip {self.cores_per_chip} of {self.name}"
            )
        return loc

    def location_of_core(self, flat_core: int) -> Location:
        """Map a flat core index (0 .. total_cores-1) to a Location.

        Cores are numbered node-major, then chip, then core — the usual
        BIOS enumeration order.
        """
        if not 0 <= flat_core < self.total_cores:
            raise ConfigurationError(
                f"flat core {flat_core} out of range 0..{self.total_cores - 1}"
            )
        node, rest = divmod(flat_core, self.cores_per_node)
        chip, core = divmod(rest, self.cores_per_chip)
        return Location(node, chip, core)

    def all_locations(self) -> list[Location]:
        """Every core location on the machine, in flat enumeration order."""
        return [self.location_of_core(i) for i in range(self.total_cores)]
