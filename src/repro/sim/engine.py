"""The discrete-event engine.

Processes are generators yielding :mod:`repro.sim.primitives` requests.
The engine owns the true-time event queue, message transport, and
per-process clocks, and guarantees:

* **determinism** — ties in the event queue break on a monotone sequence
  number, and all randomness flows through generators owned by the
  caller, so a run is a pure function of its inputs;
* **MPI-like matching** — receives match sends in per-(src, dst, tag)
  program order (non-overtaking), with wildcard source/tag supported;
* **causality** — a message is never delivered earlier than
  ``sent_at + transport latency``, so any receive-before-send observed
  in recorded *timestamps* is attributable to clocks, never to the
  simulation (the property the paper's methodology depends on);
* **deadlock detection** — if no events remain but processes are
  blocked, a :class:`repro.errors.DeadlockError` names them.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.clocks.base import Clock
from repro.cluster.topology import Location
from repro.errors import DeadlockError, SimulationError
from repro.sim.primitives import ANY_SOURCE, ANY_TAG, Compute, Message, ReadClock, Recv, Send

__all__ = ["Engine", "Transport", "congested_delay"]

ProcessGen = Generator[Any, Any, Any]


def congested_delay(
    delay: float, floor: float, alpha: float, in_flight: int, capacity: int
) -> float:
    """Scale the noise-above-floor part of ``delay`` by the current load.

    Section III.c's load model: ``floor + (delay - floor) *
    (1 + alpha * in_flight / capacity)``.  The floor never moves, so
    congestion cannot create causality violations.  This is the single
    definition of the scaling — :class:`Transport` applies it per
    message in event order, and the batch solver
    (:mod:`repro.sim.batch`) replays the identical arithmetic from its
    event-ordered arrival pass, which is what keeps the two paths
    bit-identical.
    """
    load = in_flight / capacity
    return floor + (delay - floor) * (1.0 + alpha * load)


class Transport:
    """Delivery-latency policy connecting the engine to a latency model.

    Parameters
    ----------
    latency_model:
        Anything satisfying :class:`repro.cluster.network.LatencyModel`.
    rng:
        Stream for latency noise (consumed in deterministic event order).
    send_overhead:
        CPU time the sender spends initiating a transfer, seconds.
    recv_overhead:
        CPU time the receiver spends completing a transfer, seconds.
    """

    __slots__ = (
        "latency_model",
        "rng",
        "send_overhead",
        "recv_overhead",
        "congestion_alpha",
        "congestion_capacity",
        "in_flight",
        "peak_in_flight",
    )

    def __init__(
        self,
        latency_model,
        rng: np.random.Generator,
        send_overhead: float = 1.0e-7,
        recv_overhead: float = 1.0e-7,
        congestion_alpha: float = 0.0,
        congestion_capacity: int = 16,
    ) -> None:
        self.latency_model = latency_model
        self.rng = rng
        self.send_overhead = send_overhead
        self.recv_overhead = recv_overhead
        #: Load sensitivity: the *noise above the floor* of a transfer is
        #: scaled by ``1 + alpha * in_flight / capacity`` — Section III.c's
        #: "the processing time in each stage may vary depending on the
        #: current network load".  The floor itself never moves, so
        #: congestion cannot create causality violations.
        self.congestion_alpha = congestion_alpha
        self.congestion_capacity = max(int(congestion_capacity), 1)
        self.in_flight = 0
        self.peak_in_flight = 0

    def delivery_delay(self, src: Location, dst: Location, nbytes: int) -> float:
        delay = self.latency_model.sample(src, dst, nbytes, self.rng)
        if self.congestion_alpha > 0.0 and self.in_flight > 0:
            floor = self.latency_model.min_latency(src, dst, nbytes)
            delay = congested_delay(
                delay, floor, self.congestion_alpha,
                self.in_flight, self.congestion_capacity,
            )
        return delay

    def min_latency(self, src: Location, dst: Location, nbytes: int = 0) -> float:
        return self.latency_model.min_latency(src, dst, nbytes)


class _Proc:
    """Internal per-process state."""

    __slots__ = ("rank", "gen", "location", "clock", "mailbox", "pending_recv", "done", "result")

    def __init__(self, rank: int, gen: ProcessGen, location: Location, clock: Clock) -> None:
        self.rank = rank
        self.gen = gen
        self.location = location
        self.clock = clock
        self.mailbox: list[Message] = []  # delivered, unmatched messages
        self.pending_recv: Optional[Recv] = None  # at most one (blocking model)
        self.done = False
        self.result: Any = None


class Engine:
    """Run a set of simulated processes to completion.

    Parameters
    ----------
    transport:
        Message delivery policy; may be ``None`` for compute-only
        simulations (any Send/Recv then raises).

    Usage
    -----
    >>> eng = Engine(transport)                        # doctest: +SKIP
    >>> eng.add_process(rank, gen, location, clock)    # doctest: +SKIP
    >>> eng.run()                                      # doctest: +SKIP
    """

    def __init__(self, transport: Optional[Transport] = None) -> None:
        self.transport = transport
        self.now: float = 0.0
        # Heap entries are (time, seq, kind, a, b): kind 0 resumes a
        # process (a=proc, b=value), kind 1 delivers a message
        # (a=dst proc, b=Message).  Plain tuples instead of closures keep
        # the hot loop free of per-event allocations.
        self._queue: list[tuple[float, int, int, object, object]] = []
        self._seq = 0
        self._procs: dict[int, _Proc] = {}
        self._next_match_id = 0
        # Non-overtaking guard: last delivery time per (src, dst).
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.events_processed = 0
        # Deepest the event heap ever got; a single int compare per push
        # keeps this cheap enough for the always-on path (telemetry reads
        # it once, after the run).
        self.queue_high_water = 0
        # Active run() horizon; gates the inline resume fast path.
        self._until: Optional[float] = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def add_process(
        self, rank: int, gen: ProcessGen, location: Location, clock: Clock, start_at: float = 0.0
    ) -> None:
        """Register a process generator; it is first stepped at ``start_at``."""
        if rank in self._procs:
            raise SimulationError(f"rank {rank} already registered")
        proc = _Proc(rank, gen, location, clock)
        self._procs[rank] = proc
        self._schedule_step(start_at, proc, None)

    @property
    def ranks(self) -> Iterable[int]:
        return self._procs.keys()

    def result_of(self, rank: int) -> Any:
        """Return value of a finished process generator."""
        proc = self._procs[rank]
        if not proc.done:
            raise SimulationError(f"rank {rank} has not finished")
        return proc.result

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _schedule_step(self, at: float, proc: "_Proc", value: Any) -> None:
        if at < self.now:
            raise SimulationError(f"cannot schedule into the past ({at} < {self.now})")
        heapq.heappush(self._queue, (at, self._seq, 0, proc, value))
        self._seq += 1
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    def _schedule_delivery(self, at: float, dst: "_Proc", msg: Message) -> None:
        if at < self.now:
            raise SimulationError(f"cannot schedule into the past ({at} < {self.now})")
        heapq.heappush(self._queue, (at, self._seq, 1, dst, msg))
        self._seq += 1
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until completion (or true time ``until``).

        Returns the final true time.  Raises :class:`DeadlockError` if
        the queue drains while processes are still blocked in receives.
        """
        queue = self._queue
        step = self._step
        deliver = self._deliver
        heappop = heapq.heappop
        self._until = until
        while queue:
            at = queue[0][0]
            if until is not None and at > until:
                self.now = until
                return self.now
            at, _, kind, a, b = heappop(queue)
            self.now = at
            self.events_processed += 1
            if kind == 0:
                step(a, b)
            else:
                deliver(a, b)
        blocked = [p.rank for p in self._procs.values() if not p.done]
        if blocked:
            details = ", ".join(
                f"rank {p.rank} waiting on {p.pending_recv!r}"
                for p in self._procs.values()
                if not p.done
            )
            raise DeadlockError(f"simulation deadlocked; blocked: {details}")
        return self.now

    # ------------------------------------------------------------------
    # Process stepping
    # ------------------------------------------------------------------
    def _step(self, proc: _Proc, value: Any) -> None:
        """Resume ``proc`` with ``value`` and dispatch its next request.

        Consecutive ``Compute``/``ReadClock`` resumes whose end time
        precedes every other queued event (and the run horizon) are
        processed inline, coalescing what would be a heap push/pop
        round-trip per request into one loop iteration.  The fast path
        fires only when no other event could be scheduled in between,
        so event order, ``events_processed``, and all observable state
        are bit-identical to the queue-everything behaviour.
        """
        gen_send = proc.gen.send
        clock = proc.clock
        queue = self._queue
        until = self._until
        while True:
            try:
                req = gen_send(value)
            except StopIteration as stop:
                proc.done = True
                proc.result = stop.value
                return
            kind = type(req)
            if kind is Compute:
                at = self.now + req.duration
                resumed = None
            elif kind is Send:
                self._handle_send(proc, req)
                return
            elif kind is Recv:
                self._handle_recv(proc, req)
                return
            elif kind is ReadClock:
                resumed = clock.read(self.now)
                at = self.now + clock.read_overhead
            else:
                raise SimulationError(f"rank {proc.rank} yielded unknown request {req!r}")
            if (until is None or at <= until) and (not queue or at < queue[0][0]):
                self.now = at
                self.events_processed += 1
                value = resumed
                continue
            self._schedule_step(at, proc, resumed)
            return

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _handle_send(self, proc: _Proc, req: Send) -> None:
        if self.transport is None:
            raise SimulationError("engine has no transport; Send is unavailable")
        dst = self._procs.get(req.dst)
        if dst is None:
            raise SimulationError(f"rank {proc.rank} sent to unknown rank {req.dst}")
        match_id = self._next_match_id
        self._next_match_id += 1
        delay = self.transport.delivery_delay(proc.location, dst.location, req.nbytes)
        arrival = self.now + delay
        # MPI non-overtaking: same (src, dst) pairs deliver in send order.
        key = (proc.rank, req.dst)
        # math scalars, not numpy: np.nextafter/np.inf allocate an array
        # scalar per send, which dominates the event loop at scale.
        floor = self._last_delivery.get(key, -math.inf)
        if arrival <= floor:
            arrival = math.nextafter(floor, math.inf)
        self._last_delivery[key] = arrival
        msg = Message(
            src=proc.rank,
            dst=req.dst,
            tag=req.tag,
            nbytes=req.nbytes,
            payload=req.payload,
            match_id=match_id,
            sent_at=self.now,
        )
        self.transport.in_flight += 1
        if self.transport.in_flight > self.transport.peak_in_flight:
            self.transport.peak_in_flight = self.transport.in_flight
        self._schedule_delivery(arrival, dst, msg)
        # Sender resumes after its local overhead, learning the match id.
        self._schedule_step(self.now + self.transport.send_overhead, proc, match_id)

    def _deliver(self, dst: _Proc, msg: Message) -> None:
        self.transport.in_flight -= 1
        msg.delivered_at = self.now
        pending = dst.pending_recv
        if pending is not None and msg.matches(pending.src, pending.tag):
            dst.pending_recv = None
            self._complete_recv(dst, msg)
        else:
            dst.mailbox.append(msg)

    def _handle_recv(self, proc: _Proc, req: Recv) -> None:
        if self.transport is None:
            raise SimulationError("engine has no transport; Recv is unavailable")
        if proc.pending_recv is not None:
            raise SimulationError(f"rank {proc.rank} has overlapping blocking receives")
        for i, msg in enumerate(proc.mailbox):
            if msg.matches(req.src, req.tag):
                proc.mailbox.pop(i)
                self._complete_recv(proc, msg)
                return
        proc.pending_recv = req

    def _complete_recv(self, proc: _Proc, msg: Message) -> None:
        self._schedule_step(self.now + self.transport.recv_overhead, proc, msg)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(now={self.now:g}, procs={len(self._procs)}, "
            f"queued={len(self._queue)}, processed={self.events_processed})"
        )
