"""Discrete-event simulation engine.

The engine advances *true time* — the ideal global clock no real cluster
has — and runs simulated processes written as Python generators that
yield :mod:`repro.sim.primitives` requests (compute, send, receive, read
clock).  Everything above it (the MPI runtime, OpenMP teams, tracing) is
built from these primitives, and everything below it (latency models,
clocks) is consulted through narrow callbacks, so the engine itself stays
small and generic.
"""

from repro.sim.engine import Engine, Transport
from repro.sim.primitives import Compute, Message, ReadClock, Recv, Send, ANY_SOURCE, ANY_TAG

__all__ = [
    "Engine",
    "Transport",
    "Compute",
    "Send",
    "Recv",
    "ReadClock",
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
]
