"""Requests a simulated process may yield to the engine.

A simulated process is a generator; each ``yield`` hands the engine one
of the request objects below and suspends the process until the request
completes.  The value sent back into the generator is the request's
result (e.g. the delivered :class:`Message` for a :class:`Recv`).

These are deliberately minimal — blocking receive, eager send, compute,
clock read.  Nonblocking MPI semantics, collectives, and OpenMP
constructs are composed from them in higher layers.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Compute", "Send", "Recv", "ReadClock", "Message", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source rank for :class:`Recv` (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1
#: Wildcard tag for :class:`Recv` (mirrors ``MPI_ANY_TAG``).
ANY_TAG: int = -1


class Compute:
    """Occupy the CPU for ``duration`` seconds of true time.

    The caller is responsible for any OS-jitter inflation (see
    :class:`repro.cluster.jitter.OsJitterModel`); the engine treats the
    duration as exact.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative compute duration {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compute({self.duration:g})"


class Send:
    """Eagerly send ``nbytes`` to rank ``dst`` with ``tag``.

    Eager semantics: the sender is occupied for the configured local
    send overhead and then continues; delivery happens asynchronously
    after the transport latency.  This mirrors small-message MPI
    behaviour and keeps naive exchange patterns deadlock-free.

    The result sent back into the generator is the message's
    ``match_id`` (a globally unique integer also handed to the
    receiver), which instrumentation may record.
    """

    __slots__ = ("dst", "tag", "nbytes", "payload")

    def __init__(self, dst: int, tag: int = 0, nbytes: int = 0, payload: Any = None) -> None:
        if dst < 0:
            raise ValueError("dst must be a concrete rank")
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Send(dst={self.dst}, tag={self.tag}, nbytes={self.nbytes})"


class Recv:
    """Block until a matching message is delivered.

    ``src``/``tag`` may be :data:`ANY_SOURCE`/:data:`ANY_TAG`.  The
    result is the delivered :class:`Message`.
    """

    __slots__ = ("src", "tag")

    def __init__(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        self.src = src
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Recv(src={self.src}, tag={self.tag})"


class ReadClock:
    """Read the process-local clock.

    The result is the (jittered, quantized, monotone) clock value; the
    process is then occupied for the clock's read overhead.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ReadClock()"


class Message:
    """A delivered message, handed to the receiver.

    Attributes
    ----------
    src, dst, tag, nbytes, payload:
        As given by the sender.
    match_id:
        Globally unique id shared by the send and receive sides; lets
        instrumentation and ground-truth validation pair events without
        re-running the matching algorithm.
    sent_at:
        True time at which the send was initiated.
    delivered_at:
        True time at which the message became available at the receiver.
    """

    __slots__ = ("src", "dst", "tag", "nbytes", "payload", "match_id", "sent_at", "delivered_at")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any,
        match_id: int,
        sent_at: float,
        delivered_at: Optional[float] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.match_id = match_id
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def matches(self, src: int, tag: int) -> bool:
        """Does this message satisfy a receive for ``(src, tag)``?"""
        return (src == ANY_SOURCE or src == self.src) and (tag == ANY_TAG or tag == self.tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(src={self.src}, dst={self.dst}, tag={self.tag}, "
            f"match_id={self.match_id})"
        )
