"""Batched trace generation: an array-native fast path for built-in workloads.

The discrete-event engine executes one Python generator resume per
event.  For the built-in workloads that is pure overhead: their
communication structure is *statically known* — every send, receive,
clock read and compute interval can be enumerated without running any
generator.  This module compiles that structure once into per-rank
timeline kernels and then *solves* for the event times:

1. **Plan compilation** (cached): each workload module contributes a
   ``batch_plan`` function that replays its worker's control flow
   against a :class:`_RankPlan` recorder instead of an ``MpiContext``.
   The recorder applies exactly the traced lowering of
   :mod:`repro.mpi.comm` (regions, record costs, flush accounting),
   expands collectives with the algorithms of
   :mod:`repro.mpi.collectives`, and expands the init/finalize offset
   measurement of :mod:`repro.sync.offset`.  The result per rank is a
   list of *segments* — straight-line runs of time deltas between
   blocking receives — plus statically paired event columns.

2. **Timeline solve**: true-time advancement inside a segment is a
   sequential running sum of the segment's deltas (bit-identical to the
   engine's one-add-per-event arithmetic); receives synchronize
   segments through per-channel FIFO queues and a global send heap that
   processes sends in true-time order — the exact order in which the
   engine consumes the transport RNG.  Latency noise is drawn as one
   vectorized ``standard_gamma`` block and consumed in that same order.

3. **Deferred clock evaluation**: clock reads are collected per physical
   clock, merged in true-time order across the ranks sharing the clock,
   and evaluated with a single :meth:`Clock.read_array` call — the same
   jitter draws, quantization, and monotonicity clamp as per-event
   scalar :meth:`Clock.read`, in the same RNG order.

4. **Columnar assembly**: event logs are built via
   :meth:`EventLog.from_arrays` from the precompiled columns, with
   timestamps gathered from the solved read values and match ids
   patched from the solver.

The contract is **bit-for-bit identity** with the generator engine:
same timestamps, same event order, same ``events_processed``, same
duration, same ``periodic_series`` measurements, and the same RNG
stream positions afterwards.  Periodic (piggybacked) offset
synchronization is compiled into the timelines — the protocol fires at
statically known collective instances (see
:func:`repro.mpi.comm.periodic_sync_due`) — and congestion-coupled
latency is replayed by tracking the engine's in-flight counter from
the solver's time-ordered send pass.  Whenever the fast path cannot
*guarantee* identity (dynamic matching ambiguity, simultaneous sends,
exact send/delivery ties under congestion, run horizons, …) it raises
:class:`BatchFallback` before mutating any shared state and the caller
falls back to the reference engine.  The ``batch_matches_engine``
oracle in :mod:`repro.verify.oracles` fuzzes this contract.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from heapq import heappop, heappush
from typing import Any, Callable, Optional

import numpy as np

from repro.cluster.network import HierarchicalLatency, TorusLatency
from repro.cluster.topology import distance_class
from repro.errors import ConfigurationError
from repro.sim.engine import congested_delay
from repro.sync.offset import SYNC_TAG, OffsetMeasurement, cristian_offset
from repro.tracing.events import CollectiveOp, EventLog, EventType
from repro.tracing.trace import Trace

__all__ = ["BatchFallback", "run_batch"]

#: Region ids mirrored from repro.mpi.comm (imported lazily to keep the
#: sim package import-light); values are stable API constants.
_MPI_SEND_REGION = 1
_MPI_RECV_REGION = 2

#: Mirrors repro.mpi.collectives.STAGE_COST (stable API constant).
_STAGE_COST = 1.0e-6

#: Segments at most this long advance with a plain Python running sum;
#: longer ones use np.cumsum (bit-identical: both are sequential adds).
_SMALL_SEGMENT = 24


class BatchFallback(Exception):
    """The batch fast path cannot guarantee bit-identity; use the engine.

    ``code`` is a stable, machine-readable snake_case identifier for the
    reason (``"wildcard_recv"``, ``"congestion"``, ...).  ``world.run``
    copies it onto ``RunResult.fallback_reason`` and telemetry counts it
    under ``sim.batch.fallback.<code>``; ``detail`` is the human-readable
    explanation shown by ``str(exc)``.
    """

    def __init__(self, code: str, detail: Optional[str] = None):
        super().__init__(detail or code)
        self.code = code
        self.detail = detail or code


# ----------------------------------------------------------------------
# Plan recorder
# ----------------------------------------------------------------------
class _Segment:
    """A straight-line run of time deltas between blocking receives."""

    __slots__ = (
        "deltas", "read_pos", "read_slot0", "send_pos", "send_serials",
        "deltas_arr", "read_pos_arr",
    )

    def __init__(self, deltas, read_pos, read_slot0, send_pos, send_serials):
        self.deltas = tuple(deltas)
        self.read_pos = tuple(read_pos)
        self.read_slot0 = read_slot0
        self.send_pos = tuple(send_pos)
        self.send_serials = tuple(send_serials)
        self.deltas_arr = np.array(deltas, dtype=np.float64)
        self.read_pos_arr = np.array(read_pos, dtype=np.int64)


class _RankEvents:
    """Precompiled event columns of one rank (timestamps as read slots)."""

    __slots__ = ("slot", "et", "a", "b", "c", "d_static",
                 "send_rows", "send_serials", "recv_rows", "recv_match_serials")


class _RankPlan:
    """Records one rank's operations, mirroring ``MpiContext`` lowering.

    Workload ``batch_plan`` functions call the same surface a worker
    generator uses on its context (``compute``, ``send``, ``recv``,
    collectives, …), but as plain methods — no generators run.
    """

    def __init__(self, rank, size, *, tracing, tracing_initially, mpi_regions,
                 jitter_model, jitter_rng, record_cost, flush_cost, capacity,
                 read_overhead, send_overhead,
                 periodic_sync_every=0, periodic_sync_repeats=3):
        self.rank = rank
        self.size = size
        self.tracing = tracing
        self.active = tracing_initially
        self.mpi_regions = mpi_regions
        self.jitter_model = jitter_model
        self.jitter_rng = jitter_rng
        self.record_cost = record_cost
        self.flush_cost = flush_cost
        self.capacity = capacity
        self.read_overhead = read_overhead
        self.send_overhead = send_overhead
        self.periodic_sync_every = periodic_sync_every
        self.periodic_sync_repeats = periodic_sync_repeats
        #: Slot bookkeeping of each fired periodic measurement, in
        #: firing order (same protocol spec shape as init/final).
        self.periodic_specs: list = []
        self._since_flush = 0
        self._coll_instance = 0
        self.n_reads = 0
        # Current segment under construction.
        self._deltas: list[float] = []
        self._read_pos: list[int] = []
        self._read_slot0 = 0
        self._send_pos: list[int] = []
        self._send_local: list[int] = []
        self.segments: list[_Segment] = []
        self.boundaries: list[tuple[int, int, int] | None] = []  # recv channel or None=end
        # Communication metadata (program order).
        self.sends: list[tuple[int, int, int]] = []  # (dst, tag, nbytes)
        self.recvs: list[tuple[int, int]] = []  # (src, tag)
        # Event columns (lists; frozen to arrays at finalize).
        self.ev_slot: list[int] = []
        self.ev_et: list[int] = []
        self.ev_a: list[int] = []
        self.ev_b: list[int] = []
        self.ev_c: list[int] = []
        self.ev_d: list[int] = []
        self.send_rows: list[tuple[int, int]] = []  # (event row, local send idx)
        self.recv_rows: list[tuple[int, int]] = []  # (event row, local recv idx)

    # -- low-level emission -------------------------------------------
    @property
    def traced(self) -> bool:
        return self.tracing and self.active

    def _read(self) -> int:
        slot = self.n_reads
        self.n_reads += 1
        self._read_pos.append(len(self._deltas))
        self._deltas.append(self.read_overhead)
        return slot

    def _record(self, slot, etype, a=0, b=0, c=0, d=0) -> int:
        row = len(self.ev_slot)
        self.ev_slot.append(slot)
        self.ev_et.append(int(etype))
        self.ev_a.append(a)
        self.ev_b.append(b)
        self.ev_c.append(c)
        self.ev_d.append(d)
        cost = self.record_cost
        self._since_flush += 1
        if self.capacity and self._since_flush >= self.capacity:
            self._since_flush = 0
            cost += self.flush_cost
        if cost > 0:
            self._deltas.append(cost)
        return row

    def _simple_event(self, etype, a=0, b=0, c=0, d=0) -> None:
        if self.traced:
            slot = self._read()
            self._record(slot, etype, a, b, c, d)

    def _close_segment(self, boundary) -> None:
        self.segments.append(_Segment(
            self._deltas, self._read_pos, self._read_slot0,
            self._send_pos, self._send_local,
        ))
        self.boundaries.append(boundary)
        self._deltas = []
        self._read_pos = []
        self._read_slot0 = self.n_reads
        self._send_pos = []
        self._send_local = []

    def finish(self) -> None:
        self._close_segment(None)

    # -- MpiContext surface -------------------------------------------
    def compute(self, duration: float) -> None:
        if self.jitter_model is not None and self.jitter_rng is not None:
            duration = self.jitter_model.perturb(duration, self.jitter_rng)
        if duration > 0:
            self._deltas.append(duration)

    def sleep(self, duration: float) -> None:
        if duration > 0:
            self._deltas.append(duration)

    def wtime(self) -> int:
        """Read the clock; returns the read's *slot index* for later lookup."""
        return self._read()

    def set_tracing(self, enabled: bool) -> None:
        if self.tracing:
            self.active = enabled

    def send_raw(self, dst: int, tag: int = 0, nbytes: int = 0, payload=None) -> None:
        self._send_pos.append(len(self._deltas))
        self._send_local.append(len(self.sends))
        self.sends.append((dst, tag, nbytes))
        self._deltas.append(self.send_overhead)

    def recv_raw(self, src: int, tag: int) -> None:
        if src < 0 or tag == -1:
            # ANY_SOURCE / ANY_TAG need dynamic mailbox scans (tags < -1
            # are collective/sync tags and remain fully static).
            raise BatchFallback("wildcard_recv", "wildcard receive needs the engine's matching")
        self.recvs.append((src, tag))
        self._close_segment((src, self.rank, tag))

    def send(self, dst: int, tag: int = 0, nbytes: int = 0, payload=None) -> None:
        if not self.traced:
            self.send_raw(dst, tag, nbytes)
            return
        if self.mpi_regions:
            self._simple_event(EventType.ENTER, _MPI_SEND_REGION)
        slot = self._read()
        local = len(self.sends)
        self.send_raw(dst, tag, nbytes)
        row = self._record(slot, EventType.SEND, dst, tag, nbytes, 0)
        self.send_rows.append((row, local))
        if self.mpi_regions:
            self._simple_event(EventType.EXIT, _MPI_SEND_REGION)

    def recv(self, src: int = -1, tag: int = -1) -> None:
        if not self.traced:
            self.recv_raw(src, tag)
            return
        if self.mpi_regions:
            self._simple_event(EventType.ENTER, _MPI_RECV_REGION)
        local = len(self.recvs)
        self.recv_raw(src, tag)
        slot = self._read()
        # a=src and b=tag are static (explicit receive); c (nbytes) and
        # d (match id) are patched from the paired send.
        row = self._record(slot, EventType.RECV, src, tag, 0, 0)
        self.recv_rows.append((row, local))
        if self.mpi_regions:
            self._simple_event(EventType.EXIT, _MPI_RECV_REGION)

    def enter_region(self, region_id: int) -> None:
        self._simple_event(EventType.ENTER, region_id)

    def exit_region(self, region_id: int) -> None:
        self._simple_event(EventType.EXIT, region_id)

    def sendrecv(self, dst, src, sendtag=0, recvtag=-1, nbytes=0, payload=None) -> None:
        self.send(dst, sendtag, nbytes)
        self.recv(src, recvtag)

    def split(self, color, key=None):
        raise BatchFallback("comm_split", "communicator splits need the engine")

    # -- collectives ---------------------------------------------------
    def _collective(self, op, root, algo, **kwargs) -> None:
        from repro.mpi.comm import periodic_sync_due

        instance = self._coll_instance
        self._coll_instance += 1
        traced = self.traced
        if traced:
            slot = self._read()
            self._record(slot, EventType.COLL_ENTER, int(op), root, self.size, instance)
        algo(self, instance, **kwargs)
        if periodic_sync_due(self.periodic_sync_every, instance):
            # Mirrors MpiContext._collective_impl: the piggybacked
            # Cristian protocol runs between the algorithm and the
            # COLL_EXIT record, as raw (untraced) tool traffic.
            self.periodic_specs.append(
                _plan_measurement(self, self.periodic_sync_repeats)
            )
        if traced:
            slot = self._read()
            self._record(slot, EventType.COLL_EXIT, int(op), root, self.size, instance)

    def barrier(self) -> None:
        self._collective(CollectiveOp.BARRIER, 0, _plan_barrier)

    def bcast(self, root=0, nbytes=0, payload=None) -> None:
        self._collective(CollectiveOp.BCAST, root, _plan_bcast,
                         root=root, nbytes=nbytes)

    def reduce(self, root=0, nbytes=0, value=None, op=None) -> None:
        self._collective(CollectiveOp.REDUCE, root, _plan_reduce,
                         root=root, nbytes=nbytes)

    def allreduce(self, nbytes=0, value=None, op=None) -> None:
        self._collective(CollectiveOp.ALLREDUCE, 0, _plan_allreduce,
                         nbytes=nbytes)

    def gather(self, root=0, nbytes=0, value=None) -> None:
        self._collective(CollectiveOp.GATHER, root, _plan_gather,
                         root=root, nbytes=nbytes)

    def scatter(self, root=0, nbytes=0, values=None) -> None:
        self._collective(CollectiveOp.SCATTER, root, _plan_scatter,
                         root=root, nbytes=nbytes)

    def allgather(self, nbytes=0, value=None) -> None:
        self._collective(CollectiveOp.ALLGATHER, 0, _plan_allgather,
                         nbytes=nbytes)

    def alltoall(self, nbytes=0, values=None) -> None:
        self._collective(CollectiveOp.ALLTOALL, 0, _plan_alltoall,
                         nbytes=nbytes)

    def scan(self, nbytes=0, value=None, op=None) -> None:
        self._collective(CollectiveOp.SCAN, 0, _plan_scan, nbytes=nbytes)

    def reduce_scatter(self, nbytes=0, values=None, op=None) -> None:
        self._collective(CollectiveOp.REDUCE_SCATTER, 0,
                         _plan_reduce_scatter, nbytes=nbytes)


# ----------------------------------------------------------------------
# Collective algorithms (structural ports of repro.mpi.collectives)
# ----------------------------------------------------------------------
def _check_root(root: int, n: int) -> None:
    if not 0 <= root < n:
        raise ConfigurationError(f"root {root} outside communicator of size {n}")


def _tag(instance: int) -> int:
    return -(instance + 2)


def _stage(plan: _RankPlan) -> None:
    plan.sleep(_STAGE_COST)


def _plan_barrier(plan, instance):
    n = plan.size
    tag = _tag(instance)
    dist = 1
    while dist < n:
        plan.send_raw((plan.rank + dist) % n, tag, 0)
        plan.recv_raw((plan.rank - dist) % n, tag)
        _stage(plan)
        dist <<= 1


def _plan_bcast(plan, instance, root=0, nbytes=0):
    n = plan.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (plan.rank - root) % n
    if rel != 0:
        plan.recv_raw(((rel & (rel - 1)) + root) % n, tag)
        _stage(plan)
    mask = 1
    while mask < n:
        if rel & mask:
            break
        child_rel = rel | mask
        if child_rel < n:
            plan.send_raw((child_rel + root) % n, tag, nbytes)
        mask <<= 1


def _plan_reduce(plan, instance, root=0, nbytes=0):
    n = plan.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (plan.rank - root) % n
    mask = 1
    while mask < n:
        if rel & mask:
            plan.send_raw(((rel & ~mask) + root) % n, tag, nbytes)
            return
        child_rel = rel | mask
        if child_rel < n:
            plan.recv_raw(((child_rel + root) % n), tag)
            _stage(plan)
        mask <<= 1


def _plan_allreduce(plan, instance, nbytes=0):
    n = plan.size
    tag = _tag(instance)
    p = 1
    while p * 2 <= n:
        p *= 2
    extras = n - p
    rank = plan.rank
    if rank >= p:
        plan.send_raw(rank - p, tag, nbytes)
        plan.recv_raw(rank - p, tag)
        return
    if rank < extras:
        plan.recv_raw(rank + p, tag)
        _stage(plan)
    mask = 1
    while mask < p:
        partner = rank ^ mask
        plan.send_raw(partner, tag, nbytes)
        plan.recv_raw(partner, tag)
        _stage(plan)
        mask <<= 1
    if rank < extras:
        plan.send_raw(rank + p, tag, nbytes)


def _plan_gather(plan, instance, root=0, nbytes=0):
    n = plan.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (plan.rank - root) % n
    count = 1  # len(collected): own entry plus received subtrees
    mask = 1
    while mask < n:
        if rel & mask:
            plan.send_raw(((rel & ~mask) + root) % n, tag, nbytes * count)
            return
        child_rel = rel | mask
        if child_rel < n:
            plan.recv_raw((child_rel + root) % n, tag)
            _stage(plan)
            count += min(mask, n - child_rel)  # child's binomial subtree size
        mask <<= 1


def _plan_scatter(plan, instance, root=0, nbytes=0):
    n = plan.size
    _check_root(root, n)
    tag = _tag(instance)
    rel = (plan.rank - root) % n
    if rel != 0:
        plan.recv_raw(((rel & (rel - 1)) + root) % n, tag)
        _stage(plan)
    mask = 1
    while mask < n:
        if rel & mask:
            break
        child_rel = rel | mask
        if child_rel < n:
            subtree = min(child_rel + mask, n) - child_rel
            plan.send_raw((child_rel + root) % n, tag, nbytes * max(subtree, 1))
        mask <<= 1


def _plan_allgather(plan, instance, nbytes=0):
    n = plan.size
    tag = _tag(instance)
    right = (plan.rank + 1) % n
    left = (plan.rank - 1) % n
    for _ in range(n - 1):
        plan.send_raw(right, tag, nbytes)
        plan.recv_raw(left, tag)
        _stage(plan)


def _plan_alltoall(plan, instance, nbytes=0):
    n = plan.size
    tag = _tag(instance)
    for shift in range(1, n):
        plan.send_raw((plan.rank + shift) % n, tag, nbytes)
        plan.recv_raw((plan.rank - shift) % n, tag)
        _stage(plan)


def _plan_scan(plan, instance, nbytes=0):
    n = plan.size
    tag = _tag(instance)
    if plan.rank > 0:
        plan.recv_raw(plan.rank - 1, tag)
        _stage(plan)
    if plan.rank + 1 < n:
        plan.send_raw(plan.rank + 1, tag, nbytes)


def _plan_reduce_scatter(plan, instance, nbytes=0):
    _plan_gather(plan, instance, root=0, nbytes=nbytes)
    _plan_scatter(plan, instance, root=0, nbytes=nbytes)


# ----------------------------------------------------------------------
# Offset-measurement expansion (repro.sync.offset.measurement_protocol)
# ----------------------------------------------------------------------
def _plan_measurement(plan: _RankPlan, repeats: int, master: int = 0):
    """Expand the Cristian protocol; returns slot bookkeeping.

    Master: ``{worker: [(t1_slot, t2_slot), ...]}``.  Worker: list of its
    ``t0`` slots, aligned with the master's exchange order.
    """
    if plan.rank == master:
        spec: dict[int, list[tuple[int, int]]] = {}
        for worker in range(plan.size):
            if worker == master:
                continue
            pairs = []
            for _ in range(repeats):
                t1 = plan.wtime()
                plan.send_raw(worker, SYNC_TAG, 8)
                plan.recv_raw(worker, SYNC_TAG)
                t2 = plan.wtime()
                pairs.append((t1, t2))
            spec[worker] = pairs
        return spec
    slots = []
    for _ in range(repeats):
        plan.recv_raw(master, SYNC_TAG)
        slots.append(plan.wtime())
        plan.send_raw(master, SYNC_TAG, 8)
    return slots


# ----------------------------------------------------------------------
# Compiled plan
# ----------------------------------------------------------------------
class _CompiledPlan:
    __slots__ = (
        "nranks", "rank_segments", "rank_boundaries", "rank_nreads",
        "channels", "n_sends", "send_src", "send_dst", "send_nbytes",
        "send_chan", "send_pair", "events_processed", "rank_events",
        "result_specs", "init_specs", "final_specs", "periodic_specs",
        "latency_cache",
    )


_PLAN_CACHE: "OrderedDict[tuple, _CompiledPlan]" = OrderedDict()
_PLAN_CACHE_MAX = 32


def _compile(world, plan_fn: Callable, key: tuple, *, tracing, tracing_initially,
             measure, sync_repeats) -> _CompiledPlan:
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _PLAN_CACHE.move_to_end(key)
        return cached

    nranks = world.pinning.nranks
    rank_plans: list[_RankPlan] = []
    init_specs = []
    final_specs = []
    result_specs = []
    for rank in range(nranks):
        rp = _RankPlan(
            rank, nranks,
            tracing=tracing, tracing_initially=tracing_initially,
            mpi_regions=world.mpi_regions,
            jitter_model=world.jitter,
            jitter_rng=world.fabric.generator("jitter", rank),
            record_cost=world.record_cost, flush_cost=world.flush_cost,
            capacity=world.trace_buffer_capacity,
            read_overhead=world.spec.read_overhead,
            send_overhead=world.send_overhead,
            periodic_sync_every=world.periodic_sync_every,
            periodic_sync_repeats=world.periodic_sync_repeats,
        )
        init_specs.append(_plan_measurement(rp, sync_repeats) if measure else None)
        result_specs.append(plan_fn(rp))
        final_specs.append(_plan_measurement(rp, sync_repeats) if measure else None)
        rp.finish()
        rank_plans.append(rp)

    plan = _CompiledPlan()
    plan.nranks = nranks
    plan.rank_nreads = [rp.n_reads for rp in rank_plans]
    plan.result_specs = result_specs
    plan.init_specs = init_specs
    plan.final_specs = final_specs
    # Group the piggybacked measurements per firing: collectives issue
    # in the same order on every rank (an MPI requirement the instance
    # counter relies on), so the k-th fired protocol on one rank pairs
    # with the k-th on every other.
    n_fired = {len(rp.periodic_specs) for rp in rank_plans}
    if len(n_fired) > 1:
        raise BatchFallback(
            "periodic_sync",
            "ranks disagree on the periodic measurement schedule",
        )
    plan.periodic_specs = [
        [rp.periodic_specs[k] for rp in rank_plans]
        for k in range(n_fired.pop())
    ]
    plan.latency_cache = {}

    # Global send serials and channel table.
    send_base = [0] * nranks
    total = 0
    for r, rp in enumerate(rank_plans):
        send_base[r] = total
        total += len(rp.sends)
    plan.n_sends = total
    # Segments carry rank-local send indices; globalize them so the
    # solver can push heap entries without per-rank translation.
    for r, rp in enumerate(rank_plans):
        base = send_base[r]
        if base:
            for seg in rp.segments:
                seg.send_serials = tuple(base + s for s in seg.send_serials)
    plan.rank_segments = [rp.segments for rp in rank_plans]
    send_src = np.empty(total, dtype=np.int64)
    send_dst = np.empty(total, dtype=np.int64)
    send_nbytes = np.empty(total, dtype=np.int64)
    send_chan = np.empty(total, dtype=np.int64)
    send_pair = np.empty(total, dtype=np.int64)
    channel_index: dict[tuple[int, int, int], int] = {}
    channel_sends: list[deque] = []
    for r, rp in enumerate(rank_plans):
        base = send_base[r]
        for i, (dst, tag, nbytes) in enumerate(rp.sends):
            serial = base + i
            send_src[serial] = r
            send_dst[serial] = dst
            send_nbytes[serial] = nbytes
            send_pair[serial] = r * nranks + dst
            chan_key = (r, dst, tag)
            ci = channel_index.get(chan_key)
            if ci is None:
                ci = len(channel_sends)
                channel_index[chan_key] = ci
                channel_sends.append(deque())
            channel_sends[ci].append(serial)
            send_chan[serial] = ci
    plan.send_src = send_src
    plan.send_dst = send_dst
    plan.send_nbytes = send_nbytes
    plan.send_chan = send_chan
    plan.send_pair = send_pair
    plan.channels = list(channel_index)

    # Rewrite the boundary segments of every rank to channel indices and
    # statically pair each receive with its FIFO send.
    fifo = [deque(q) for q in channel_sends]
    plan.rank_boundaries = []
    plan.rank_events = []
    events_processed = nranks  # one initial resume per rank
    for r, rp in enumerate(rank_plans):
        bounds = []
        matches = []  # matched global send serial per local recv index
        for boundary in rp.boundaries:
            if boundary is None:
                bounds.append(-1)
                continue
            ci = channel_index.get(boundary)
            if ci is None:
                raise BatchFallback(
                    "unmatched_recv",
                    f"rank {r} receives on channel {boundary} with no sender",
                )
            bounds.append(ci)
            q = fifo[ci]
            if not q:
                raise BatchFallback(
                    "missing_send",
                    f"rank {r} posts more receives than sends on {boundary}",
                )
            matches.append(q.popleft())
        plan.rank_boundaries.append(bounds)
        events_processed += len(rp.recvs) + sum(
            len(seg.deltas) for seg in rp.segments
        )

        ev = _RankEvents()
        ev.slot = np.array(rp.ev_slot, dtype=np.int64)
        ev.et = np.array(rp.ev_et, dtype=np.int8)
        ev.a = np.array(rp.ev_a, dtype=np.int64)
        ev.b = np.array(rp.ev_b, dtype=np.int64)
        ev.c = np.array(rp.ev_c, dtype=np.int64)
        ev.d_static = np.array(rp.ev_d, dtype=np.int64)
        ev.send_rows = np.array([row for row, _ in rp.send_rows], dtype=np.int64)
        ev.send_serials = np.array(
            [send_base[r] + local for _, local in rp.send_rows], dtype=np.int64
        )
        ev.recv_rows = np.array([row for row, _ in rp.recv_rows], dtype=np.int64)
        ev.recv_match_serials = np.array(
            [matches[local] for _, local in rp.recv_rows], dtype=np.int64
        )
        # Patch the static part of recv events from the matched send.
        if ev.recv_rows.size:
            ev.c[ev.recv_rows] = send_nbytes[ev.recv_match_serials]
        plan.rank_events.append(ev)
    # Per-event pops: one initial resume per rank, one resume per delta
    # (computes, clock reads, sender resumes), one completion resume per
    # receive, and one delivery pop per send.
    events_processed += total
    plan.events_processed = events_processed

    _PLAN_CACHE[key] = plan
    if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


# ----------------------------------------------------------------------
# Latency static parameters (vectorized noise consumption)
# ----------------------------------------------------------------------
def _latency_fingerprint(model) -> Optional[tuple]:
    if isinstance(model, HierarchicalLatency):
        return ("hier",) + tuple(
            (cls.value, s.base, s.bandwidth, s.jitter, s.jitter_shape)
            for cls, s in sorted(model._table.items(), key=lambda kv: kv[0].value)
        )
    if isinstance(model, TorusLatency):
        intra = _latency_fingerprint(model.intra_node)
        return ("torus", model.dims, model.inter_node_base, model.per_hop,
                model.bandwidth, model.jitter, model.jitter_shape, intra)
    return None


def _static_latency(plan: _CompiledPlan, model, locations) -> Optional[tuple]:
    """Per-send (floor, scale, shape) when the model decomposes statically.

    Returns ``(floor_list, scale_list, shape, n_noisy)`` or ``None`` when
    the model is unknown or uses mixed gamma shapes (the solver then
    falls back to per-send scalar ``model.sample`` calls — still
    bit-identical, just slower).
    """
    fp = _latency_fingerprint(model)
    if fp is None:
        return None
    loc_key = tuple((loc.node, loc.chip, loc.core) for loc in locations)
    cached = plan.latency_cache.get((loc_key, fp))
    if cached is not None:
        return cached
    n = plan.n_sends
    floors = [0.0] * n
    scales = [0.0] * n
    shapes = set()
    for serial in range(n):
        src = locations[plan.send_src[serial]]
        dst = locations[plan.send_dst[serial]]
        nbytes = int(plan.send_nbytes[serial])
        if isinstance(model, TorusLatency) and src.node != dst.node:
            floors[serial] = model.min_latency(src, dst, nbytes)
            jitter, shape = model.jitter, model.jitter_shape
        else:
            table = model.intra_node if isinstance(model, TorusLatency) else model
            sample = table.sample_for_class(distance_class(src, dst))
            floors[serial] = sample.floor(nbytes)
            jitter, shape = sample.jitter, sample.jitter_shape
        if jitter > 0.0:
            scales[serial] = jitter / shape
            shapes.add(shape)
    if len(shapes) > 1:
        result = None
    else:
        shape = shapes.pop() if shapes else 0.0
        n_noisy = sum(1 for s in scales if s > 0.0)
        result = (floors, scales, shape, n_noisy)
    plan.latency_cache[(loc_key, fp)] = result
    return result


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------
def _solve(plan: _CompiledPlan, world, locations, rng):
    """Walk all rank timelines; returns per-rank read times and solver state."""
    nranks = plan.nranks
    recv_ovh = world.recv_overhead
    model = world.preset.latency
    static = _static_latency(plan, model, locations)
    if static is not None:
        floors, scales, shape, n_noisy = static
        noise = rng.standard_gamma(shape, size=n_noisy).tolist() if n_noisy else []
    ni = 0
    # Congestion state, mirrored from repro.sim.engine.Transport: the
    # send heap already pops in strictly increasing true time — the
    # exact order in which the engine executes sends — so the engine's
    # in-flight counter can be replayed from an arrival min-heap.
    alpha = world.congestion_alpha
    congested = alpha > 0.0
    capacity = max(int(world.congestion_capacity), 1)
    in_flight = 0
    pending: list[float] = []  # scheduled deliveries not yet processed

    read_times = [np.empty(n, dtype=np.float64) for n in plan.rank_nreads]
    seg_idx = [0] * nranks
    parked_t = [0.0] * nranks
    done_t = [None] * nranks
    n_channels = len(plan.channels)
    queues: list[deque] = [deque() for _ in range(n_channels)]
    waiter = [-1] * n_channels
    heap: list[tuple[float, int]] = []
    match_ids = [0] * plan.n_sends
    send_chan = plan.send_chan.tolist()
    send_pair = plan.send_pair.tolist()
    last_delivery = [-math.inf] * (nranks * nranks)
    max_arrival = -math.inf

    def advance(r: int, t: float, i: int) -> None:
        segs = plan.rank_segments[r]
        bounds = plan.rank_boundaries[r]
        rt = read_times[r]
        while True:
            seg = segs[i]
            deltas = seg.deltas
            m = len(deltas)
            if m:
                if m <= _SMALL_SEGMENT:
                    rp = seg.read_pos
                    sp = seg.send_pos
                    ser = seg.send_serials
                    ri = si = 0
                    nr = len(rp)
                    ns = len(sp)
                    slot = seg.read_slot0
                    for j in range(m):
                        if ri < nr and rp[ri] == j:
                            rt[slot + ri] = t
                            ri += 1
                        elif si < ns and sp[si] == j:
                            heappush(heap, (t, ser[si]))
                            si += 1
                        t += deltas[j]
                else:
                    buf = np.empty(m + 1, dtype=np.float64)
                    buf[0] = t
                    buf[1:] = seg.deltas_arr
                    cum = np.cumsum(buf)
                    if seg.read_pos_arr.size:
                        slot = seg.read_slot0
                        rt[slot:slot + seg.read_pos_arr.size] = cum[seg.read_pos_arr]
                    for p, s in zip(seg.send_pos, seg.send_serials):
                        heappush(heap, (float(cum[p]), s))
                    t = float(cum[m])
            ci = bounds[i]
            if ci < 0:
                done_t[r] = t
                seg_idx[r] = i
                return
            q = queues[ci]
            if q:
                arrival = q.popleft()
                if arrival > t:
                    t = arrival
                t += recv_ovh
                i += 1
                continue
            waiter[ci] = r
            parked_t[r] = t
            seg_idx[r] = i
            return

    for r in range(nranks):
        advance(r, 0.0, 0)

    next_mid = 0
    prev = -math.inf
    while heap:
        t_send, serial = heappop(heap)
        if t_send <= prev:
            # Two sends at exactly the same true time: the engine breaks
            # the tie on scheduling order, which the solver cannot see.
            raise BatchFallback(
                "simultaneous_sends", "simultaneous sends; tie order is engine-defined"
            )
        prev = t_send
        if congested:
            # The engine decrements in_flight when the delivery event is
            # processed.  A delivery strictly before this send always
            # pops first (the inline resume fast path requires
            # ``at < queue[0][0]``, so a queued delivery blocks it); an
            # *exact* tie breaks on heap insertion order, which the
            # solver cannot reconstruct.
            while pending and pending[0] < t_send:
                heappop(pending)
                in_flight -= 1
            if pending and pending[0] == t_send:
                raise BatchFallback(
                    "congestion_tie",
                    "send coincides with a delivery; load is tie-order-defined",
                )
        # Local send serial -> global: segments store per-rank local
        # indices; translate lazily via the rank base is avoided by
        # storing globals at compile time — `serial` is already global.
        if static is not None:
            scale = scales[serial]
            if scale > 0.0:
                delay = floors[serial] + noise[ni] * scale
                ni += 1
            else:
                delay = floors[serial]
        else:
            delay = model.sample(
                locations[plan.send_src[serial]],
                locations[plan.send_dst[serial]],
                int(plan.send_nbytes[serial]),
                rng,
            )
        if congested:
            if in_flight > 0:
                # Transport.delivery_delay's scaling, with the same
                # floor: the static decomposition's per-send floor *is*
                # model.min_latency for every supported model.
                lat_floor = (
                    floors[serial] if static is not None
                    else model.min_latency(
                        locations[plan.send_src[serial]],
                        locations[plan.send_dst[serial]],
                        int(plan.send_nbytes[serial]),
                    )
                )
                delay = congested_delay(delay, lat_floor, alpha, in_flight, capacity)
            in_flight += 1  # this message, counted after its own delay
        arrival = t_send + delay
        pi = send_pair[serial]
        floor = last_delivery[pi]
        if arrival <= floor:
            arrival = math.nextafter(floor, math.inf)
        last_delivery[pi] = arrival
        if congested:
            heappush(pending, arrival)
        match_ids[serial] = next_mid
        next_mid += 1
        if arrival > max_arrival:
            max_arrival = arrival
        ci = send_chan[serial]
        w = waiter[ci]
        if w >= 0:
            waiter[ci] = -1
            pt = parked_t[w]
            resume = arrival if arrival > pt else pt
            advance(w, resume + recv_ovh, seg_idx[w] + 1)
        else:
            queues[ci].append(arrival)

    blocked = [r for r in range(nranks) if done_t[r] is None]
    if blocked:
        raise BatchFallback(
            "deadlock", f"ranks {blocked} blocked; engine reports the deadlock"
        )
    duration = max(done_t)
    if max_arrival > duration:
        duration = max_arrival
    return read_times, match_ids, duration


# ----------------------------------------------------------------------
# Deferred clock evaluation
# ----------------------------------------------------------------------
def _evaluate_clocks(read_times, clocks):
    """One ``read_array`` per physical clock, in engine RNG order.

    Raises :class:`BatchFallback` — before consuming any clock RNG or
    touching monotonicity state — if reads of *different* ranks sharing
    a jittered clock coincide in true time (the engine breaks such ties
    on scheduling order).  Ties between reads of the *same* rank are
    fine: per-rank read times are nondecreasing in program order, the
    stable argsort keeps equal-time runs in concatenation (= rank,
    then program) order, and the engine evaluates a rank's reads in
    program order too — so the RNG pairing is unambiguous.  Single-rank
    groups (private clocks — the common case) skip the concatenate /
    argsort / tie scan entirely.
    """
    groups: dict[int, list[int]] = {}
    clock_of: dict[int, Any] = {}
    for r, clock in enumerate(clocks):
        groups.setdefault(id(clock), []).append(r)
        clock_of[id(clock)] = clock

    prepared = []
    for cid, ranks in groups.items():
        clock = clock_of[cid]
        if len(ranks) == 1:
            times = read_times[ranks[0]]
            order = None
        else:
            times = np.concatenate([read_times[r] for r in ranks])
            order = np.argsort(times, kind="stable")
            times = times[order]
            if clock.read_jitter > 0.0 and times.size > 1:
                tied = np.diff(times) == 0.0
                if np.any(tied):
                    # Only *cross-rank* ties are ambiguous.  Stable sort
                    # keeps an equal-time run grouped by owner, so one
                    # adjacent owner-change check over the tied pairs
                    # decides it.
                    sizes = [read_times[r].size for r in ranks]
                    owner = np.repeat(np.arange(len(ranks)), sizes)[order]
                    if np.any(tied & (owner[1:] != owner[:-1])):
                        raise BatchFallback(
                            "shared_clock_tie",
                            "simultaneous cross-rank reads on a shared jittered clock",
                        )
        prepared.append((clock, ranks, times, order))

    read_values = [None] * len(clocks)
    for clock, ranks, times, order in prepared:
        if times.size == 0:
            for r in ranks:
                read_values[r] = np.empty(0, dtype=np.float64)
            continue
        values = clock.read_array(times, jitter=True)
        if clock._last != -math.inf:
            values = np.maximum(values, clock._last)
        clock._last = float(values[-1])
        if order is None:
            read_values[ranks[0]] = values
        else:
            unsorted = np.empty_like(values)
            unsorted[order] = values
            offset = 0
            for r in ranks:
                n = read_times[r].size
                read_values[r] = unsorted[offset:offset + n]
                offset += n
    return read_values


# ----------------------------------------------------------------------
# Result reconstruction
# ----------------------------------------------------------------------
def _build_result(spec, values: np.ndarray):
    kind = spec[0]
    if kind == "static":
        return spec[1]
    if kind == "timed":
        _, t1_slots, t2_slots, halve = spec
        v1 = values[np.asarray(t1_slots, dtype=np.int64)]
        v2 = values[np.asarray(t2_slots, dtype=np.int64)]
        return (v2 - v1) / 2.0 if halve else v2 - v1
    raise BatchFallback("result_spec", f"unknown result spec {kind!r}")


def _build_offsets(master_spec, worker_specs, read_values, repeats, master=0):
    if master_spec is None:
        return None
    results: dict[int, OffsetMeasurement] = {}
    vm = read_values[master]
    for worker, pairs in master_spec.items():
        vw = read_values[worker]
        t0_slots = worker_specs[worker]
        best = None
        for (s1, s2), s0 in zip(pairs, t0_slots):
            t1 = float(vm[s1])
            t2 = float(vm[s2])
            t0 = float(vw[s0])
            rtt = t2 - t1
            if best is None or rtt < best.rtt:
                best = OffsetMeasurement(
                    worker=worker, worker_time=t0,
                    offset=cristian_offset(t1, t0, t2),
                    rtt=rtt, repeats=repeats,
                )
        results[worker] = best
    return results


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_batch(world, worker, *, tracing=True, measure_offsets=True,
              sync_repeats=10, tracing_initially=True, until=None):
    """Execute ``worker`` through the batched fast path.

    Returns the same :class:`repro.mpi.runtime.RunResult` the reference
    engine would produce, bit for bit, or raises :class:`BatchFallback`
    when identity cannot be guaranteed.
    """
    from repro.mpi.runtime import RunResult

    if until is not None:
        raise BatchFallback("until", "run horizons need the event loop")
    plan_fn = getattr(worker, "batch_plan", None)
    batch_key = getattr(worker, "batch_key", None)
    if plan_fn is None or batch_key is None:
        raise BatchFallback("no_plan", "worker does not publish a batch plan")

    key = (
        batch_key, world.pinning.nranks, bool(tracing), bool(tracing_initially),
        bool(measure_offsets), int(sync_repeats), world.mpi_regions,
        world.record_cost, world.flush_cost, world.trace_buffer_capacity,
        world.send_overhead, world.recv_overhead, world.spec.read_overhead,
        world.jitter, world.fabric.seed,
        world.periodic_sync_every, world.periodic_sync_repeats,
    )
    plan = _compile(
        world, plan_fn, key,
        tracing=tracing, tracing_initially=tracing_initially,
        measure=measure_offsets, sync_repeats=sync_repeats,
    )

    nranks = plan.nranks
    locations = [world.pinning[r] for r in range(nranks)]
    clocks = [world.ensemble.clock_for(loc) for loc in locations]
    rng = world.fabric.generator("network")

    read_times, match_ids, duration = _solve(plan, world, locations, rng)
    read_values = _evaluate_clocks(read_times, clocks)
    match_arr = np.array(match_ids, dtype=np.int64)

    results = {
        r: _build_result(plan.result_specs[r], read_values[r])
        for r in range(nranks)
    }
    init_offsets = final_offsets = None
    if measure_offsets:
        init_offsets = _build_offsets(
            plan.init_specs[0], plan.init_specs, read_values, sync_repeats
        )
        final_offsets = _build_offsets(
            plan.final_specs[0], plan.final_specs, read_values, sync_repeats
        )
    periodic_offsets = [
        _build_offsets(specs[0], specs, read_values, world.periodic_sync_repeats)
        for specs in plan.periodic_specs
    ]

    trace = None
    if tracing:
        logs = {}
        for r in range(nranks):
            ev = plan.rank_events[r]
            ts = read_values[r][ev.slot]
            d = ev.d_static.copy()
            if ev.send_rows.size:
                d[ev.send_rows] = match_arr[ev.send_serials]
            if ev.recv_rows.size:
                d[ev.recv_rows] = match_arr[ev.recv_match_serials]
            logs[r] = EventLog.from_arrays(ts, ev.et, ev.a, ev.b, ev.c, d)
        meta = {
            "machine": world.preset.machine.name,
            "timer": world.spec.name,
            "locations": [(loc.node, loc.chip, loc.core) for loc in locations],
            "duration": duration,
        }
        if init_offsets is not None:
            meta["init_offsets"] = {
                str(r): (m.worker_time, m.offset) for r, m in init_offsets.items()
            }
        if final_offsets is not None:
            meta["final_offsets"] = {
                str(r): (m.worker_time, m.offset) for r, m in final_offsets.items()
            }
        trace = Trace(logs, meta=meta)

    rng_states = {
        "network": rng.bit_generator.state,
        "clocks": {
            r: (
                clocks[r].rng.bit_generator.state
                if clocks[r].rng is not None else None,
                clocks[r]._last,
            )
            for r in range(nranks)
        },
    }
    return RunResult(
        trace=trace,
        init_offsets=init_offsets,
        final_offsets=final_offsets,
        results=results,
        duration=duration,
        events_processed=plan.events_processed,
        periodic_offsets=periodic_offsets,
        engine="batch",
        rng_states=rng_states,
    )
