"""Error estimation: offset lines recovered from message timestamps.

Section V: *"Error estimation allows the retroactive correction of clock
values in event traces after assessing synchronization errors among all
distributed clock pairs.  First, difference functions among clock values
are calculated from the differences between clock values of receive
events and clock values of send events (plus the minimum message
latency).  Second, a medial smoothing function can be found ... because
for each clock pair two difference functions exist."*

For messages p -> q the observed difference is::

    d_pq(t) = recv_ts_q - send_ts_p = l_pq + o_qp(t) ,  l_pq >= l_min

so ``d_pq - l_min`` upper-bounds the q-minus-p offset, and the reverse
direction lower-bounds it.  Three estimators of the medial line
``o(t) = a + b t`` are implemented:

* ``"regression"`` — Duda et al.'s regression variant: least-squares
  lines through both directions' difference points, averaged;
* ``"hull"`` — Duda's convex-hull variant, solved exactly as a linear
  program (maximize the margin ``m`` such that the line stays ``m``
  inside both constraint families) via :func:`scipy.optimize.linprog`;
* ``"minmax"`` — Hofmann's minimum/maximum simplification: anchor the
  line to the smallest difference seen in each half of the time range.

:func:`synchronize_by_spanning_tree` composes pairwise estimates along a
maximum-message-count spanning tree (Jezequel's adaptation to arbitrary
topologies, built with networkx) to produce a
:class:`~repro.sync.interpolation.ClockCorrection` onto a master rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import networkx as nx
import numpy as np
from scipy.optimize import linprog
from scipy.stats import linregress

from repro.errors import SynchronizationError
from repro.sync.interpolation import ClockCorrection
from repro.sync.violations import LminSpec, resolve_lmin
from repro.tracing.trace import MessageTable, Trace

__all__ = ["OffsetLine", "estimate_pairwise_offsets", "synchronize_by_spanning_tree"]

Method = Literal["regression", "hull", "minmax"]


@dataclass(frozen=True)
class OffsetLine:
    """Estimated offset of clock q minus clock p: ``o(t) = a + b t``.

    ``t`` is measured on p's clock (the difference between using p's or
    q's time axis is second order in the ppm-scale drift).
    """

    p: int
    q: int
    a: float
    b: float
    method: str
    support: int  # messages used

    def at(self, t: float | np.ndarray) -> float | np.ndarray:
        return self.a + self.b * np.asarray(t, dtype=np.float64) if np.ndim(t) else self.a + self.b * float(t)

    def negated(self) -> "OffsetLine":
        """The same estimate seen from the other side (p minus q)."""
        return OffsetLine(self.q, self.p, -self.a, -self.b, self.method, self.support)


def _direction_points(
    messages: MessageTable, p: int, q: int, lmin: LminSpec
) -> tuple[np.ndarray, np.ndarray]:
    """(send_ts, difference - l_min) for all messages p -> q."""
    mask = (messages.src == p) & (messages.dst == q)
    if not np.any(mask):
        return np.empty(0), np.empty(0)
    send = messages.send_ts[mask]
    recv = messages.recv_ts[mask]
    floors = resolve_lmin(lmin, messages.src[mask], messages.dst[mask])
    return send, recv - send - floors


def estimate_pairwise_offsets(
    messages: MessageTable,
    pair: tuple[int, int],
    lmin: LminSpec = 0.0,
    method: Method = "regression",
) -> OffsetLine:
    """Estimate the offset line of clock q minus clock p from messages.

    Requires traffic in *both* directions between the pair (the medial
    function needs both difference functions); raises
    :class:`SynchronizationError` otherwise.
    """
    p, q = pair
    t_fwd, d_fwd = _direction_points(messages, p, q, lmin)  # bounds o_qp from above
    t_rev, d_rev = _direction_points(messages, q, p, lmin)  # bounds o_qp from below
    if t_fwd.size == 0 or t_rev.size == 0:
        raise SynchronizationError(
            f"pair ({p}, {q}) lacks messages in one direction "
            f"({t_fwd.size} forward, {t_rev.size} reverse)"
        )
    support = int(t_fwd.size + t_rev.size)

    if method == "regression":
        a, b = _regression_line(t_fwd, d_fwd, t_rev, d_rev)
    elif method == "hull":
        a, b = _hull_line(t_fwd, d_fwd, t_rev, d_rev)
    elif method == "minmax":
        a, b = _minmax_line(t_fwd, d_fwd, t_rev, d_rev)
    else:
        raise SynchronizationError(f"unknown estimation method {method!r}")
    return OffsetLine(p=p, q=q, a=a, b=b, method=method, support=support)


def _fit_line(t: np.ndarray, d: np.ndarray) -> tuple[float, float]:
    if t.size == 1:
        return float(d[0]), 0.0
    if np.allclose(t, t[0]):
        return float(d.mean()), 0.0
    res = linregress(t, d)
    return float(res.intercept), float(res.slope)


def _regression_line(t_fwd, d_fwd, t_rev, d_rev) -> tuple[float, float]:
    # o_qp(t) <= d_fwd(t) and o_qp(t) >= -d_rev(t); the medial line is the
    # average of the least-squares fits to the upper and lower families.
    a_up, b_up = _fit_line(t_fwd, d_fwd)
    a_dn, b_dn = _fit_line(t_rev, -d_rev)
    return (a_up + a_dn) / 2.0, (b_up + b_dn) / 2.0


def _hull_line(t_fwd, d_fwd, t_rev, d_rev) -> tuple[float, float]:
    """Max-margin line inside both constraint families (exact LP).

    maximize m  s.t.  a + b t_i + m <= d_fwd_i     (stay below upper pts)
                      a + b t_j - m >= -d_rev_j    (stay above lower pts)

    Variables x = (a, b, m); linprog minimizes c @ x with A_ub x <= b_ub.
    """
    # Normalize the time axis for LP conditioning.
    t0 = min(t_fwd.min(), t_rev.min())
    scale = max(max(t_fwd.max(), t_rev.max()) - t0, 1.0)
    tf = (t_fwd - t0) / scale
    tr = (t_rev - t0) / scale

    n_up, n_dn = tf.size, tr.size
    a_ub = np.zeros((n_up + n_dn, 3))
    b_ub = np.zeros(n_up + n_dn)
    a_ub[:n_up, 0] = 1.0
    a_ub[:n_up, 1] = tf
    a_ub[:n_up, 2] = 1.0
    b_ub[:n_up] = d_fwd
    a_ub[n_up:, 0] = -1.0
    a_ub[n_up:, 1] = -tr
    a_ub[n_up:, 2] = 1.0
    b_ub[n_up:] = d_rev
    result = linprog(
        c=[0.0, 0.0, -1.0],
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None), (None, None), (None, None)],
        method="highs",
    )
    if not result.success:
        # Inconsistent bounds (possible with heavy noise): fall back to
        # the regression medial line.
        return _regression_line(t_fwd, d_fwd, t_rev, d_rev)
    a_scaled, b_scaled, _ = result.x
    b = b_scaled / scale
    a = a_scaled - b * t0
    return float(a), float(b)


def _minmax_line(t_fwd, d_fwd, t_rev, d_rev) -> tuple[float, float]:
    """Hofmann's min/max strategy: anchor at the tightest difference in
    the early and late halves of the observation span."""
    t_all = np.concatenate([t_fwd, t_rev])
    mid = (t_all.min() + t_all.max()) / 2.0

    def anchor(lo: bool) -> tuple[float, float]:
        sel_f = t_fwd <= mid if lo else t_fwd > mid
        sel_r = t_rev <= mid if lo else t_rev > mid
        candidates = []
        if np.any(sel_f):
            i = np.argmin(d_fwd[sel_f])
            candidates.append((t_fwd[sel_f][i], d_fwd[sel_f][i]))
        if np.any(sel_r):
            i = np.argmin(d_rev[sel_r])
            candidates.append((t_rev[sel_r][i], -d_rev[sel_r][i]))
        if not candidates:
            return np.nan, np.nan
        # Midpoint of the tightest upper and lower estimates available.
        ts = np.mean([c[0] for c in candidates])
        os_ = np.mean([c[1] for c in candidates])
        return float(ts), float(os_)

    t1, o1 = anchor(True)
    t2, o2 = anchor(False)
    if np.isnan(t1) or np.isnan(t2) or t2 <= t1:
        return _regression_line(t_fwd, d_fwd, t_rev, d_rev)
    b = (o2 - o1) / (t2 - t1)
    a = o1 - b * t1
    return a, b


def synchronize_by_spanning_tree(
    trace: Trace,
    lmin: LminSpec = 0.0,
    master: int = 0,
    method: Method = "regression",
    include_collectives: bool = False,
    windows: int = 1,
) -> ClockCorrection:
    """Jezequel-style whole-job synchronization from message estimates.

    Builds a graph over ranks weighted by message support, extracts a
    maximum-support spanning tree (networkx minimum tree on ``1/count``),
    composes offset lines along the tree paths to ``master``, and
    returns the equivalent :class:`ClockCorrection` (two knots per rank
    spanning the trace's time range).

    ``windows > 1`` fits independent lines over that many consecutive
    time segments and stitches them into a piecewise correction — the
    estimation-side analogue of piecewise interpolation, useful when the
    clocks bend (NTP slews) within the run.  Each window needs
    bidirectional traffic on enough pairs; windows that fail fall back
    to the whole-run estimate for continuity.
    """
    if windows > 1:
        return _windowed_spanning_tree(
            trace, lmin, master, method, include_collectives, windows
        )
    messages = trace.messages(strict=False)
    if include_collectives:
        from repro.sync.collectives_map import logical_messages

        logical = logical_messages(trace.collectives())
        messages = _concat_tables(messages, logical)
    if len(messages) == 0:
        raise SynchronizationError("trace has no messages to estimate offsets from")

    graph = nx.Graph()
    graph.add_nodes_from(trace.ranks)
    pairs: dict[tuple[int, int], int] = {}
    for s, d in zip(messages.src, messages.dst):
        key = (min(int(s), int(d)), max(int(s), int(d)))
        pairs[key] = pairs.get(key, 0) + 1
    for (p, q), count in pairs.items():
        fwd = int(np.count_nonzero((messages.src == p) & (messages.dst == q)))
        rev = count - fwd
        if fwd > 0 and rev > 0:
            graph.add_edge(p, q, weight=1.0 / count, support=count)
    if not nx.is_connected(graph):
        raise SynchronizationError(
            "message graph is not connected (with bidirectional traffic); "
            "cannot synchronize all ranks"
        )
    tree = nx.minimum_spanning_tree(graph, weight="weight")

    # Compose lines from master outward (BFS over the tree).
    lines: dict[int, OffsetLine] = {
        master: OffsetLine(master, master, 0.0, 0.0, method, 0)
    }
    for parent, child in nx.bfs_edges(tree, master):
        edge_line = estimate_pairwise_offsets(messages, (parent, child), lmin, method)
        parent_line = lines[parent]
        # offset(master - child) = offset(master - parent) + offset(parent - child)
        # edge_line estimates (child - parent); negate it.
        lines[child] = OffsetLine(
            p=master,
            q=child,
            a=parent_line.a - edge_line.a,
            b=parent_line.b - edge_line.b,
            method=method,
            support=edge_line.support,
        )

    t_lo = float(min(np.min(trace.logs[r].timestamps) for r in trace.ranks if len(trace.logs[r])))
    t_hi = float(max(np.max(trace.logs[r].timestamps) for r in trace.ranks if len(trace.logs[r])))
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    knots = {}
    for rank, line in lines.items():
        if rank == master:
            continue
        knots[rank] = (
            np.array([t_lo, t_hi]),
            np.array([line.a + line.b * t_lo, line.a + line.b * t_hi]),
        )
    return ClockCorrection(knots, master=master)


def _windowed_spanning_tree(
    trace: Trace,
    lmin: LminSpec,
    master: int,
    method: Method,
    include_collectives: bool,
    windows: int,
) -> ClockCorrection:
    whole = synchronize_by_spanning_tree(
        trace, lmin, master, method, include_collectives, windows=1
    )
    t_lo = float(min(np.min(trace.logs[r].timestamps) for r in trace.ranks if len(trace.logs[r])))
    t_hi = float(max(np.max(trace.logs[r].timestamps) for r in trace.ranks if len(trace.logs[r])))
    edges = np.linspace(t_lo, t_hi, windows + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0

    knots: dict[int, tuple[list[float], list[float]]] = {
        rank: ([], []) for rank in trace.ranks if rank != master
    }
    for lo, hi, center in zip(edges[:-1], edges[1:], centers):
        window_trace = trace.slice(float(lo), float(np.nextafter(hi, np.inf)))
        try:
            corr = synchronize_by_spanning_tree(
                window_trace, lmin, master, method, include_collectives, windows=1
            )
        except SynchronizationError:
            corr = whole  # sparse window: keep the global line here
        for rank in knots:
            knots[rank][0].append(float(center))
            knots[rank][1].append(float(corr.offset_model(rank, float(center))))
    return ClockCorrection(
        {rank: (np.asarray(w), np.asarray(o)) for rank, (w, o) in knots.items()},
        master=master,
    )


def _concat_tables(a: MessageTable, b: MessageTable) -> MessageTable:
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    return MessageTable(
        np.concatenate([a.src, b.src]),
        np.concatenate([a.dst, b.dst]),
        np.concatenate([a.tag, b.tag]),
        np.concatenate([a.nbytes, b.nbytes]),
        np.concatenate([a.send_ts, b.send_ts]),
        np.concatenate([a.recv_ts, b.recv_ts]),
        np.concatenate([a.send_idx, b.send_idx]),
        np.concatenate([a.recv_idx, b.recv_idx]),
    )
