"""Timestamp synchronization: measurement, correction, and verification.

This package implements the paper's Section III/V toolchain:

* :mod:`repro.sync.offset` — Cristian's probabilistic remote clock
  reading (Eq. 2) and the master/worker measurement protocol;
* :mod:`repro.sync.interpolation` — offset alignment and linear offset
  interpolation (Eq. 3), plus the piecewise variant;
* :mod:`repro.sync.violations` — clock-condition scans over p2p
  messages, collectives (via logical messages), and POMP regions;
* :mod:`repro.sync.lamport` / :mod:`repro.sync.vector` — logical clocks;
* :mod:`repro.sync.clc` — the controlled logical clock with forward and
  backward amortization;
* :mod:`repro.sync.collectives_map` — collective -> logical p2p mapping;
* :mod:`repro.sync.error_estimation` — Duda/Hofmann/Jezequel offset-line
  estimation from message timestamps;
* :mod:`repro.sync.replay` — replay-ordered (parallelizable) CLC;
* :mod:`repro.sync.schedule` — compiled happened-before schedules and
  the array kernels behind CLC, Lamport, vector, and replay;
* :mod:`repro.sync.streaming` — out-of-core CLC / scan / interpolation
  over sharded trace directories, bit-identical to the in-memory
  kernels with the peak resident set bounded by one shard per rank.
"""

from repro.sync.offset import OffsetMeasurement, cristian_offset, measurement_protocol
from repro.sync.interpolation import (
    ClockCorrection,
    align_offsets,
    linear_interpolation,
    piecewise_interpolation,
)
from repro.sync.violations import (
    ViolationReport,
    scan_collectives,
    scan_messages,
    scan_pomp,
    scan_trace,
)
from repro.sync.clc import (
    ClcResult,
    ControlledLogicalClock,
    naive_shift_correct,
    naive_shift_correct_reference,
)
from repro.sync.lamport import lamport_clocks, lamport_clocks_reference
from repro.sync.schedule import CompiledSchedule
from repro.sync.vector import happened_before_graph, vector_clocks, vector_clocks_reference
from repro.sync.collectives_map import logical_messages
from repro.sync.error_estimation import (
    estimate_pairwise_offsets,
    synchronize_by_spanning_tree,
)
from repro.sync.exchange import exchange_correction, offsets_from_exchanges
from repro.sync.replay import ReplayResult, replay_correct
from repro.sync.streaming import (
    streaming_apply_correction,
    streaming_clc_correct,
    streaming_scan_trace,
)

__all__ = [
    "OffsetMeasurement",
    "cristian_offset",
    "measurement_protocol",
    "ClockCorrection",
    "align_offsets",
    "linear_interpolation",
    "piecewise_interpolation",
    "ViolationReport",
    "scan_messages",
    "scan_collectives",
    "scan_pomp",
    "scan_trace",
    "ControlledLogicalClock",
    "ClcResult",
    "CompiledSchedule",
    "naive_shift_correct",
    "naive_shift_correct_reference",
    "replay_correct",
    "ReplayResult",
    "exchange_correction",
    "offsets_from_exchanges",
    "lamport_clocks",
    "lamport_clocks_reference",
    "vector_clocks",
    "vector_clocks_reference",
    "happened_before_graph",
    "logical_messages",
    "estimate_pairwise_offsets",
    "synchronize_by_spanning_tree",
    "streaming_apply_correction",
    "streaming_clc_correct",
    "streaming_scan_trace",
]
