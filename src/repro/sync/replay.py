"""Replay-based (parallelizable) application of the CLC.

Section V cites [31]: *"the algorithm has been efficiently parallelized
so that it can be applied to traces from large numbers of processes"* —
the trick is that the CLC's forward pass has exactly the communication
structure of the original application, so it can be *replayed*: every
rank corrects its own events in order, and whenever it hits a receive
(or collective exit) it obtains the corrected send time from the
producing rank the same way the original message travelled.

:func:`replay_correct` reports that structure: the corrected trace is
computed with the shared array kernels of :mod:`repro.sync.schedule`
(identical to :class:`repro.sync.clc.ControlledLogicalClock` — the CLC
forward pass is deterministic dataflow, so every valid execution order
produces the same values), while the bulk-synchronous round loop of
:func:`repro.sync.schedule.bsp_rounds` simulates the parallel
decomposition: per round, every rank advances through its log until it
blocks on a not-yet-delivered remote value.  The value of this module is
(a) documenting the parallel decomposition and (b) reporting its round
count — the quantity that bounds wall-clock time on a real parallel
replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sync.clc import ClcResult, ControlledLogicalClock
from repro.sync.schedule import bsp_rounds
from repro.sync.violations import LminSpec
from repro.telemetry import ensure_telemetry
from repro.tracing.trace import Trace

__all__ = ["ReplayResult", "replay_correct"]


@dataclass
class ReplayResult:
    """A :class:`ClcResult` plus replay statistics."""

    clc: ClcResult
    rounds: int  # bulk-synchronous rounds needed
    max_queue: int  # peak number of values in flight between rounds


def replay_correct(
    trace: Trace,
    lmin: LminSpec = 0.0,
    gamma: float = 0.99,
    amortization_window: float | None = None,
    include_collectives: bool = True,
    telemetry=None,
) -> ReplayResult:
    """Forward-pass CLC organized as a parallel replay; see module docs."""
    tele = ensure_telemetry(telemetry)
    corrector = ControlledLogicalClock(
        gamma=gamma,
        amortization_window=amortization_window,
        include_collectives=include_collectives,
        telemetry=tele,
    )
    with tele.span("sync.replay.schedule"):
        schedule = trace.compiled_schedule(include_collectives)
    with tele.span("sync.replay.rounds"):
        rounds, max_queue = bsp_rounds(schedule)
    if tele.enabled:
        tele.gauge("sync.replay.rounds", rounds)
        tele.gauge_max("sync.replay.max_queue", max_queue)
    clc_result = corrector.correct_with_schedule(trace, schedule, lmin)
    clc_result.trace.meta["clc"]["replay"] = True
    return ReplayResult(clc=clc_result, rounds=rounds, max_queue=max_queue)
