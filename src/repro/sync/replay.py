"""Replay-based (parallelizable) application of the CLC.

Section V cites [31]: *"the algorithm has been efficiently parallelized
so that it can be applied to traces from large numbers of processes"* —
the trick is that the CLC's forward pass has exactly the communication
structure of the original application, so it can be *replayed*: every
rank corrects its own events in order, and whenever it hits a receive
(or collective exit) it obtains the corrected send time from the
producing rank the same way the original message travelled.

:func:`replay_correct` implements that structure as a bulk-synchronous
round loop: per round, every rank advances through its log until it
blocks on a not-yet-produced remote value; produced values are then
"delivered" and the next round starts.  The result is *identical* to
:class:`repro.sync.clc.ControlledLogicalClock` (the test suite asserts
it); the value of this module is (a) documenting the parallel
decomposition and (b) reporting its round count — the quantity that
bounds wall-clock time on a real parallel replay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sync.clc import (
    ClcResult,
    ControlledLogicalClock,
    _amortize_backward,
    _lmin_callable,
    compute_clc_stats,
)
from repro.sync.order import build_dependencies
from repro.sync.violations import LminSpec
from repro.tracing.trace import Trace

__all__ = ["ReplayResult", "replay_correct"]


@dataclass
class ReplayResult:
    """A :class:`ClcResult` plus replay statistics."""

    clc: ClcResult
    rounds: int  # bulk-synchronous rounds needed
    max_queue: int  # peak number of values in flight between rounds


def replay_correct(
    trace: Trace,
    lmin: LminSpec = 0.0,
    gamma: float = 0.99,
    amortization_window: float | None = None,
    include_collectives: bool = True,
) -> ReplayResult:
    """Forward-pass CLC organized as a parallel replay; see module docs."""
    corrector = ControlledLogicalClock(
        gamma=gamma,
        amortization_window=amortization_window,
        include_collectives=include_collectives,
    )
    deps = build_dependencies(trace, include_collectives=include_collectives)
    lmin_fn = _lmin_callable(lmin)

    original = {rank: trace.logs[rank].timestamps for rank in trace.ranks}
    corrected = {rank: original[rank].copy() for rank in trace.ranks}
    produced = {rank: 0 for rank in trace.ranks}  # events finalized so far
    jumps: dict[int, list[tuple[int, float]]] = {rank: [] for rank in trace.ranks}
    lengths = {rank: len(trace.logs[rank]) for rank in trace.ranks}
    total = sum(lengths.values())

    rounds = 0
    done = 0
    max_queue = 0
    njumps = 0
    max_jump = 0.0
    while done < total:
        rounds += 1
        progressed = 0
        # "Parallel" phase: each rank advances as far as its inputs allow,
        # reading only values produced in *previous* rounds or earlier in
        # its own log (matching a real replay, where remote values arrive
        # as messages).
        snapshot = dict(produced)
        for rank in trace.ranks:
            orig = original[rank]
            corr = corrected[rank]
            idx = produced[rank]
            while idx < lengths[rank]:
                ref_deps = deps.get((rank, idx), ())
                blocked = False
                remote_floor = -np.inf
                for dep_rank, dep_idx in ref_deps:
                    available = (
                        dep_idx < snapshot[dep_rank]
                        if dep_rank != rank
                        else dep_idx < idx
                    )
                    if not available:
                        blocked = True
                        break
                    floor = corrected[dep_rank][dep_idx] + lmin_fn(dep_rank, rank)
                    if floor > remote_floor:
                        remote_floor = floor
                if blocked:
                    break
                value = orig[idx]
                if idx > 0:
                    follow = corr[idx - 1] + gamma * (orig[idx] - orig[idx - 1])
                    if follow > value:
                        value = follow
                if remote_floor > value:
                    jump = remote_floor - value
                    value = remote_floor
                    jumps[rank].append((idx, jump))
                    njumps += 1
                    max_jump = max(max_jump, jump)
                corr[idx] = value
                idx += 1
                progressed += 1
            produced[rank] = idx
        done += progressed
        in_flight = sum(produced[r] - snapshot[r] for r in trace.ranks)
        max_queue = max(max_queue, in_flight)
        if progressed == 0:
            raise RuntimeError("replay stalled; trace dependency graph has a cycle")

    # Backward amortization, identical to the sequential implementation.
    window = amortization_window
    if window is None:
        window = corrector._auto_window(trace, jumps, lmin_fn)
    if window > 0:
        caps = ControlledLogicalClock._send_caps(trace, deps, corrected, lmin_fn)
        for rank in trace.ranks:
            if jumps[rank]:
                corrected[rank] = _amortize_backward(
                    corrected[rank], jumps[rank], window, caps.get(rank)
                )

    clc_result = compute_clc_stats(
        trace,
        original,
        corrected,
        jumps_count=njumps,
        max_jump=max_jump,
        meta={"gamma": gamma, "window": window, "jumps": njumps, "replay": True},
    )
    return ReplayResult(clc=clc_result, rounds=rounds, max_queue=max_queue)
