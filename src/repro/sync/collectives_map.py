"""Mapping collective operations onto logical point-to-point messages.

Paper Section V (and [30]): *"The basic idea behind this extension is to
map collective onto point-to-point communications by considering a
single collective operation as being composed of multiple point-to-point
operations, taking the semantics of the different flavors of MPI
collective operations into account (e.g. 1-to-N, N-to-1, etc.)."*

A collective instance with per-rank enter/exit timestamps yields logical
messages whose send side is a member's ``COLL_ENTER`` and whose receive
side is a member's ``COLL_EXIT``:

* **1-to-N** (bcast, scatter): root's enter -> every non-root exit;
* **N-to-1** (reduce, gather): every non-root enter -> root's exit;
* **N-to-N** (barrier, allreduce, allgather, alltoall): every member's
  exit depends on every *other* member's enter.  Because
  ``exit_i >= enter_j + l_min`` for all ``j != i`` is equivalent to
  ``exit_i >= max_{j != i}(enter_j) + l_min``, we emit exactly one
  logical message per member — from the latest-entering *other* member —
  which is both the binding constraint for correction and the exact
  violation test.

The resulting table mirrors :class:`repro.tracing.trace.MessageTable`
with the event-log indices pointing at the collective enter/exit events,
so violation scans and the CLC treat logical and real messages uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.tracing.events import COLLECTIVE_FLAVORS, CollectiveFlavor
from repro.tracing.trace import CollectiveTable, MessageTable

__all__ = ["logical_messages"]


def logical_messages(collectives: CollectiveTable) -> MessageTable:
    """Expand every collective instance into logical messages."""
    src_l: list[int] = []
    dst_l: list[int] = []
    sts_l: list[float] = []
    rts_l: list[float] = []
    sidx_l: list[int] = []
    ridx_l: list[int] = []

    for rec in collectives:
        flavor = COLLECTIVE_FLAVORS[rec.op]
        ranks = rec.ranks
        n = ranks.size
        if n < 2:
            continue
        enter, exit_, e_idx, x_idx = rec.enter_ts, rec.exit_ts, rec.enter_idx, rec.exit_idx
        if flavor is CollectiveFlavor.ONE_TO_N:
            pos = int(np.nonzero(ranks == rec.root)[0][0])
            for i in range(n):
                if i == pos:
                    continue
                src_l.append(int(ranks[pos]))
                dst_l.append(int(ranks[i]))
                sts_l.append(float(enter[pos]))
                rts_l.append(float(exit_[i]))
                sidx_l.append(int(e_idx[pos]))
                ridx_l.append(int(x_idx[i]))
        elif flavor is CollectiveFlavor.N_TO_ONE:
            pos = int(np.nonzero(ranks == rec.root)[0][0])
            for i in range(n):
                if i == pos:
                    continue
                src_l.append(int(ranks[i]))
                dst_l.append(int(ranks[pos]))
                sts_l.append(float(enter[i]))
                rts_l.append(float(exit_[pos]))
                sidx_l.append(int(e_idx[i]))
                ridx_l.append(int(x_idx[pos]))
        elif flavor is CollectiveFlavor.PREFIX:
            # MPI_Scan: rank i's exit depends on the enters of all lower
            # ranks; the binding sender is the latest-entering one
            # (ranks are stored ascending, so a running argmax works).
            best = 0
            for i in range(1, n):
                if enter[i - 1] > enter[best]:
                    best = i - 1
                src_l.append(int(ranks[best]))
                dst_l.append(int(ranks[i]))
                sts_l.append(float(enter[best]))
                rts_l.append(float(exit_[i]))
                sidx_l.append(int(e_idx[best]))
                ridx_l.append(int(x_idx[i]))
        else:  # N_TO_N
            # For each member, the binding sender is the latest-entering
            # other member: precompute top-2 enters to exclude self fast.
            order = np.argsort(enter)
            top, second = int(order[-1]), int(order[-2])
            for i in range(n):
                j = second if i == top else top
                src_l.append(int(ranks[j]))
                dst_l.append(int(ranks[i]))
                sts_l.append(float(enter[j]))
                rts_l.append(float(exit_[i]))
                sidx_l.append(int(e_idx[j]))
                ridx_l.append(int(x_idx[i]))

    if not src_l:
        return MessageTable.empty()
    zeros = np.zeros(len(src_l), dtype=np.int64)
    return MessageTable(
        np.array(src_l),
        np.array(dst_l),
        zeros,  # tag
        zeros,  # nbytes
        np.array(sts_l),
        np.array(rts_l),
        np.array(sidx_l),
        np.array(ridx_l),
    )
