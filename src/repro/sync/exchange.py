"""Free offset estimates from full message exchanges (Babaoglu/Drummond).

Section V: *"Babaoglu and Drummond have shown that clock synchronization
is possible at minimal cost if the application makes a full message
exchange between all processors in sufficiently short intervals."*

Every N-to-N collective already *is* such an exchange.  Its true-time
semantics bound every pairwise offset: for members i, j of one instance,

    -(exit_j - enter_i - l_min)  <=  off_i - off_j  <=  exit_i - enter_j - l_min

and the midpoint of that interval is simply the difference of the
members' own midpoints ``mid = (enter + exit) / 2``.  So each barrier,
allreduce, allgather or alltoall in a trace yields — for free, with no
probe traffic at all — one offset estimate per rank against the master,
accurate to about half the operation's duration plus half the arrival
skew.  A run with regular collectives therefore carries its own
piecewise synchronization, the property [22]/[23] exploit.

:func:`offsets_from_exchanges` extracts those estimates as standard
measurement sets, directly consumable by
:func:`repro.sync.interpolation.piecewise_interpolation`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import SynchronizationError
from repro.sync.interpolation import ClockCorrection, piecewise_interpolation
from repro.sync.offset import OffsetMeasurement
from repro.tracing.events import COLLECTIVE_FLAVORS, CollectiveFlavor, CollectiveOp
from repro.tracing.trace import Trace

__all__ = ["offsets_from_exchanges", "exchange_correction"]


def offsets_from_exchanges(
    trace: Trace,
    master: int = 0,
    ops: Optional[Iterable[CollectiveOp]] = None,
    max_duration: Optional[float] = None,
) -> list[dict[int, OffsetMeasurement]]:
    """One measurement set per qualifying N-to-N collective instance.

    Parameters
    ----------
    trace:
        Trace containing collective events.
    master:
        Rank whose clock defines the timeline.
    ops:
        Restrict to these operations (default: every N-to-N flavor).
    max_duration:
        Skip instances whose *master-side* duration exceeds this —
        long operations mean long waits, i.e. bad estimates ("in
        sufficiently short intervals").  ``None`` keeps all.

    Returns
    -------
    list of ``{worker_rank: OffsetMeasurement}`` in instance order.
    The recorded ``rtt`` is the estimate's uncertainty width
    ``(duration_master + duration_worker)``, so callers can filter or
    weight by quality.
    """
    allowed = set(ops) if ops is not None else {
        op for op, flavor in COLLECTIVE_FLAVORS.items()
        if flavor is CollectiveFlavor.N_TO_N
    }
    sets: list[dict[int, OffsetMeasurement]] = []
    for rec in trace.collectives():
        if rec.op not in allowed or rec.ranks.size < 2:
            continue
        positions = {int(r): i for i, r in enumerate(rec.ranks)}
        if master not in positions:
            continue
        m_pos = positions[master]
        m_dur = float(rec.exit_ts[m_pos] - rec.enter_ts[m_pos])
        if max_duration is not None and m_dur > max_duration:
            continue
        m_mid = float(rec.enter_ts[m_pos] + rec.exit_ts[m_pos]) / 2.0
        measurements: dict[int, OffsetMeasurement] = {}
        for rank, pos in positions.items():
            if rank == master:
                continue
            w_mid = float(rec.enter_ts[pos] + rec.exit_ts[pos]) / 2.0
            w_dur = float(rec.exit_ts[pos] - rec.enter_ts[pos])
            measurements[rank] = OffsetMeasurement(
                worker=rank,
                worker_time=w_mid,
                offset=m_mid - w_mid,
                rtt=m_dur + w_dur,
                repeats=1,
            )
        if measurements:
            sets.append(measurements)
    return sets


def exchange_correction(
    trace: Trace,
    master: int = 0,
    ops: Optional[Iterable[CollectiveOp]] = None,
    max_duration: Optional[float] = None,
) -> ClockCorrection:
    """Piecewise correction built purely from the trace's own exchanges.

    Raises :class:`SynchronizationError` when the trace holds fewer than
    two qualifying exchanges covering every non-master rank.
    """
    sets = offsets_from_exchanges(trace, master=master, ops=ops, max_duration=max_duration)
    workers = {r for r in trace.ranks if r != master}
    usable = [s for s in sets if set(s) == workers]
    if len(usable) < 2:
        raise SynchronizationError(
            f"need >= 2 full exchanges covering all ranks; found {len(usable)}"
        )
    # Drop duplicate knot times (back-to-back collectives can yield the
    # same worker_time after quantization).
    deduped: list[dict[int, OffsetMeasurement]] = []
    last_times: dict[int, float] = {}
    for s in usable:
        if any(s[w].worker_time <= last_times.get(w, -np.inf) for w in workers):
            continue
        deduped.append(s)
        for w in workers:
            last_times[w] = s[w].worker_time
    if len(deduped) < 2:
        raise SynchronizationError("exchanges too close together to interpolate")
    return piecewise_interpolation(deduped, master=master)
