"""Fidge/Mattern vector clocks and the happened-before relation.

Section V: *"each processor maintains a vector representing all
processor-local clocks.  While the local clock is advanced after each
local event as before, the vector is updated after receiving a message
using an element-wise maximum operation between the local vector and
the remote vector that has been sent along with the message."*

Vector clocks characterize happened-before *exactly*:
``e -> f  iff  V(e) < V(f)`` (componentwise <=, somewhere <), which the
test suite verifies against graph reachability on
:func:`happened_before_graph`.

The default path runs the array kernel of :mod:`repro.sync.schedule`
(broadcast fills over dependency-free stretches);
:func:`vector_clocks_reference` keeps the event-by-event scalar loop as
the equivalence-test oracle.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.sync.order import build_dependencies, replay_schedule
from repro.sync.schedule import vector_kernel
from repro.tracing.trace import Trace

__all__ = [
    "vector_clocks",
    "vector_clocks_reference",
    "happened_before_graph",
    "vector_leq",
    "concurrent",
]


def vector_clocks(trace: Trace, include_collectives: bool = True) -> dict[int, np.ndarray]:
    """Per-rank ``(n_events, nranks)`` matrices of vector times.

    Rank ids are mapped to vector components in sorted order
    (``trace.ranks``), so traces with non-contiguous ranks work.
    """
    return vector_kernel(trace.compiled_schedule(include_collectives))


def vector_clocks_reference(
    trace: Trace, include_collectives: bool = True
) -> dict[int, np.ndarray]:
    """Scalar formulation of :func:`vector_clocks` (oracle)."""
    ranks = trace.ranks
    comp = {rank: i for i, rank in enumerate(ranks)}
    n = len(ranks)
    deps = build_dependencies(trace, include_collectives=include_collectives)
    vectors = {
        rank: np.zeros((len(trace.logs[rank]), n), dtype=np.int64) for rank in ranks
    }
    for rank, idx in replay_schedule(trace, deps):
        vec = vectors[rank]
        current = vec[idx - 1].copy() if idx > 0 else np.zeros(n, dtype=np.int64)
        for dep_rank, dep_idx in deps.get((rank, idx), ()):
            np.maximum(current, vectors[dep_rank][dep_idx], out=current)
        current[comp[rank]] += 1
        vec[idx] = current
    return vectors


def vector_leq(a: np.ndarray, b: np.ndarray) -> bool:
    """``a <= b`` componentwise (the vector-clock partial order)."""
    return bool(np.all(a <= b))


def concurrent(a: np.ndarray, b: np.ndarray) -> bool:
    """Neither event happened before the other."""
    return not vector_leq(a, b) and not vector_leq(b, a)


def happened_before_graph(trace: Trace, include_collectives: bool = True) -> "nx.DiGraph":
    """The happened-before DAG over ``(rank, index)`` event nodes.

    Edges: local program order plus the remote dependencies of
    :func:`repro.sync.order.build_dependencies`.  Mainly used to
    validate logical-clock implementations and for small-trace
    visualization; it materializes every event as a node, so keep it
    away from million-event traces.
    """
    g = nx.DiGraph()
    for rank in trace.ranks:
        length = len(trace.logs[rank])
        for idx in range(length):
            g.add_node((rank, idx))
            if idx > 0:
                g.add_edge((rank, idx - 1), (rank, idx))
    for ref, sources in build_dependencies(trace, include_collectives).items():
        for src in sources:
            g.add_edge(src, ref)
    return g
