"""Lamport's discrete logical clock over a trace.

Section V: *"Lamport has introduced a discrete logical clock with each
clock being represented by a monotonically increasing software counter.
As local clocks are incremented after every local event and the updated
values are exchanged at synchronization points, happened-before
relations can be exploited to further validate and synchronize
distributed clocks."*

:func:`lamport_clocks` assigns every event its Lamport time:
``LC(e) = LC(previous local event) + 1``, and for a receive additionally
``LC(e) >= LC(matching send) + 1`` (collective exits are treated as
receives of their logical messages).  The result totally respects the
happened-before partial order and is the discrete ancestor of the
*controlled* logical clock in :mod:`repro.sync.clc`.
"""

from __future__ import annotations

import numpy as np

from repro.sync.order import build_dependencies, replay_schedule
from repro.tracing.trace import Trace

__all__ = ["lamport_clocks"]


def lamport_clocks(trace: Trace, include_collectives: bool = True) -> dict[int, np.ndarray]:
    """Per-rank arrays of Lamport times, aligned with each event log."""
    deps = build_dependencies(trace, include_collectives=include_collectives)
    clocks = {rank: np.zeros(len(trace.logs[rank]), dtype=np.int64) for rank in trace.ranks}
    for rank, idx in replay_schedule(trace, deps):
        value = clocks[rank][idx - 1] + 1 if idx > 0 else 1
        for dep_rank, dep_idx in deps.get((rank, idx), ()):
            dep_value = clocks[dep_rank][dep_idx] + 1
            if dep_value > value:
                value = dep_value
        clocks[rank][idx] = value
    return clocks
