"""Lamport's discrete logical clock over a trace.

Section V: *"Lamport has introduced a discrete logical clock with each
clock being represented by a monotonically increasing software counter.
As local clocks are incremented after every local event and the updated
values are exchanged at synchronization points, happened-before
relations can be exploited to further validate and synchronize
distributed clocks."*

:func:`lamport_clocks` assigns every event its Lamport time:
``LC(e) = LC(previous local event) + 1``, and for a receive additionally
``LC(e) >= LC(matching send) + 1`` (collective exits are treated as
receives of their logical messages).  The result totally respects the
happened-before partial order and is the discrete ancestor of the
*controlled* logical clock in :mod:`repro.sync.clc`.

The default path runs the array kernel of
:mod:`repro.sync.schedule` (exact int64 closed form per rank);
:func:`lamport_clocks_reference` keeps the event-by-event scalar loop as
the equivalence-test oracle.
"""

from __future__ import annotations

import numpy as np

from repro.sync.order import build_dependencies, replay_schedule
from repro.sync.schedule import lamport_kernel
from repro.tracing.trace import Trace

__all__ = ["lamport_clocks", "lamport_clocks_reference"]


def lamport_clocks(trace: Trace, include_collectives: bool = True) -> dict[int, np.ndarray]:
    """Per-rank arrays of Lamport times, aligned with each event log."""
    return lamport_kernel(trace.compiled_schedule(include_collectives))


def lamport_clocks_reference(
    trace: Trace, include_collectives: bool = True
) -> dict[int, np.ndarray]:
    """Scalar formulation of :func:`lamport_clocks` (oracle)."""
    deps = build_dependencies(trace, include_collectives=include_collectives)
    clocks = {rank: np.zeros(len(trace.logs[rank]), dtype=np.int64) for rank in trace.ranks}
    for rank, idx in replay_schedule(trace, deps):
        value = clocks[rank][idx - 1] + 1 if idx > 0 else 1
        for dep_rank, dep_idx in deps.get((rank, idx), ()):
            dep_value = clocks[dep_rank][dep_idx] + 1
            if dep_value > value:
                value = dep_value
        clocks[rank][idx] = value
    return clocks
