"""Array-native compilation of a trace's happened-before structure.

Every logical-clock algorithm in this package — Lamport and vector
clocks, the controlled logical clock, the naive Lamport shift, and the
replay decomposition — consumes the same two ingredients: the sparse
remote-dependency relation of :func:`repro.sync.order.build_dependencies`
and a happened-before-consistent processing order.  Deriving both
per call through Python dicts keyed on ``(rank, idx)`` tuples dominated
the cost of trace correction (the `replay_schedule` Kahn generator plus
one dict lookup per event).

:class:`CompiledSchedule` performs that derivation **once** and stores
the result as flat numpy arrays:

* **global event ids** — rank ``ranks[i]``'s events occupy the gid range
  ``[offsets[i], offsets[i+1])``; every per-event array below is indexed
  by gid;
* **CSR dependency arrays** — ``indptr``/``indices`` give, per event,
  the gids of its remote happened-before predecessors (non-empty only
  for receives, collective exits, and custom constraints such as POMP);
  per-edge source/destination *rank ids* support vectorized ``l_min``
  resolution via :func:`repro.sync.violations.resolve_lmin`;
* **reverse (unblocks) CSR** — ``rev_indptr``/``rev_targets`` invert the
  relation (per source, the dependents it unblocks); the send-cap
  computation of the CLC backward pass is a single segmented
  ``np.minimum.reduceat`` over it;
* **a topological execution plan** — ``steps`` is a sequence of
  contiguous per-rank spans ``[start_gid, stop_gid)`` whose sequential
  execution respects every dependency, mirroring ``replay_schedule``'s
  Kahn traversal (same rank queue, same tie-breaking) but computed once;
  within a span only the *dependency-bearing* events need Python-level
  attention, which is what lets the kernels below run their per-event
  recurrences over jump events instead of all events.

The kernels (:func:`clc_forward`, :func:`send_caps_kernel`,
:func:`lamport_kernel`, :func:`vector_kernel`, :func:`bsp_rounds`) are
**bit-for-bit equivalent** to the scalar reference implementations that
remain in :mod:`repro.sync.clc`, :mod:`repro.sync.lamport`, and
:mod:`repro.sync.vector` as ``*_reference`` functions:

* integer kernels (Lamport, vector) use closed forms that are exact in
  int64 arithmetic;
* the float CLC recurrence ``LC'[i] = max(LC[i], LC'[i-1] + γ·δ[i])``
  is only evaluated — with exactly the reference's operation order —
  where it can deviate from the identity ``LC'[i] = LC[i]``: after a
  remote-constrained jump (until the γ-glide decays back onto the
  original timeline) and at the rare positions where
  ``LC[i-1] + γ·δ[i] > LC[i]`` holds spontaneously through rounding
  (detected by one vectorized pass).  Everywhere else the corrected
  timestamp provably equals the original bit pattern, so skipping the
  event is exact, not approximate.

Schedules are structure-only (no timestamps), so a compiled schedule is
valid for every timestamp correction of the same trace; ``Trace``
caches one per ``include_collectives`` flavor
(:meth:`repro.tracing.trace.Trace.compiled_schedule`).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SynchronizationError
from repro.sync.order import EventRef, build_dependencies
from repro.sync.violations import LminSpec, resolve_lmin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports us lazily)
    from repro.tracing.trace import Trace

__all__ = [
    "CompiledSchedule",
    "clc_forward",
    "send_caps_kernel",
    "lamport_kernel",
    "vector_kernel",
    "bsp_rounds",
]

_NEG_INF = float("-inf")


class CompiledSchedule:
    """One-shot array compilation of a trace's happened-before structure.

    Build via :meth:`from_trace` (message + collective constraints, the
    standard relation) or :meth:`from_dependencies` (any explicit
    constraint dict, e.g. POMP semantics).  Instances are immutable and
    timestamp-independent; see the module docstring for the layout.
    """

    __slots__ = (
        "ranks",
        "offsets",
        "lengths",
        "n_events",
        "n_edges",
        "e_src",
        "e_dst",
        "edge_src_rank",
        "edge_dst_rank",
        "indptr",
        "indices",
        "f_edge_ids",
        "rev_indptr",
        "rev_targets",
        "rev_edge_ids",
        "steps",
        "exec_dep_gids",
        "exec_dep_indptr",
        "exec_edge_ids",
        "exec_edge_src",
        "dep_pos_by_rank",
        "_hot",
        "_topo",
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: "Trace", include_collectives: bool = True) -> "CompiledSchedule":
        """Compile the standard message/collective happened-before relation."""
        deps = build_dependencies(trace, include_collectives=include_collectives)
        return cls.from_dependencies(trace, deps)

    @classmethod
    def from_dependencies(
        cls, trace: "Trace", deps: dict[EventRef, list[EventRef]]
    ) -> "CompiledSchedule":
        """Compile an explicit constraint set (the POMP extension point)."""
        ranks = trace.ranks
        lengths = np.array([len(trace.logs[r]) for r in ranks], dtype=np.int64)
        return cls(ranks, lengths, deps)

    def __init__(
        self,
        ranks: list[int],
        lengths: np.ndarray,
        deps: dict[EventRef, list[EventRef]],
    ) -> None:
        self.ranks = list(ranks)
        nr = len(self.ranks)
        rank_pos = {rank: i for i, rank in enumerate(self.ranks)}
        self.lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.zeros(nr + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=offsets[1:])
        self.offsets = offsets
        n = int(offsets[-1])
        self.n_events = n

        # ---- edge arrays, in deps-dict order ---------------------------
        dst_list: list[int] = []
        src_list: list[int] = []
        for (rank, idx), sources in deps.items():
            pos = rank_pos.get(rank)
            if pos is None or not 0 <= idx < self.lengths[pos]:
                raise SynchronizationError(
                    f"dependency target ({rank}, {idx}) is not an event of the trace"
                )
            dgid = int(offsets[pos]) + int(idx)
            for src_rank, src_idx in sources:
                spos = rank_pos.get(src_rank)
                if spos is None or not 0 <= src_idx < self.lengths[spos]:
                    raise SynchronizationError(
                        f"dependency source ({src_rank}, {src_idx}) is not an event of the trace"
                    )
                dst_list.append(dgid)
                src_list.append(int(offsets[spos]) + int(src_idx))
        e_dst = np.array(dst_list, dtype=np.int64)
        e_src = np.array(src_list, dtype=np.int64)
        ne = e_dst.size
        self.e_dst = e_dst
        self.e_src = e_src
        self.n_edges = ne

        ranks_arr = np.array(self.ranks, dtype=np.int64)
        self.edge_src_rank = ranks_arr[self._rank_pos_of(e_src)] if ne else e_src.copy()
        self.edge_dst_rank = ranks_arr[self._rank_pos_of(e_dst)] if ne else e_dst.copy()

        # ---- forward CSR (dependent -> sources) ------------------------
        counts = np.bincount(e_dst, minlength=n) if ne else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        f_order = np.argsort(e_dst, kind="stable") if ne else e_dst.copy()
        self.f_edge_ids = f_order
        self.indices = e_src[f_order] if ne else e_src.copy()

        # ---- reverse (unblocks) CSR (source -> dependents) -------------
        rcounts = np.bincount(e_src, minlength=n) if ne else np.zeros(n, dtype=np.int64)
        rev_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(rcounts, out=rev_indptr[1:])
        self.rev_indptr = rev_indptr
        r_order = np.argsort(e_src, kind="stable") if ne else e_src.copy()
        self.rev_edge_ids = r_order
        self.rev_targets = e_dst[r_order] if ne else e_dst.copy()

        # ---- per-rank dependency-bearing event positions ---------------
        dep_gids = np.unique(e_dst) if ne else e_dst.copy()
        self.dep_pos_by_rank = [
            dep_gids[(dep_gids >= offsets[i]) & (dep_gids < offsets[i + 1])] - offsets[i]
            for i in range(nr)
        ]

        # ---- Kahn traversal -> execution plan --------------------------
        self._compile_steps(counts)
        self._hot = None
        self._topo = None

    def _rank_pos_of(self, gids: np.ndarray) -> np.ndarray:
        """Rank position (index into ``self.ranks``) of each gid."""
        return np.searchsorted(self.offsets, gids, side="right") - 1

    def _compile_steps(self, pending_counts: np.ndarray) -> None:
        """Kahn traversal mirroring ``replay_schedule``'s rank queue.

        Emits contiguous per-rank spans instead of single events; only
        dependency sources and dependency-bearing events get
        Python-level attention, so compilation is O(events) numpy +
        O(edges) Python.
        """
        nr = len(self.ranks)
        offsets = self.offsets.tolist()
        lengths = self.lengths.tolist()
        pending = pending_counts.tolist()
        rev_indptr = self.rev_indptr.tolist()
        rev_targets = self.rev_targets.tolist()
        rev_t_pos = (
            self._rank_pos_of(self.rev_targets).tolist() if self.n_edges else []
        )
        indptr = self.indptr
        f_edge_ids = self.f_edge_ids

        dep_lists = [arr.tolist() for arr in self.dep_pos_by_rank]
        src_gids = np.unique(self.e_src) if self.n_edges else self.e_src
        src_lists: list[list[int]] = [[] for _ in range(nr)]
        for pos, gid in zip(self._rank_pos_of(src_gids).tolist(), src_gids.tolist()):
            src_lists[pos].append(gid - offsets[pos])

        cursor = [0] * nr
        dep_ptr = [0] * nr
        src_ptr = [0] * nr
        ready: deque[int] = deque(rp for rp in range(nr) if lengths[rp] > 0)
        in_ready = [lengths[rp] > 0 for rp in range(nr)]

        steps: list[tuple[int, int, int, int, int]] = []
        exec_dep: list[int] = []
        exec_edge_parts: list[np.ndarray] = []
        exec_edge_counts: list[int] = []
        emitted = 0

        def unblock(rp: int, hi_local: int) -> None:
            """Process the unblock edges of rank ``rp``'s events below ``hi_local``."""
            sl = src_lists[rp]
            i = src_ptr[rp]
            nsl = len(sl)
            while i < nsl and sl[i] < hi_local:
                g = offsets[rp] + sl[i]
                for e in range(rev_indptr[g], rev_indptr[g + 1]):
                    t = rev_targets[e]
                    pending[t] -= 1
                    if pending[t] == 0:
                        trp = rev_t_pos[e]
                        if cursor[trp] == t - offsets[trp] and not in_ready[trp]:
                            ready.append(trp)
                            in_ready[trp] = True
                i += 1
            src_ptr[rp] = i

        while ready:
            rp = ready.popleft()
            in_ready[rp] = False
            start = cursor[rp]
            dep_lo = len(exec_dep)
            dl = dep_lists[rp]
            ndl = len(dl)
            while True:
                dp = dep_ptr[rp]
                nxt = dl[dp] if dp < ndl else lengths[rp]
                if nxt > cursor[rp]:  # dependency-free stretch
                    emitted += nxt - cursor[rp]
                    cursor[rp] = nxt
                    unblock(rp, nxt)
                if dp >= ndl:
                    break
                g = offsets[rp] + nxt
                if pending[g] != 0:
                    break  # blocked on a remote predecessor
                exec_dep.append(g)
                lo, hi = int(indptr[g]), int(indptr[g + 1])
                exec_edge_parts.append(f_edge_ids[lo:hi])
                exec_edge_counts.append(hi - lo)
                dep_ptr[rp] = dp + 1
                cursor[rp] = nxt + 1
                emitted += 1
                unblock(rp, nxt + 1)
            if cursor[rp] > start:
                steps.append(
                    (rp, offsets[rp] + start, offsets[rp] + cursor[rp], dep_lo, len(exec_dep))
                )

        if emitted != self.n_events:
            raise SynchronizationError(
                f"replay schedule incomplete ({emitted}/{self.n_events} events); "
                "the trace's happened-before graph has a cycle or dangling dependency"
            )

        self.steps = np.array(steps, dtype=np.int64).reshape(len(steps), 5)
        self.exec_dep_gids = np.array(exec_dep, dtype=np.int64)
        exec_dep_indptr = np.zeros(len(exec_dep) + 1, dtype=np.int64)
        np.cumsum(np.array(exec_edge_counts, dtype=np.int64), out=exec_dep_indptr[1:])
        self.exec_dep_indptr = exec_dep_indptr
        self.exec_edge_ids = (
            np.concatenate(exec_edge_parts)
            if exec_edge_parts
            else np.zeros(0, dtype=np.int64)
        )
        self.exec_edge_src = (
            self.e_src[self.exec_edge_ids] if self.n_edges else np.zeros(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Views and helpers
    # ------------------------------------------------------------------
    @property
    def hot(self) -> dict:
        """Python-list mirrors of the arrays read scalar-wise in kernels."""
        if self._hot is None:
            self._hot = {
                "offsets": self.offsets.tolist(),
                "steps": [tuple(row) for row in self.steps.tolist()],
                "dep_gids": self.exec_dep_gids.tolist(),
                "dep_indptr": self.exec_dep_indptr.tolist(),
                "edge_src": self.exec_edge_src.tolist(),
                "dep_pos": self._rank_pos_of(self.exec_dep_gids).tolist()
                if self.exec_dep_gids.size
                else [],
                "edge_src_pos": self._rank_pos_of(self.exec_edge_src).tolist()
                if self.exec_edge_src.size
                else [],
            }
        return self._hot

    def topo_gids(self) -> np.ndarray:
        """Every event's gid in compiled (replay) order."""
        if self._topo is None:
            parts = [np.arange(a, b, dtype=np.int64) for _, a, b, _, _ in self.steps]
            self._topo = (
                np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
            )
        return self._topo

    def topo_refs(self) -> list[EventRef]:
        """Compiled order as ``(rank, local index)`` tuples (test oracle)."""
        gids = self.topo_gids()
        pos = self._rank_pos_of(gids)
        ranks_arr = np.array(self.ranks, dtype=np.int64)
        locals_ = gids - self.offsets[pos]
        return list(zip(ranks_arr[pos].tolist(), locals_.tolist()))

    def edge_lmin(self, lmin: LminSpec) -> np.ndarray:
        """Per-edge minimum-latency floor, in edge (deps-dict) order.

        Reuses :func:`repro.sync.violations.resolve_lmin`, so callables
        are evaluated once per unique rank pair and matrices are indexed
        by actual rank ids — float-identical to the scalar
        ``_lmin_callable`` path of the reference implementation.
        """
        if self.n_edges == 0:
            return np.zeros(0, dtype=np.float64)
        return resolve_lmin(lmin, self.edge_src_rank, self.edge_dst_rank)

    def flatten(self, per_rank: dict[int, np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays into one gid-indexed array."""
        parts = [np.asarray(per_rank[r], dtype=np.float64) for r in self.ranks]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)

    def split(self, flat: np.ndarray) -> dict[int, np.ndarray]:
        """Per-rank views of a gid-indexed array."""
        return {
            rank: flat[self.offsets[i] : self.offsets[i + 1]]
            for i, rank in enumerate(self.ranks)
        }


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _spont_positions(
    schedule: CompiledSchedule, orig_flat: np.ndarray, gd: np.ndarray | None
) -> list[list[int]]:
    """Per-rank positions where the local recurrence binds spontaneously.

    For the CLC, position ``i`` can deviate from the identity even in
    steady state (``LC'[i-1] == LC[i-1]``) when rounding makes
    ``LC[i-1] + γ·δ[i] > LC[i]``; for the naive shift the condition is a
    locally unsorted log (``LC[i-1] > LC[i]``).  One vectorized pass
    finds them all, which is what licenses skipping every other
    non-dependency event.
    """
    n = orig_flat.size
    nr = len(schedule.ranks)
    if n < 2:
        return [[] for _ in range(nr)]
    mask = np.zeros(n, dtype=bool)
    if gd is None:
        mask[1:] = orig_flat[:-1] > orig_flat[1:]
    else:
        mask[1:] = (orig_flat[:-1] + gd[1:]) > orig_flat[1:]
    starts = schedule.offsets[:-1]
    mask[starts[starts < n]] = False  # first event of a rank has no predecessor
    positions = np.nonzero(mask)[0]
    bounds = np.searchsorted(positions, schedule.offsets)
    return [
        positions[bounds[i] : bounds[i + 1]].tolist() for i in range(nr)
    ]


def clc_forward(
    schedule: CompiledSchedule,
    orig_flat: np.ndarray,
    edge_lmin: np.ndarray,
    gamma: float | None,
) -> tuple[np.ndarray, dict[int, list[tuple[int, float]]], int, float]:
    """Forward pass of the CLC (``gamma`` set) or naive shift (``None``).

    Returns ``(corrected_flat, jumps, njumps, max_jump)`` with ``jumps``
    mapping each rank to its ``(local index, jump size)`` list —
    bit-identical to the scalar reference loop.
    """
    n = orig_flat.size
    jumps: dict[int, list[tuple[int, float]]] = {rank: [] for rank in schedule.ranks}
    if n == 0:
        return orig_flat.copy(), jumps, 0, 0.0

    if gamma is None:
        gd_arr = None
        gdl = None
    else:
        gd_arr = np.zeros(n, dtype=np.float64)
        if n > 1:
            gd_arr[1:] = gamma * (orig_flat[1:] - orig_flat[:-1])
        gdl = gd_arr.tolist()

    spont = _spont_positions(schedule, orig_flat, gd_arr)
    spont_ptr = [0] * len(spont)

    hot = schedule.hot
    offsets = hot["offsets"]
    dep_gids = hot["dep_gids"]
    dep_indptr = hot["dep_indptr"]
    edge_src = hot["edge_src"]
    exec_elmin = (
        edge_lmin[schedule.exec_edge_ids].tolist() if schedule.n_edges else []
    )

    origl = orig_flat.tolist()
    corr = list(origl)
    ranks = schedule.ranks
    njumps = 0
    max_jump = 0.0

    if gamma is None:

        def run_tail(i: int, stop: int) -> int:
            while i < stop:
                follow = corr[i - 1]
                if follow > origl[i]:
                    corr[i] = follow
                    i += 1
                else:
                    break
            return i

    else:

        def run_tail(i: int, stop: int) -> int:
            while i < stop:
                follow = corr[i - 1] + gdl[i]
                if follow > origl[i]:
                    corr[i] = follow
                    i += 1
                else:
                    break
            return i

    def do_stretch(cur: int, stop: int, rk_start: int, rp: int) -> None:
        if cur >= stop:
            return
        if cur > rk_start and corr[cur - 1] > origl[cur - 1]:
            cur = run_tail(cur, stop)
        sp = spont[rp]
        k = spont_ptr[rp]
        nsp = len(sp)
        while k < nsp and sp[k] < stop:
            s = sp[k]
            k += 1
            if s < cur:
                continue
            corr[s] = corr[s - 1] + gdl[s] if gdl is not None else corr[s - 1]
            cur = run_tail(s + 1, stop)
        spont_ptr[rp] = k

    # Steps visit dep events 0..D-1 in ascending order, so one running
    # pointer walks the exec edge arrays without per-event indptr reads.
    eptr = 0
    for rp, a, b, dep_lo, dep_hi in hot["steps"]:
        rk_start = offsets[rp]
        jlist = jumps[ranks[rp]]
        cur = a
        for di in range(dep_lo, dep_hi):
            p = dep_gids[di]
            if p > cur:
                do_stretch(cur, p, rk_start, rp)
            value = origl[p]
            if p > rk_start:
                follow = corr[p - 1] + gdl[p] if gdl is not None else corr[p - 1]
                if follow > value:
                    value = follow
            remote_floor = _NEG_INF
            estop = dep_indptr[di + 1]
            while eptr < estop:
                floor = corr[edge_src[eptr]] + exec_elmin[eptr]
                if floor > remote_floor:
                    remote_floor = floor
                eptr += 1
            if remote_floor > value:
                jump = remote_floor - value
                value = remote_floor
                jlist.append((p - rk_start, jump))
                njumps += 1
                if jump > max_jump:
                    max_jump = jump
            corr[p] = value
            cur = p + 1
        do_stretch(cur, b, rk_start, rp)

    return np.asarray(corr, dtype=np.float64), jumps, njumps, max_jump


def send_caps_kernel(
    schedule: CompiledSchedule, corrected_flat: np.ndarray, edge_lmin: np.ndarray
) -> np.ndarray:
    """Per-event upper bound ``min(partner receive - l_min)`` (flat).

    One segmented scatter-min over the reverse CSR replaces the scalar
    reference's per-edge dict loop; ``min`` is exact, so the caps are
    bit-identical.
    """
    caps = np.full(schedule.n_events, np.inf, dtype=np.float64)
    if schedule.n_edges:
        recv = corrected_flat[schedule.rev_targets]
        lm = edge_lmin[schedule.rev_edge_ids]
        vals = recv - lm
        # Round-to-nearest can land ``recv - l_min`` above the true
        # bound; an event later advanced to that cap would sit one ulp
        # past ``recv - l_min`` and break the clock condition under
        # exact comparison.  Nudge down until ``cap + l_min <= recv``.
        bad = vals + lm > recv
        while bad.any():
            vals[bad] = np.nextafter(vals[bad], -np.inf)
            bad = vals + lm > recv
        degrees = np.diff(schedule.rev_indptr)
        sources = np.nonzero(degrees > 0)[0]
        caps[sources] = np.minimum.reduceat(vals, schedule.rev_indptr[sources])
    return caps


def lamport_kernel(schedule: CompiledSchedule) -> dict[int, np.ndarray]:
    """Lamport times for every event, bit-identical to the scalar pass.

    Int64 max-plus arithmetic is exact, so the per-rank closed form
    ``LC[i] = i + max(1, max_{p ≤ i}(B_p - p))`` (bases ``B_p`` at
    dependency-bearing events, combined by ``np.maximum.accumulate``)
    reproduces the event-by-event recurrence exactly; the Python loop
    runs only over dependency-bearing events.
    """
    hot = schedule.hot
    offsets = hot["offsets"]
    dep_gids = hot["dep_gids"]
    dep_indptr = hot["dep_indptr"]
    edge_src = hot["edge_src"]
    dep_pos = hot["dep_pos"]
    edge_src_pos = hot["edge_src_pos"]

    nr = len(schedule.ranks)
    cur_m = [1] * nr
    base_pos: list[list[int]] = [[] for _ in range(nr)]
    base_val: list[list[int]] = [[] for _ in range(nr)]

    for di in range(len(dep_gids)):
        rp = dep_pos[di]
        pl = dep_gids[di] - offsets[rp]
        value = pl + cur_m[rp] if pl > 0 else 1
        for e in range(dep_indptr[di], dep_indptr[di + 1]):
            srp = edge_src_pos[e]
            sl = edge_src[e] - offsets[srp]
            bp = base_pos[srp]
            k = bisect_right(bp, sl)
            m_src = base_val[srp][k - 1] if k else 1
            dep_value = sl + m_src + 1
            if dep_value > value:
                value = dep_value
        cand = value - pl
        if cand > cur_m[rp]:
            cur_m[rp] = cand
        base_pos[rp].append(pl)
        base_val[rp].append(cur_m[rp])

    out: dict[int, np.ndarray] = {}
    for rp, rank in enumerate(schedule.ranks):
        n_r = int(schedule.lengths[rp])
        m_arr = np.ones(n_r, dtype=np.int64)
        if base_pos[rp]:
            m_arr[np.array(base_pos[rp], dtype=np.int64)] = np.array(
                base_val[rp], dtype=np.int64
            )
            np.maximum.accumulate(m_arr, out=m_arr)
        out[rank] = np.arange(n_r, dtype=np.int64) + m_arr if n_r else m_arr
    return out


def vector_kernel(schedule: CompiledSchedule) -> dict[int, np.ndarray]:
    """Fidge/Mattern vector times, bit-identical to the scalar pass.

    Dependency-free stretches are filled with one broadcast assignment
    plus an ``arange`` on the rank's own component (exact in int64);
    the Python loop touches only dependency-bearing events.
    """
    nr = len(schedule.ranks)
    hot = schedule.hot
    offsets = hot["offsets"]
    dep_gids = hot["dep_gids"]
    dep_indptr = hot["dep_indptr"]
    edge_src = hot["edge_src"]
    edge_src_pos = hot["edge_src_pos"]

    mats = [
        np.zeros((int(schedule.lengths[rp]), nr), dtype=np.int64) for rp in range(nr)
    ]

    def fill_stretch(rp: int, cur: int, stop: int) -> None:
        if cur >= stop:
            return
        arr = mats[rp]
        carry = arr[cur - 1] if cur > 0 else np.zeros(nr, dtype=np.int64)
        arr[cur:stop] = carry
        arr[cur:stop, rp] = carry[rp] + np.arange(1, stop - cur + 1, dtype=np.int64)

    for rp, a, b, dep_lo, dep_hi in hot["steps"]:
        rk_start = offsets[rp]
        cur = a - rk_start
        stop = b - rk_start
        arr = mats[rp]
        for di in range(dep_lo, dep_hi):
            pl = dep_gids[di] - rk_start
            fill_stretch(rp, cur, pl)
            vec = (
                arr[pl - 1].copy() if pl > 0 else np.zeros(nr, dtype=np.int64)
            )
            for e in range(dep_indptr[di], dep_indptr[di + 1]):
                srp = edge_src_pos[e]
                sl = edge_src[e] - offsets[srp]
                np.maximum(vec, mats[srp][sl], out=vec)
            vec[rp] += 1
            arr[pl] = vec
            cur = pl + 1
        fill_stretch(rp, cur, stop)

    return {rank: mats[rp] for rp, rank in enumerate(schedule.ranks)}


def bsp_rounds(schedule: CompiledSchedule) -> tuple[int, int]:
    """Bulk-synchronous replay statistics ``(rounds, max_queue)``.

    Simulates the round structure of the parallel replay — each rank
    advances per round until it blocks on a value produced in the same
    round — touching only dependency-bearing events.  Matches the
    event-by-event reference loop exactly because dependency-free
    events never block.
    """
    nr = len(schedule.ranks)
    offsets = schedule.offsets.tolist()
    lengths = schedule.lengths.tolist()
    total = schedule.n_events
    indptr = schedule.indptr
    f_src = schedule.indices.tolist()
    f_src_pos = (
        schedule._rank_pos_of(schedule.indices).tolist() if schedule.n_edges else []
    )
    indptr_l = indptr.tolist()
    dep_lists = [arr.tolist() for arr in schedule.dep_pos_by_rank]

    produced = [0] * nr
    ptr = [0] * nr
    rounds = 0
    done = 0
    max_queue = 0
    while done < total:
        rounds += 1
        snapshot = list(produced)
        progressed = 0
        for rp in range(nr):
            idx = produced[rp]
            dl = dep_lists[rp]
            k = ptr[rp]
            ndl = len(dl)
            while True:
                if k >= ndl:
                    idx = lengths[rp]
                    break
                q = dl[k]
                g = offsets[rp] + q
                available = True
                for e in range(indptr_l[g], indptr_l[g + 1]):
                    srp = f_src_pos[e]
                    sl = f_src[e] - offsets[srp]
                    if srp == rp:
                        if not sl < q:
                            available = False
                            break
                    elif not sl < snapshot[srp]:
                        available = False
                        break
                if not available:
                    idx = q
                    break
                k += 1
                idx = q + 1
            ptr[rp] = k
            progressed += idx - produced[rp]
            produced[rp] = idx
        done += progressed
        in_flight = sum(produced[i] - snapshot[i] for i in range(nr))
        if in_flight > max_queue:
            max_queue = in_flight
        if progressed == 0:
            raise RuntimeError("replay stalled; trace dependency graph has a cycle")
    return rounds, max_queue
