"""Clock-condition violation scans.

The clock condition (paper Eq. 1) requires ``t_recv >= t_send + l_min``
for every (real or logical) message.  Violations — receives apparently
happening before their sends — are what break trace visualizers
(backward arrows in VAMPIR) and automatic analyzers (KOJAK/Scalasca).

Three scans, all vectorized over whole timestamp columns:

* :func:`scan_messages` — point-to-point messages;
* :func:`scan_collectives` — collectives expanded to logical messages
  via :mod:`repro.sync.collectives_map`;
* :func:`scan_pomp` — OpenMP/POMP region semantics (fork first, join
  last, barrier overlap; Fig. 2c/2d and Fig. 8).

``l_min`` may be given as 0 (pure event-order reversal, the quantity in
Fig. 7's front row), a scalar, a per-rank-pair matrix, or a callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.sync.collectives_map import logical_messages
from repro.tracing.events import EventType
from repro.tracing.trace import MessageTable, Trace

__all__ = [
    "LminSpec",
    "resolve_lmin",
    "ViolationReport",
    "PompRegionReport",
    "scan_messages",
    "scan_collectives",
    "scan_pomp",
    "scan_trace",
    "violations_by_pair",
]

LminSpec = Union[float, np.ndarray, Callable[[int, int], float]]


def _encode_pairs(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack (src, dst) rank pairs into single int64 keys.

    Returns the key array and the encoding width (``dst`` values span
    ``[0, width)``), so ``key = src * width + dst`` decodes uniquely.
    """
    width = int(dst.max()) + 1
    return src.astype(np.int64) * width + dst.astype(np.int64), width


def resolve_lmin(lmin: LminSpec, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Per-message minimum-latency floor from any accepted spec form.

    Callables (which the docstring contract requires to be pure) are
    evaluated once per *unique* (src, dst) pair and broadcast back over
    the messages — on an N-message table with P distinct pairs that is P
    Python calls instead of N.
    """
    if callable(lmin):
        src = np.asarray(src)
        dst = np.asarray(dst)
        if src.size == 0:
            return np.zeros(0, dtype=np.float64)
        keys, width = _encode_pairs(src, dst)
        uniq, inverse = np.unique(keys, return_inverse=True)
        per_pair = np.array(
            [lmin(int(k // width), int(k % width)) for k in uniq], dtype=np.float64
        )
        return per_pair[inverse]
    if isinstance(lmin, np.ndarray):
        if lmin.ndim != 2:
            raise ConfigurationError("l_min matrix must be 2-D (nranks x nranks)")
        return lmin[src, dst].astype(np.float64)
    return np.full(src.shape, float(lmin))


def lmin_matrix_from_trace(trace: Trace, latency_model) -> np.ndarray:
    """Build an ``l_min`` matrix from trace metadata locations.

    Requires ``trace.meta["locations"]`` (written by
    :class:`repro.mpi.runtime.MpiWorld`) and a latency model.
    """
    from repro.cluster.topology import Location

    locs_raw = trace.meta.get("locations")
    if locs_raw is None:
        raise ConfigurationError("trace metadata has no 'locations'; cannot derive l_min")
    locs = [Location(*map(int, entry)) for entry in locs_raw]
    n = len(locs)
    mat = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            if i != j:
                mat[i, j] = latency_model.min_latency(locs[i], locs[j])
    return mat


@dataclass
class ViolationReport:
    """Outcome of one message scan.

    Attributes
    ----------
    kind:
        "p2p" or "collective".
    checked:
        Messages examined.
    violated:
        Messages with ``recv_ts < send_ts + l_min``.
    indices:
        Positions of violating messages in the scanned table.
    worst:
        Largest violation magnitude ``(send_ts + l_min) - recv_ts``
        observed, seconds (0 if none).
    """

    kind: str
    checked: int
    violated: int
    indices: np.ndarray
    worst: float = 0.0

    @property
    def rate(self) -> float:
        """Fraction of checked messages violating the condition."""
        return self.violated / self.checked if self.checked else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind}: {self.violated}/{self.checked} "
            f"({100 * self.rate:.2f} %) clock-condition violations"
        )


def scan_messages(messages: MessageTable, lmin: LminSpec = 0.0) -> ViolationReport:
    """Check Eq. 1 over a message table."""
    if len(messages) == 0:
        return ViolationReport("p2p", 0, 0, np.empty(0, dtype=np.int64))
    floors = resolve_lmin(lmin, messages.src, messages.dst)
    slack = messages.recv_ts - (messages.send_ts + floors)
    mask = slack < 0
    idx = np.nonzero(mask)[0]
    worst = float(-slack[idx].min()) if idx.size else 0.0
    return ViolationReport("p2p", len(messages), int(idx.size), idx, worst)


def scan_collectives(trace: Trace, lmin: LminSpec = 0.0) -> tuple[ViolationReport, MessageTable]:
    """Expand collectives to logical messages and check Eq. 1.

    Returns the report and the logical-message table it was computed on
    (callers often need both, e.g. Fig. 7 counts logical messages too).
    """
    logical = logical_messages(trace.collectives())
    report = scan_messages(logical, lmin)
    return (
        ViolationReport("collective", report.checked, report.violated, report.indices, report.worst),
        logical,
    )


def scan_trace(
    trace: Trace, lmin: LminSpec = 0.0, include_collectives: bool = True
) -> dict[str, ViolationReport]:
    """Combined p2p + collective scan of an MPI trace."""
    out = {"p2p": scan_messages(trace.messages(strict=False), lmin)}
    if include_collectives:
        out["collective"], _ = scan_collectives(trace, lmin)
    return out


def violations_by_pair(
    messages: MessageTable, lmin: LminSpec = 0.0
) -> dict[tuple[int, int], tuple[int, int]]:
    """Per-(src, dst) breakdown: ``{(src, dst): (violated, checked)}``.

    The diagnostic view behind "which clock pair is responsible": on a
    multi-node job, violations concentrate on the rank pairs whose
    nodes' clocks disagree the most at the traced window.
    """
    if len(messages) == 0:
        return {}
    floors = resolve_lmin(lmin, messages.src, messages.dst)
    bad = messages.recv_ts - (messages.send_ts + floors) < 0
    # One grouping pass instead of a boolean mask per unique pair:
    # np.unique labels every message with its pair id, bincount
    # aggregates totals and violation counts in O(n).
    keys, width = _encode_pairs(messages.src, messages.dst)
    uniq, inverse = np.unique(keys, return_inverse=True)
    checked = np.bincount(inverse, minlength=uniq.size)
    violated = np.bincount(inverse[bad], minlength=uniq.size)
    return {
        (int(k // width), int(k % width)): (int(v), int(c))
        for k, v, c in zip(uniq, violated, checked)
    }


# ----------------------------------------------------------------------
# OpenMP / POMP
# ----------------------------------------------------------------------
@dataclass
class PompRegionReport:
    """Violation statistics over the parallel regions of an OpenMP trace.

    Mirrors Fig. 8: per-region-instance flags for entry (fork not the
    first event of the region), exit (join not the last), and implicit
    barrier (some thread left before another entered), plus the
    aggregate "any" percentage.
    """

    regions: int
    entry_violations: int
    exit_violations: int
    barrier_violations: int
    any_violations: int
    instances: dict[int, dict[str, bool]] = field(default_factory=dict)

    def pct(self, kind: str) -> float:
        """Percentage of regions with a violation of ``kind``
        ('entry', 'exit', 'barrier', or 'any')."""
        if self.regions == 0:
            return 0.0
        count = {
            "entry": self.entry_violations,
            "exit": self.exit_violations,
            "barrier": self.barrier_violations,
            "any": self.any_violations,
        }[kind]
        return 100.0 * count / self.regions


def scan_pomp(trace: Trace, sync_lmin: float = 0.0) -> PompRegionReport:
    """Scan an OpenMP (POMP) trace for region-semantics violations.

    For every parallel-region instance (grouped by the ``d`` attribute
    of the POMP events):

    * **entry**: the master's ``OMP_FORK`` timestamp must not exceed any
      thread's ``OMP_PAR_ENTER`` (fork is the region's first event);
    * **exit**: the master's ``OMP_JOIN`` timestamp must be at least
      every thread's ``OMP_PAR_EXIT`` (join is the last event);
    * **barrier**: execution of the implicit barrier must overlap —
      every ``OMP_BARRIER_EXIT`` must be >= every other thread's
      ``OMP_BARRIER_ENTER`` (+ ``sync_lmin``), else one thread left the
      barrier before another entered it (Fig. 2d).
    """
    # Gather all ranks' events into flat columns once, then group each
    # POMP event type by region instance (the ``d`` attribute) with a
    # stable sort — one vectorized pass per type instead of a Python
    # loop over every event of every rank.  Stable sorting preserves
    # (rank, log-position) order within an instance, matching the order
    # the old per-rank append loop produced.
    logs = [trace.logs[rank] for rank in trace.ranks]
    if logs:
        ts = np.concatenate([log.timestamps for log in logs])
        et = np.concatenate([log.etypes for log in logs])
        dd = np.concatenate([log.d for log in logs])
    else:  # pragma: no cover - degenerate empty trace
        ts = np.empty(0, dtype=np.float64)
        et = dd = np.empty(0, dtype=np.int64)

    def _last_per_instance(kind: EventType) -> dict[int, float]:
        idx = np.nonzero(et == int(kind))[0]
        # dict comprehension: a later duplicate overwrites, like the
        # old sequential store did.
        return {int(i): float(t) for i, t in zip(dd[idx], ts[idx])}

    _EMPTY = np.empty(0, dtype=np.float64)

    def _grouped_per_instance(kind: EventType) -> dict[int, np.ndarray]:
        idx = np.nonzero(et == int(kind))[0]
        dv = dd[idx]
        tv = ts[idx].astype(np.float64, copy=False)
        order = np.argsort(dv, kind="stable")
        dv = dv[order]
        tv = tv[order]
        insts, starts = np.unique(dv, return_index=True)
        bounds = np.append(starts[1:], dv.size)
        return {int(i): tv[s:e] for i, s, e in zip(insts, starts, bounds)}

    forks = _last_per_instance(EventType.OMP_FORK)
    joins = _last_per_instance(EventType.OMP_JOIN)
    par_enter = _grouped_per_instance(EventType.OMP_PAR_ENTER)
    par_exit = _grouped_per_instance(EventType.OMP_PAR_EXIT)
    bar_enter = _grouped_per_instance(EventType.OMP_BARRIER_ENTER)
    bar_exit = _grouped_per_instance(EventType.OMP_BARRIER_EXIT)

    instances: dict[int, dict[str, bool]] = {}
    entry = exit_ = barrier = any_ = 0
    all_instances = (
        set(forks) | set(joins) | set(par_enter) | set(par_exit)
        | set(bar_enter) | set(bar_exit)
    )
    for inst in sorted(all_instances):
        flags = {"entry": False, "exit": False, "barrier": False}
        fork_ts = forks.get(inst)
        join_ts = joins.get(inst)
        b_in = bar_enter.get(inst, _EMPTY)
        b_out = bar_exit.get(inst, _EMPTY)
        region_events = np.concatenate(
            (par_enter.get(inst, _EMPTY), par_exit.get(inst, _EMPTY), b_in, b_out)
        )
        if fork_ts is not None and region_events.size and fork_ts > region_events.min():
            flags["entry"] = True
        if join_ts is not None and region_events.size and join_ts < region_events.max():
            flags["exit"] = True
        if b_in.size >= 2 and b_out.size >= 2:
            # Violation iff some thread's exit precedes another's enter:
            # compare each exit to the max enter of the *other* threads.
            order = np.argsort(b_in)
            top, second = int(order[-1]), int(order[-2])
            for i in range(b_out.size):
                other_max = b_in[second] if i == top else b_in[top]
                if b_out[i] + 1e-18 < other_max + sync_lmin:
                    flags["barrier"] = True
                    break
        instances[inst] = flags
        entry += flags["entry"]
        exit_ += flags["exit"]
        barrier += flags["barrier"]
        any_ += any(flags.values())

    return PompRegionReport(
        regions=len(instances),
        entry_violations=entry,
        exit_violations=exit_,
        barrier_violations=barrier,
        any_violations=any_,
        instances=instances,
    )
