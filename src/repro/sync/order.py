"""Happened-before dependencies and replay order over a trace.

Logical-clock algorithms (Lamport, vector, CLC) process events in an
order consistent with the happened-before relation: a rank's events in
log order, and every receive after its matching send.  This module
extracts those dependencies once — sparsely, since only receives and
collective exits have remote predecessors — and provides a Kahn
topological schedule shared by all three algorithms.

Dependency kinds:

* ``RECV`` event -> its matching ``SEND`` event;
* ``COLL_EXIT`` event -> the ``COLL_ENTER`` of every *other* member of
  the instance whose flavor constrains it (root only for 1-to-N, all
  for N-to-N, see :mod:`repro.sync.collectives_map`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

import numpy as np

from repro.errors import SynchronizationError
from repro.tracing.events import COLLECTIVE_FLAVORS, CollectiveFlavor, EventType
from repro.tracing.trace import Trace

__all__ = ["EventRef", "build_dependencies", "replay_schedule"]

EventRef = tuple[int, int]  # (rank, index into that rank's log)


def build_dependencies(
    trace: Trace, include_collectives: bool = True
) -> dict[EventRef, list[EventRef]]:
    """Sparse map from an event to its remote happened-before predecessors."""
    deps: dict[EventRef, list[EventRef]] = {}

    messages = trace.messages(strict=False)
    for k in range(len(messages)):
        ref = (int(messages.dst[k]), int(messages.recv_idx[k]))
        deps.setdefault(ref, []).append((int(messages.src[k]), int(messages.send_idx[k])))

    if include_collectives:
        for rec in trace.collectives():
            flavor = COLLECTIVE_FLAVORS[rec.op]
            ranks = rec.ranks
            n = ranks.size
            if n < 2:
                continue
            root_pos = (
                int(np.nonzero(ranks == rec.root)[0][0])
                if flavor is not CollectiveFlavor.N_TO_N
                else -1
            )
            for i in range(n):
                if flavor is CollectiveFlavor.ONE_TO_N:
                    senders = [root_pos] if i != root_pos else []
                elif flavor is CollectiveFlavor.N_TO_ONE:
                    senders = [j for j in range(n) if j != i] if i == root_pos else []
                elif flavor is CollectiveFlavor.PREFIX:
                    senders = list(range(i))  # lower ranks only (MPI_Scan)
                else:
                    senders = [j for j in range(n) if j != i]
                if not senders:
                    continue
                ref = (int(ranks[i]), int(rec.exit_idx[i]))
                deps.setdefault(ref, []).extend(
                    (int(ranks[j]), int(rec.enter_idx[j])) for j in senders
                )
    return deps


def replay_schedule(
    trace: Trace, deps: dict[EventRef, list[EventRef]] | None = None
) -> Iterator[EventRef]:
    """Yield every event of the trace in a happened-before-consistent order.

    Kahn's algorithm over the sparse dependency map plus implicit local
    program-order edges.  Raises :class:`SynchronizationError` if the
    graph has a cycle (possible only with a corrupt trace).
    """
    if deps is None:
        deps = build_dependencies(trace)

    lengths = {rank: len(trace.logs[rank]) for rank in trace.ranks}
    # Remaining unmet remote deps per event.
    pending: dict[EventRef, int] = {}
    # Reverse edges: once an event is emitted, which events it unblocks.
    unblocks: dict[EventRef, list[EventRef]] = {}
    for ref, sources in deps.items():
        pending[ref] = len(sources)
        for src in sources:
            unblocks.setdefault(src, []).append(ref)

    emitted: dict[EventRef, bool] = {}
    cursor = {rank: 0 for rank in trace.ranks}  # next local index to try
    ready: deque[int] = deque(rank for rank in trace.ranks if lengths[rank] > 0)
    in_ready = {rank: True for rank in ready}
    total = sum(lengths.values())
    count = 0

    def local_ready(rank: int) -> bool:
        idx = cursor[rank]
        if idx >= lengths[rank]:
            return False
        return pending.get((rank, idx), 0) == 0

    while ready:
        rank = ready.popleft()
        in_ready[rank] = False
        # Drain this rank as far as possible.
        while local_ready(rank):
            idx = cursor[rank]
            cursor[rank] = idx + 1
            ref = (rank, idx)
            emitted[ref] = True
            count += 1
            yield ref
            for dependent in unblocks.get(ref, ()):
                pending[dependent] -= 1
                if pending[dependent] == 0:
                    dep_rank = dependent[0]
                    # Only wake the rank if this is its next event.
                    if cursor[dep_rank] == dependent[1] and not in_ready.get(dep_rank):
                        ready.append(dep_rank)
                        in_ready[dep_rank] = True
        # If the rank stalled on a remote dep, it will be re-queued when
        # that dep is emitted (handled above).

    if count != total:
        raise SynchronizationError(
            f"replay schedule incomplete ({count}/{total} events); "
            "the trace's happened-before graph has a cycle or dangling dependency"
        )
