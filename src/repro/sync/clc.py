"""The controlled logical clock (CLC) with forward and backward amortization.

Section V: *"the controlled logical clock (CLC) algorithm developed by
one of the authors retroactively corrects clock condition violations in
event traces of message-passing applications by shifting message events
in time while trying to preserve the length of intervals between local
events.  ...  If the clock condition is violated for a send-receive
event pair, the receive event is moved forward in time.  To preserve
the length of intervals between local events, events following or
immediately preceding the corrected event are moved forward as well.
These adjustments are called forward and backward amortization."*

Algorithm (following Rabenseifner [28] and the collective extension of
Becker et al. [30]):

**Forward pass** — events are processed in a happened-before-consistent
replay order (:mod:`repro.sync.order`).  Each event's corrected time is

.. math::

    LC'(e) = \\max\\bigl( LC(e),\\;
                         LC'(pred(e)) + \\gamma\\,\\delta(e),\\;
                         \\max_{s \\in deps(e)} LC'(s) + l_{min}(s, e) \\bigr)

where ``pred(e)`` is the previous local event, ``delta(e)`` the original
local interval, and ``deps(e)`` the matching send (for receives) or the
constraining collective enters (for collective exits).  The control
factor ``gamma`` slightly below 1 is the *forward amortization*: after a
jump the corrected clock keeps (gamma-compressed) local intervals and
thereby glides back toward the original timestamps instead of staying
shifted forever.  The ``LC(e)`` term guarantees the corrected clock
never runs behind the measured one.

**Backward pass** — a jump at a receive leaves a compressed interval
*before* it.  Backward amortization pre-spreads each jump linearly over
the preceding ``amortization_window`` seconds of the same rank, subject
to two caps that keep the result legal: a send event may never be pushed
past ``LC'(matching receive) - l_min`` (it would create a *new*
violation), and corrected times must stay monotone per rank.

The corrected trace provably satisfies the clock condition: receives sit
at or above their send constraints after the forward pass, and the
backward pass only ever moves events *up* while respecting the send
caps.  The accuracy of the result still depends on the input timestamps
(Section V), which is why it should run after linear interpolation —
the pipeline of :mod:`repro.core.pipeline`.

**Implementation note.**  The default entry points run on the trace's
:class:`repro.sync.schedule.CompiledSchedule` (array-native kernels,
cached per trace); :meth:`ControlledLogicalClock.correct_reference` and
:func:`naive_shift_correct_reference` keep the original event-by-event
scalar formulation and serve as the bit-for-bit equivalence oracle in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SynchronizationError
from repro.sync.order import build_dependencies, replay_schedule
from repro.telemetry import ensure_telemetry
from repro.sync.schedule import CompiledSchedule, clc_forward, send_caps_kernel
from repro.sync.violations import LminSpec
from repro.tracing.trace import Trace

__all__ = [
    "ControlledLogicalClock",
    "ClcResult",
    "naive_shift_correct",
    "naive_shift_correct_reference",
    "compute_clc_stats",
]


@dataclass
class ClcResult:
    """Outcome of one CLC application."""

    trace: Trace
    corrected_events: int  # events whose timestamp changed
    total_events: int
    jumps: int  # events where a remote constraint was binding
    max_jump: float  # largest single forward shift, seconds
    max_shift: float  # largest total shift of any event, seconds
    #: Largest relative change of a local interval, with sub-microsecond
    #: intervals measured against a 1 us floor (a 50 ns gap stretched by
    #: 2 us would otherwise read as 4000 % while being harmless).
    interval_distortion: float
    #: Largest absolute change of a local interval, seconds.
    max_interval_growth: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CLC: {self.jumps} jumps, {self.corrected_events}/{self.total_events} "
            f"events moved, max shift {self.max_shift * 1e6:.3f} us"
        )


#: Denominator floor for the relative interval-distortion metric.
_DISTORTION_FLOOR = 1.0e-6


def compute_clc_stats(
    trace: Trace,
    original: dict[int, np.ndarray],
    corrected: dict[int, np.ndarray],
    jumps_count: int,
    max_jump: float,
    meta: dict,
) -> ClcResult:
    """Assemble a :class:`ClcResult` from before/after timestamp arrays."""
    corrected_events = 0
    max_shift = 0.0
    distortion = 0.0
    growth = 0.0
    for rank in trace.ranks:
        shift = corrected[rank] - original[rank]
        corrected_events += int(np.count_nonzero(shift > 1e-15))
        if shift.size:
            max_shift = max(max_shift, float(shift.max()))
        if original[rank].size > 1:
            d_orig = np.diff(original[rank])
            d_corr = np.diff(corrected[rank])
            change = np.abs(d_corr - d_orig)
            if change.size:
                growth = max(growth, float(change.max()))
                rel = change / np.maximum(d_orig, _DISTORTION_FLOOR)
                distortion = max(distortion, float(rel.max()))
    out = trace.with_timestamps(corrected)
    out.meta["clc"] = meta
    return ClcResult(
        trace=out,
        corrected_events=corrected_events,
        total_events=trace.total_events(),
        jumps=jumps_count,
        max_jump=max_jump,
        max_shift=max_shift,
        interval_distortion=distortion,
        max_interval_growth=growth,
    )


class ControlledLogicalClock:
    """Configured CLC corrector.

    Parameters
    ----------
    gamma:
        Control factor in (0, 1]: fraction of each original local
        interval preserved after a jump.  1.0 never returns to the
        original timeline (pure interval preservation); the default
        0.99 glides back at 1 % of elapsed local time.
    amortization_window:
        Backward-amortization span in seconds; ``0`` disables the
        backward pass.  ``None`` picks ``50 x`` the largest jump, a
        span wide enough that local intervals change only slightly.
    include_collectives:
        Also enforce the logical clock conditions of collective
        operations (the [30] extension).
    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder` recording per-pass
        spans (``sync.clc.compile``, ``sync.clc.forward``,
        ``sync.clc.amortize``) and jump counters, or ``None``.
    """

    def __init__(
        self,
        gamma: float = 0.99,
        amortization_window: Optional[float] = None,
        include_collectives: bool = True,
        telemetry=None,
    ) -> None:
        if not 0.0 < gamma <= 1.0:
            raise SynchronizationError(f"gamma must be in (0, 1], got {gamma}")
        if amortization_window is not None and amortization_window < 0:
            raise SynchronizationError("amortization_window must be non-negative")
        self.gamma = gamma
        self.amortization_window = amortization_window
        self.include_collectives = include_collectives
        self.telemetry = ensure_telemetry(telemetry)

    # ------------------------------------------------------------------
    def correct(self, trace: Trace, lmin: LminSpec = 0.0) -> ClcResult:
        """Apply the CLC to ``trace``; returns the corrected trace + stats."""
        with self.telemetry.span("sync.clc.compile"):
            schedule = trace.compiled_schedule(self.include_collectives)
        return self.correct_with_schedule(trace, schedule, lmin)

    def correct_with_dependencies(
        self,
        trace: Trace,
        deps: "dict[tuple[int, int], list[tuple[int, int]]]",
        lmin: LminSpec = 0.0,
    ) -> ClcResult:
        """Apply the CLC under an explicit happened-before constraint set.

        ``deps`` maps an event reference ``(rank, index)`` to the remote
        events that must precede it by ``lmin``.  This is the extension
        point for non-message semantics — e.g. the POMP constraints of
        :func:`repro.openmp.correction.pomp_clc`.
        """
        schedule = CompiledSchedule.from_dependencies(trace, deps)
        return self.correct_with_schedule(trace, schedule, lmin)

    def correct_with_schedule(
        self, trace: Trace, schedule: CompiledSchedule, lmin: LminSpec = 0.0
    ) -> ClcResult:
        """Apply the CLC on a pre-compiled happened-before schedule."""
        tele = self.telemetry
        edge_lmin = schedule.edge_lmin(lmin)
        original = {rank: trace.logs[rank].timestamps for rank in trace.ranks}
        orig_flat = schedule.flatten(original)

        with tele.span("sync.clc.forward", events=orig_flat.size):
            corr_flat, jumps, njumps, max_jump = clc_forward(
                schedule, orig_flat, edge_lmin, self.gamma
            )
        corrected = schedule.split(corr_flat)
        if tele.enabled:
            tele.count("sync.clc.events", orig_flat.size)
            tele.count("sync.clc.jumps", njumps)
            # The in-memory kernel holds every event at once; the gauge
            # makes the memory model comparable with the streaming path.
            tele.gauge_max("sync.clc.peak_resident_events", orig_flat.size)

        window = self.amortization_window
        if window is None:
            window = self._auto_window(jumps)
        if window > 0:
            with tele.span("sync.clc.amortize", window=window):
                caps = schedule.split(send_caps_kernel(schedule, corr_flat, edge_lmin))
                for rank in trace.ranks:
                    if jumps[rank]:
                        corrected[rank] = _amortize_backward(
                            corrected[rank], jumps[rank], window, caps.get(rank)
                        )

        return compute_clc_stats(
            trace,
            original,
            corrected,
            jumps_count=njumps,
            max_jump=max_jump,
            meta={"gamma": self.gamma, "window": window, "jumps": njumps},
        )

    # ------------------------------------------------------------------
    # Scalar reference implementation (the equivalence-test oracle)
    # ------------------------------------------------------------------
    def correct_reference(self, trace: Trace, lmin: LminSpec = 0.0) -> ClcResult:
        """Event-by-event scalar CLC; bit-identical oracle for :meth:`correct`."""
        deps = build_dependencies(trace, include_collectives=self.include_collectives)
        return self.correct_with_dependencies_reference(trace, deps, lmin)

    def correct_with_dependencies_reference(
        self,
        trace: Trace,
        deps: "dict[tuple[int, int], list[tuple[int, int]]]",
        lmin: LminSpec = 0.0,
    ) -> ClcResult:
        """Scalar formulation of :meth:`correct_with_dependencies` (oracle)."""
        lmin_fn = _lmin_callable(lmin)

        original = {rank: trace.logs[rank].timestamps for rank in trace.ranks}
        corrected = {rank: original[rank].copy() for rank in trace.ranks}
        jumps: dict[int, list[tuple[int, float]]] = {rank: [] for rank in trace.ranks}
        max_jump = 0.0
        njumps = 0

        # ---- forward pass --------------------------------------------
        for rank, idx in replay_schedule(trace, deps):
            orig = original[rank]
            corr = corrected[rank]
            value = orig[idx]
            if idx > 0:
                delta = orig[idx] - orig[idx - 1]
                follow = corr[idx - 1] + self.gamma * delta
                if follow > value:
                    value = follow
            remote_floor = -np.inf
            for dep_rank, dep_idx in deps.get((rank, idx), ()):
                floor = corrected[dep_rank][dep_idx] + lmin_fn(dep_rank, rank)
                if floor > remote_floor:
                    remote_floor = floor
            if remote_floor > value:
                jump = remote_floor - value
                value = remote_floor
                jumps[rank].append((idx, jump))
                njumps += 1
                if jump > max_jump:
                    max_jump = jump
            corr[idx] = value

        # ---- backward amortization -----------------------------------
        window = self.amortization_window
        if window is None:
            window = self._auto_window(jumps)
        if window > 0:
            send_caps = self._send_caps_reference(trace, deps, corrected, lmin_fn)
            for rank in trace.ranks:
                if jumps[rank]:
                    corrected[rank] = _amortize_backward(
                        corrected[rank], jumps[rank], window, send_caps.get(rank)
                    )

        # ---- statistics & result --------------------------------------
        return compute_clc_stats(
            trace,
            original,
            corrected,
            jumps_count=njumps,
            max_jump=max_jump,
            meta={"gamma": self.gamma, "window": window, "jumps": njumps},
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _auto_window(jumps: "dict[int, list[tuple[int, float]]]") -> float:
        biggest = 0.0
        for items in jumps.values():
            for _, jump in items:
                biggest = max(biggest, jump)
        # Span the jump over a region much wider than the jump itself so
        # local interval lengths change only slightly.
        return 50.0 * biggest if biggest > 0 else 0.0

    @staticmethod
    def _send_caps_reference(trace, deps, corrected, lmin_fn) -> dict[int, np.ndarray]:
        """Upper bound per event: sends must stay below partner receive - l_min."""
        caps: dict[int, np.ndarray] = {
            rank: np.full(len(trace.logs[rank]), np.inf) for rank in trace.ranks
        }
        for (dst_rank, dst_idx), sources in deps.items():
            recv_time = corrected[dst_rank][dst_idx]
            for src_rank, src_idx in sources:
                lm = lmin_fn(src_rank, dst_rank)
                cap = recv_time - lm
                # Same conservative rounding as ``send_caps_kernel``:
                # the cap must satisfy ``cap + l_min <= recv`` exactly.
                while cap + lm > recv_time:
                    cap = float(np.nextafter(cap, -np.inf))
                if cap < caps[src_rank][src_idx]:
                    caps[src_rank][src_idx] = cap
        return caps


def naive_shift_correct(trace: Trace, lmin: LminSpec = 0.0) -> ClcResult:
    """Lamport-style correction *without* amortization (baseline).

    Section V's first option: "If a receive event appears before its
    corresponding send event ... the receive event is shifted forward in
    time according to the clock value exchanged."  Each violated receive
    jumps to ``send + l_min``; subsequent local events are only clamped
    for monotonicity (they keep their original timestamps when possible).

    The result satisfies the clock condition but *collapses local
    intervals to zero* behind every jump — events pile up at the
    corrected receive time — which is precisely the distortion the CLC's
    forward/backward amortization exists to avoid.  Use it as the
    comparison point in ablations.
    """
    schedule = trace.compiled_schedule(True)
    edge_lmin = schedule.edge_lmin(lmin)
    original = {rank: trace.logs[rank].timestamps for rank in trace.ranks}
    orig_flat = schedule.flatten(original)
    corr_flat, _jumps, njumps, max_jump = clc_forward(
        schedule, orig_flat, edge_lmin, gamma=None
    )
    return compute_clc_stats(
        trace,
        original,
        schedule.split(corr_flat),
        jumps_count=njumps,
        max_jump=max_jump,
        meta={"naive_shift": True, "jumps": njumps},
    )


def naive_shift_correct_reference(trace: Trace, lmin: LminSpec = 0.0) -> ClcResult:
    """Scalar formulation of :func:`naive_shift_correct` (oracle)."""
    deps = build_dependencies(trace, include_collectives=True)
    lmin_fn = _lmin_callable(lmin)
    original = {rank: trace.logs[rank].timestamps for rank in trace.ranks}
    corrected = {rank: original[rank].copy() for rank in trace.ranks}
    njumps = 0
    max_jump = 0.0
    for rank, idx in replay_schedule(trace, deps):
        corr = corrected[rank]
        value = original[rank][idx]
        if idx > 0 and corr[idx - 1] > value:
            value = corr[idx - 1]  # monotonicity clamp only
        remote_floor = -np.inf
        for dep_rank, dep_idx in deps.get((rank, idx), ()):
            floor = corrected[dep_rank][dep_idx] + lmin_fn(dep_rank, rank)
            if floor > remote_floor:
                remote_floor = floor
        if remote_floor > value:
            jump = remote_floor - value
            value = remote_floor
            njumps += 1
            max_jump = max(max_jump, jump)
        corr[idx] = value
    return compute_clc_stats(
        trace,
        original,
        corrected,
        jumps_count=njumps,
        max_jump=max_jump,
        meta={"naive_shift": True, "jumps": njumps},
    )


def _amortize_backward(
    times: np.ndarray,
    jump_list: list[tuple[int, float]],
    window: float,
    caps: Optional[np.ndarray],
) -> np.ndarray:
    """Pre-spread each jump linearly over the preceding window.

    For a jump of size ``J`` at event ``k`` (corrected time ``T``), the
    desired advance of an earlier event at time ``t`` is
    ``J * (1 - (T - t)/window)`` clipped to ``[0, J]``; multiple jumps
    combine by maximum.  Caps (send constraints) and per-rank
    monotonicity are enforced in a single reverse scan: processing
    events right-to-left, the advance of event ``i`` may not exceed
    ``advance(i+1) + (t(i+1) - t(i))`` (monotonicity) nor
    ``caps[i] - t(i)`` (clock condition of its own sends).
    """
    n = times.size
    ks = np.array([k for k, _ in jump_list], dtype=np.int64)
    js = np.array([jump for _, jump in jump_list], dtype=np.float64)
    # Anchor each ramp at the event's *pre-jump* time: an event just
    # before where the receive originally sat advances by (almost) the
    # full jump, events `window` earlier don't move at all.  One
    # (jumps, events) matrix evaluates every ramp at every event — the
    # elementwise operations and the clip are exactly the per-jump
    # formulation's, and max over jumps is exact, so the combined
    # desired advance is bit-identical to folding jumps one at a time.
    anchors = times[ks] - js
    ramp = js[:, None] * (1.0 - (anchors[:, None] - times[None, :]) / window)
    np.maximum(ramp, 0.0, out=ramp)
    np.minimum(ramp, js[:, None], out=ramp)
    # A jump only pre-spreads over *earlier* events of its rank.
    for row, k in enumerate(ks.tolist()):
        ramp[row, k:] = 0.0
    desired = ramp.max(axis=0)

    if not desired.any():
        return times

    allowed = desired
    if caps is not None:
        headroom = caps - times
        np.minimum(allowed, np.maximum(headroom, 0.0), out=allowed)
    # Reverse monotonicity scan: advance may grow by at most the original
    # gap to the next event (which itself might be the jump event with
    # advance 0 — the ramp is anchored there by construction).  The scan
    # is inherently sequential; it runs on plain lists because Python
    # float arithmetic is the same IEEE double as numpy scalars.
    tl = times.tolist()
    al = allowed.tolist()
    for i in range(n - 2, -1, -1):
        limit = al[i + 1] + (tl[i + 1] - tl[i])
        if al[i] > limit:
            al[i] = limit
        if al[i] < 0.0:
            # A negative original gap (non-monotone recorded log, e.g.
            # an NTP step backwards) makes the limit negative; an
            # advance must never turn into a retreat — that would move
            # a receive below send + l_min and re-violate Eq. 1.
            al[i] = 0.0
    out = times + np.asarray(al, dtype=np.float64)
    if caps is not None:
        # ``times + (caps - times)`` can round one ulp above ``caps``;
        # clamp exactly so verifiers using strict comparison stay happy
        # (never below the original time, though).
        np.minimum(out, np.maximum(caps, times), out=out)
    # ``t[i] + al[i]`` rounds independently per event, so an advance
    # sitting exactly on the monotonicity limit can land one ulp above
    # its successor (same for the caps clamp above).  Re-clamp on the
    # summed values; the ``>= t[i]`` guard leaves a non-monotone
    # recorded log as-is instead of dragging events backward.
    ol = out.tolist()
    for i in range(n - 2, -1, -1):
        if ol[i] > ol[i + 1] >= tl[i]:
            ol[i] = ol[i + 1]
    return np.asarray(ol, dtype=np.float64)


def _lmin_callable(lmin: LminSpec):
    if callable(lmin):
        return lmin
    if isinstance(lmin, np.ndarray):
        return lambda s, d: float(lmin[s, d])
    value = float(lmin)
    return lambda s, d: value
