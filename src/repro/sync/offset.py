"""Offset measurement via Cristian's probabilistic remote clock reading.

Paper Eq. 2: the master sends a request at master time ``t1``; the
worker replies with its local time ``t0``; the reply arrives at master
time ``t2``.  Under the symmetric-delay assumption the master-minus-
worker offset is::

    o = t1 + (t2 - t1)/2 - t0

Because real delays are irregular, the exchange is repeated and the
round with the smallest round-trip time wins — the shorter the RTT, the
tighter the bound ``|error| <= (t2 - t1)/2 - l_min`` on the estimate.

:func:`measurement_protocol` is the in-simulation master/worker pair of
generator subroutines used at ``MPI_Init``/``MPI_Finalize`` by
:class:`repro.mpi.runtime.MpiWorld` (the Scalasca scheme) and by the
repeated-probe deviation experiments of Figs. 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

__all__ = ["OffsetMeasurement", "cristian_offset", "measurement_protocol", "SYNC_TAG"]

#: Reserved tag for measurement traffic.  Negative (like collective
#: tags) so no application or sub-communicator tag can collide; distinct
#: from every collective tag because those encode instance ids >= 0 as
#: ``-(instance + 2)`` while this sits far below any realistic count.
SYNC_TAG: int = -(1 << 40)


@dataclass(frozen=True)
class OffsetMeasurement:
    """Best-of-N Cristian estimate between the master and one worker.

    Attributes
    ----------
    worker:
        Worker rank.
    worker_time:
        Worker-clock time ``t0`` of the winning exchange — the abscissa
        ``w`` used by linear interpolation (Eq. 3).
    offset:
        Estimated master-minus-worker offset ``o`` (Eq. 2).
    rtt:
        Round-trip time of the winning exchange (master clock).
    repeats:
        Number of exchanges performed.
    """

    worker: int
    worker_time: float
    offset: float
    rtt: float
    repeats: int


def cristian_offset(t1: float, t0: float, t2: float) -> float:
    """Eq. 2: master-minus-worker offset from one exchange."""
    return t1 + (t2 - t1) / 2.0 - t0


def measurement_protocol(ctx, repeats: int = 10, master: int = 0):
    """In-simulation offset measurement (run by *every* rank).

    The master rank measures each worker sequentially; workers answer
    exactly ``repeats`` requests.  Returns, on the master, a dict
    ``{worker_rank: OffsetMeasurement}``; on workers, ``None``.

    All clock reads and messages use the *raw* context operations: the
    measurement is tool traffic and must not appear in the trace.
    """
    if ctx.rank == master:
        return (yield from _master_side(ctx, repeats, master))
    yield from _worker_side(ctx, repeats, master)
    return None


def _master_side(ctx, repeats: int, master: int) -> Generator:
    results: dict[int, OffsetMeasurement] = {}
    for worker in range(ctx.size):
        if worker == master:
            continue
        best: OffsetMeasurement | None = None
        for _ in range(repeats):
            t1 = yield from ctx.wtime()
            yield from ctx.send_raw(worker, tag=SYNC_TAG, nbytes=8)
            msg = yield from ctx.recv_raw(src=worker, tag=SYNC_TAG)
            t2 = yield from ctx.wtime()
            t0 = msg.payload
            rtt = t2 - t1
            if best is None or rtt < best.rtt:
                best = OffsetMeasurement(
                    worker=worker,
                    worker_time=t0,
                    offset=cristian_offset(t1, t0, t2),
                    rtt=rtt,
                    repeats=repeats,
                )
        results[worker] = best
    return results


def _worker_side(ctx, repeats: int, master: int) -> Generator:
    for _ in range(repeats):
        yield from ctx.recv_raw(src=master, tag=SYNC_TAG)
        t0 = yield from ctx.wtime()
        yield from ctx.send_raw(master, tag=SYNC_TAG, nbytes=8, payload=t0)
