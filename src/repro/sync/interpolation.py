"""Offset alignment and linear offset interpolation (paper Eq. 3).

Given offset measurements between an arbitrary master clock and each
worker clock, a :class:`ClockCorrection` maps worker-local timestamps
onto the master timeline:

* **alignment** (one measurement): assume zero drift difference; apply
  the constant measured offset — the paper's Fig. 4 baseline
  ("after an initial alignment of offsets");
* **linear interpolation** (two measurements, Eq. 3): assume constant
  drift difference::

      m(t) = t + (o2 - o1)/(w2 - w1) * (t - w1) + o1

  with ``(w_i, o_i)`` the worker time and master-minus-worker offset of
  measurement *i* — the paper's Fig. 5/6/7 correction (Scalasca scheme);
* **piecewise interpolation** (many measurements): the Doleschal-style
  "further option" of Section III.b — linear between consecutive
  measurements, extrapolating with the end slopes.

All three are the same object: a per-rank piecewise-linear offset
function over worker time, with 1, 2, or k knots.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import SynchronizationError
from repro.sync.offset import OffsetMeasurement
from repro.tracing.trace import Trace

__all__ = [
    "ClockCorrection",
    "align_offsets",
    "linear_interpolation",
    "piecewise_interpolation",
    "identity_correction",
]

Measurements = Mapping[int, OffsetMeasurement]


class ClockCorrection:
    """Per-rank piecewise-linear mapping onto the master timeline.

    Parameters
    ----------
    knots:
        ``{rank: (worker_times, offsets)}`` — for each corrected rank,
        sorted worker-clock times and the master-minus-worker offset at
        each.  A rank with one knot gets a constant offset; k >= 2 knots
        interpolate linearly and extrapolate with the end segments'
        slopes (Eq. 3 *is* the two-knot case).
    master:
        The rank whose clock defines the global timeline (mapped
        identically).  Ranks absent from ``knots`` (other than the
        master) are also mapped identically.
    """

    def __init__(
        self, knots: Mapping[int, tuple[np.ndarray, np.ndarray]], master: int = 0
    ) -> None:
        self.master = master
        self.knots: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for rank, (w, o) in knots.items():
            w = np.asarray(w, dtype=np.float64)
            o = np.asarray(o, dtype=np.float64)
            if w.ndim != 1 or w.shape != o.shape or w.size == 0:
                raise SynchronizationError(f"rank {rank}: malformed correction knots")
            if w.size > 1 and not np.all(np.diff(w) > 0):
                raise SynchronizationError(
                    f"rank {rank}: knot times must be strictly increasing"
                )
            self.knots[rank] = (w, o)

    # ------------------------------------------------------------------
    def offset_model(self, rank: int, t: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Predicted master-minus-worker offset at worker time ``t``."""
        arr = np.asarray(t, dtype=np.float64)
        scalar = arr.ndim == 0
        if rank == self.master or rank not in self.knots:
            out = np.zeros_like(arr)
            return float(out) if scalar else out
        w, o = self.knots[rank]
        if w.size == 1:
            out = np.full_like(arr, o[0])
            return float(out) if scalar else out
        # Segment index with end-slope extrapolation.
        idx = np.searchsorted(w, arr, side="right") - 1
        idx = np.clip(idx, 0, w.size - 2)
        slope = (o[idx + 1] - o[idx]) / (w[idx + 1] - w[idx])
        out = o[idx] + slope * (arr - w[idx])
        return float(out) if scalar else out

    def apply_rank(self, rank: int, timestamps: np.ndarray) -> np.ndarray:
        """Map a rank's local timestamps onto the master timeline."""
        ts = np.asarray(timestamps, dtype=np.float64)
        return ts + self.offset_model(rank, ts)

    def apply(self, trace: Trace) -> Trace:
        """Corrected copy of ``trace`` (every rank mapped to master time)."""
        new_ts = {
            rank: self.apply_rank(rank, trace.logs[rank].timestamps)
            for rank in trace.ranks
        }
        corrected = trace.with_timestamps(new_ts)
        corrected.meta["correction"] = repr(self)
        return corrected

    def drift_rate(self, rank: int) -> float:
        """Mean relative drift rate implied by the knots (0 if constant)."""
        if rank == self.master or rank not in self.knots:
            return 0.0
        w, o = self.knots[rank]
        if w.size < 2:
            return 0.0
        return float((o[-1] - o[0]) / (w[-1] - w[0]))

    def __repr__(self) -> str:
        sizes = {rank: w.size for rank, (w, _) in self.knots.items()}
        return f"ClockCorrection(master={self.master}, knots={sizes})"


def identity_correction(master: int = 0) -> ClockCorrection:
    """A correction that changes nothing (baseline)."""
    return ClockCorrection({}, master=master)


def align_offsets(measurements: Measurements, master: int = 0) -> ClockCorrection:
    """Constant-offset correction from a single measurement set.

    This is the "offset alignment only at program initialization" of
    Section IV: all clocks start from zero together, drift uncorrected.
    """
    if not measurements:
        raise SynchronizationError("alignment needs at least one measurement per worker")
    knots = {
        rank: (np.array([m.worker_time]), np.array([m.offset]))
        for rank, m in measurements.items()
    }
    return ClockCorrection(knots, master=master)


def linear_interpolation(
    init: Measurements, final: Measurements, master: int = 0
) -> ClockCorrection:
    """Two-point linear offset interpolation (Eq. 3, the Scalasca scheme).

    ``init`` and ``final`` must cover the same worker ranks; each worker
    gets the line through its two (worker_time, offset) measurements.
    """
    if set(init) != set(final):
        raise SynchronizationError(
            f"init/final measurement ranks differ: {sorted(init)} vs {sorted(final)}"
        )
    knots = {}
    for rank, m1 in init.items():
        m2 = final[rank]
        if m2.worker_time <= m1.worker_time:
            raise SynchronizationError(
                f"rank {rank}: final measurement does not follow init "
                f"({m2.worker_time} <= {m1.worker_time})"
            )
        knots[rank] = (
            np.array([m1.worker_time, m2.worker_time]),
            np.array([m1.offset, m2.offset]),
        )
    return ClockCorrection(knots, master=master)


def piecewise_interpolation(
    measurement_series: Sequence[Measurements], master: int = 0
) -> ClockCorrection:
    """Piecewise-linear correction from k >= 2 measurement sets.

    The "periodic offset measurements during global synchronization
    operations" option (Doleschal et al.) discussed in Section III.b:
    more knots bound the residual by the drift wander *between*
    measurements instead of over the whole run.
    """
    if len(measurement_series) < 2:
        raise SynchronizationError("piecewise interpolation needs >= 2 measurement sets")
    ranks = set(measurement_series[0])
    for ms in measurement_series[1:]:
        if set(ms) != ranks:
            raise SynchronizationError("all measurement sets must cover the same ranks")
    knots = {}
    for rank in ranks:
        w = np.array([ms[rank].worker_time for ms in measurement_series])
        o = np.array([ms[rank].offset for ms in measurement_series])
        order = np.argsort(w)
        w, o = w[order], o[order]
        if np.any(np.diff(w) <= 0):
            raise SynchronizationError(f"rank {rank}: duplicate measurement times")
        knots[rank] = (w, o)
    return ClockCorrection(knots, master=master)
