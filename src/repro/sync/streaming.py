"""Bounded-memory streaming CLC and violation scans over sharded traces.

The in-memory kernels of :mod:`repro.sync.clc` and
:mod:`repro.sync.violations` require the whole trace (and its
:class:`~repro.sync.schedule.CompiledSchedule`) resident in RAM.  The
functions here reproduce them **bit-identically** over a
:class:`~repro.tracing.store.ChunkedTrace` while keeping the peak
resident set at O(one shard per rank + carried boundary state):

* :func:`streaming_clc_correct` — the controlled logical clock.  The
  forward pass runs each rank's scalar recurrence (exactly the
  reference/kernel formulation, including the gamma-compressed
  follow-up rule and spontaneous-stretch positions) shard by shard,
  round-robin across ranks; a rank blocks when it reaches a receive
  whose matching send or a collective exit whose member enters have not
  been published yet.  Send caps spill to per-shard bucket files; the
  backward amortization is a single reverse pass over each flagged
  rank's shards with three scalar carries (the next shard's first
  advance, timestamp, and re-clamped output).  Statistics accumulate
  with boundary carries, and the corrected trace is written back out as
  a sharded store.
* :func:`streaming_scan_trace` — Eq. 1 violation scan.  Point-to-point
  matching streams with the same id/FIFO semantics as
  :meth:`Trace.messages(strict=False) <repro.tracing.trace.Trace.messages>`
  (unmatched ends dropped); collective instances accumulate and are
  expanded through the in-memory logical-message mapping.
* :func:`streaming_apply_correction` — per-shard offset interpolation.

Boundary-state requirements: every receive's matching send must come
from the rank named in its source field, and match ids must be unique.
Simulator-written traces guarantee both.  A dependency cycle (corrupt
trace) stalls every rank and raises
:class:`~repro.errors.SynchronizationError`, mirroring the in-memory
replay.  The ``streamed_matches_inmemory`` oracle in
:mod:`repro.verify.oracles` enforces the bit-identity contract.
"""

from __future__ import annotations

import tempfile
from bisect import bisect_left, bisect_right
from collections import deque
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import SynchronizationError, TraceError
from repro.sync.clc import ClcResult, ControlledLogicalClock
from repro.sync.collectives_map import logical_messages
from repro.sync.violations import LminSpec, ViolationReport, scan_messages
from repro.telemetry import ensure_telemetry
from repro.tracing.events import (
    COLLECTIVE_FLAVORS,
    CollectiveFlavor,
    CollectiveOp,
    EventType,
)
from repro.tracing.store import ChunkedTrace, ShardedTraceReader, ShardedTraceWriter
from repro.tracing.trace import CollectiveRecord, CollectiveTable

__all__ = [
    "streaming_clc_correct",
    "streaming_scan_trace",
    "streaming_apply_correction",
]

_SEND = int(EventType.SEND)
_RECV = int(EventType.RECV)
_CENT = int(EventType.COLL_ENTER)
_CEXIT = int(EventType.COLL_EXIT)

#: Caps spill records: rank-local event index + cap value.
_CAPS_DTYPE = np.dtype([("i", "<i8"), ("v", "<f8")])
#: In-memory cap records buffered per bucket before hitting disk.
_CAPS_BUFFER = 4096


def _pair_lmin(lmin: LminSpec):
    """Scalar ``l_min(src, dst)`` with per-pair memoization of callables."""
    if callable(lmin):
        cache: dict[tuple[int, int], float] = {}

        def fn(s: int, d: int) -> float:
            key = (s, d)
            v = cache.get(key)
            if v is None:
                v = cache[key] = float(lmin(s, d))
            return v

        return fn
    if isinstance(lmin, np.ndarray):
        return lambda s, d: float(lmin[s, d])
    value = float(lmin)
    return lambda s, d: value


def _source_is_chunked(source) -> ChunkedTrace:
    if isinstance(source, ChunkedTrace):
        return source
    if isinstance(source, ShardedTraceReader):
        return ChunkedTrace(source)
    return ChunkedTrace(ShardedTraceReader(source))


def _id_mode(reader: ShardedTraceReader) -> bool:
    """Ground-truth match ids available?  (Same rule as ``Trace``.)"""
    for rank in reader.ranks:
        for rec in reader.rank_shards(rank):
            if rec.neg_send_ids:
                return False
    return True


class _Resident:
    """Peak-resident-events accounting shared by all streaming passes."""

    __slots__ = ("tele", "cur", "peak", "shards_read")

    def __init__(self, tele) -> None:
        self.tele = tele
        self.cur = 0
        self.peak = 0
        self.shards_read = 0

    def load(self, events: int) -> None:
        self.cur += events
        self.shards_read += 1
        if self.cur > self.peak:
            self.peak = self.cur
        if self.tele.enabled:
            self.tele.count("sync.stream.shards_read")
            self.tele.gauge_max("sync.clc.peak_resident_events", self.cur)

    def release(self, events: int) -> None:
        self.cur -= events


# ----------------------------------------------------------------------
# Collective pre-scan
# ----------------------------------------------------------------------
def _accumulate_collectives(chunked: ChunkedTrace, resident: Optional[_Resident] = None):
    """One streaming pass collecting per-rank collective enter/exit info.

    Replicates ``Trace._extract_collectives`` exactly: for each rank all
    ``COLL_ENTER`` records land in a last-wins dict first, then exits
    pop in log order — including its duplicate-enter overwrite and
    error semantics.  Returns ``{inst: {rank: [enter_ts, exit_ts,
    enter_idx, exit_idx, op, root]}}``.
    """
    enters: dict[int, dict[int, tuple[int, float]]] = {}
    exits: dict[int, list[tuple[int, float, int, int, int]]] = {}
    for rank in chunked.ranks:
        enters[rank] = {}
        exits[rank] = []
        for rec, cols in chunked.iter_shards(rank):
            ts, et, a, b, _, d = cols
            if resident is not None:
                resident.load(rec.events)
            sel = np.nonzero(et == _CENT)[0]
            for i in sel:
                enters[rank][int(d[i])] = (rec.start + int(i), float(ts[i]))
            sel = np.nonzero(et == _CEXIT)[0]
            for i in sel:
                exits[rank].append(
                    (rec.start + int(i), float(ts[i]), int(d[i]), int(a[i]), int(b[i]))
                )
            if resident is not None:
                resident.release(rec.events)
    per_instance: dict[int, dict[int, list]] = {}
    for rank in chunked.ranks:
        open_by_instance = dict(enters[rank])
        for idx, ts_val, inst, op, root in exits[rank]:
            if inst not in open_by_instance:
                raise TraceError(
                    f"rank {rank}: COLL_EXIT for instance {inst} without COLL_ENTER"
                )
            e_idx, e_ts = open_by_instance.pop(inst)
            entry = per_instance.setdefault(inst, {})
            entry[rank] = [e_ts, ts_val, e_idx, idx, op, root]
        if open_by_instance:
            raise TraceError(
                f"rank {rank}: unclosed collective instances {sorted(open_by_instance)}"
            )
    return per_instance


def _collective_table(per_instance) -> CollectiveTable:
    """Assemble a :class:`CollectiveTable` exactly as the in-memory path."""
    records = []
    for inst in sorted(per_instance):
        members = per_instance[inst]
        ranks = np.array(sorted(members), dtype=np.int64)
        records.append(
            CollectiveRecord(
                instance=inst,
                op=CollectiveOp(members[int(ranks[0])][4]),
                root=members[int(ranks[0])][5],
                ranks=ranks,
                enter_ts=np.array([members[r][0] for r in ranks], dtype=np.float64),
                exit_ts=np.array([members[r][1] for r in ranks], dtype=np.float64),
                enter_idx=np.array([members[r][2] for r in ranks], dtype=np.int64),
                exit_idx=np.array([members[r][3] for r in ranks], dtype=np.int64),
            )
        )
    return CollectiveTable(records)


def _collective_deps(per_instance):
    """Flavor-expanded collective dependencies for the streaming forward.

    Returns ``(publish, exit_deps, consumers)``:

    * ``publish[rank]`` — ``{local enter idx: instance}`` for enters some
      other rank's exit depends on;
    * ``exit_deps[rank]`` — ``{local exit idx: [(member rank, instance),
      ...]}`` in the same sender order as ``build_dependencies``;
    * ``consumers[(instance, rank)]`` — number of exits reading that
      publication (for cleanup).
    """
    publish: dict[int, dict[int, int]] = {}
    exit_deps: dict[int, dict[int, list[tuple[int, int]]]] = {}
    consumers: dict[tuple[int, int], int] = {}
    for inst in sorted(per_instance):
        members = per_instance[inst]
        ranks = sorted(members)
        n = len(ranks)
        if n < 2:
            continue
        op = CollectiveOp(members[ranks[0]][4])
        root = members[ranks[0]][5]
        flavor = COLLECTIVE_FLAVORS[op]
        root_pos = -1
        if flavor is not CollectiveFlavor.N_TO_N:
            for j, r in enumerate(ranks):
                if r == root:
                    root_pos = j
                    break
        for i in range(n):
            if flavor is CollectiveFlavor.ONE_TO_N:
                senders = [root_pos] if i != root_pos else []
            elif flavor is CollectiveFlavor.N_TO_ONE:
                senders = [j for j in range(n) if j != i] if i == root_pos else []
            elif flavor is CollectiveFlavor.PREFIX:
                senders = list(range(i))
            else:
                senders = [j for j in range(n) if j != i]
            if not senders:
                continue
            rank_i = ranks[i]
            deps = [(ranks[j], inst) for j in senders]
            exit_deps.setdefault(rank_i, {})[members[rank_i][3]] = deps
            for j in senders:
                rank_j = ranks[j]
                publish.setdefault(rank_j, {})[members[rank_j][2]] = inst
                consumers[(inst, rank_j)] = consumers.get((inst, rank_j), 0) + 1
    return publish, exit_deps, consumers


# ----------------------------------------------------------------------
# Caps spill
# ----------------------------------------------------------------------
class _CapsSpill:
    """Per-(rank, shard) bucket files of ``(event index, cap)`` records."""

    def __init__(self, tmpdir: Path, shard_starts: dict[int, list[int]]) -> None:
        self.tmpdir = tmpdir
        self.starts = shard_starts
        self.buffers: dict[tuple[int, int], list[tuple[int, float]]] = {}

    def _path(self, rank: int, ordinal: int) -> Path:
        return self.tmpdir / f"caps_r{rank}_s{ordinal}.bin"

    def add(self, rank: int, idx: int, val: float) -> None:
        ordinal = bisect_right(self.starts[rank], idx) - 1
        key = (rank, ordinal)
        buf = self.buffers.setdefault(key, [])
        buf.append((idx, val))
        if len(buf) >= _CAPS_BUFFER:
            self._flush(key)

    def _flush(self, key: tuple[int, int]) -> None:
        buf = self.buffers.get(key)
        if not buf:
            return
        arr = np.array(buf, dtype=_CAPS_DTYPE)
        with self._path(*key).open("ab") as fh:
            fh.write(arr.tobytes())
        buf.clear()

    def load(self, rank: int, ordinal: int) -> tuple[np.ndarray, np.ndarray]:
        key = (rank, ordinal)
        parts = []
        path = self._path(rank, ordinal)
        if path.exists():
            parts.append(np.frombuffer(path.read_bytes(), dtype=_CAPS_DTYPE))
        buf = self.buffers.get(key)
        if buf:
            parts.append(np.array(buf, dtype=_CAPS_DTYPE))
        if not parts:
            empty = np.empty(0, dtype=_CAPS_DTYPE)
            return empty["i"], empty["v"]
        arr = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return arr["i"].astype(np.int64, copy=False), arr["v"].astype(np.float64, copy=False)


# ----------------------------------------------------------------------
# Streaming forward pass
# ----------------------------------------------------------------------
class _RankForward:
    """One rank's scalar CLC recurrence, advanced shard by shard.

    The per-shard working lists carry a one-slot prefix holding the
    previous shard's last original/corrected value, so the recurrence
    indexes ``corr[q - 1]`` uniformly across shard boundaries.  The
    stretch/spontaneous-position logic is the kernel's ``do_stretch`` /
    ``run_tail`` verbatim; splitting a stretch at a shard or publication
    boundary is bit-identical because the resume condition
    (``corr[prev] > orig[prev]``) recovers exactly the kernel's running
    tail state.
    """

    __slots__ = (
        "rank", "recs", "reader", "gamma", "si", "rec", "cols",
        "lo", "n_s", "origl", "corr", "gdl", "spont", "sp_ptr",
        "stops", "stop_ptr", "pubs", "pub_ptr", "cur",
        "prev_orig", "prev_corr", "finished", "jumps", "resident",
        "fwd_paths", "tmpdir",
    )

    def __init__(self, rank, recs, reader, gamma, tmpdir, resident) -> None:
        self.rank = rank
        self.recs = recs
        self.reader = reader
        self.gamma = gamma
        self.tmpdir = tmpdir
        self.resident = resident
        self.si = -1
        self.cols = None
        self.finished = not recs
        self.prev_orig = 0.0
        self.prev_corr = 0.0
        self.jumps: list[tuple[int, float, float]] = []  # (local idx, jump, value)
        self.fwd_paths: list[Path] = []

    # -- shard management ------------------------------------------------
    def load_next(self, publish, exit_deps) -> None:
        self.si += 1
        rec = self.recs[self.si]
        self.rec = rec
        cols = self.reader.load_shard(rec)
        self.cols = cols
        self.resident.load(rec.events)
        ts = np.asarray(cols[0], dtype=np.float64)
        n = rec.events
        self.lo = rec.start
        self.n_s = n
        self.origl = [self.prev_orig] + ts.tolist()
        self.corr = [self.prev_corr] + ts.tolist()
        gd = np.empty(n, dtype=np.float64)
        if n:
            gd[0] = self.gamma * (ts[0] - self.prev_orig)
            if n > 1:
                gd[1:] = self.gamma * (ts[1:] - ts[:-1])
        self.gdl = [0.0] + gd.tolist()
        prev = np.empty(n, dtype=np.float64)
        if n:
            prev[0] = self.prev_orig
            prev[1:] = ts[:-1]
        mask = (prev + gd) > ts
        if self.lo == 0 and n:
            mask[0] = False
        self.spont = (np.nonzero(mask)[0] + 1).tolist()
        self.sp_ptr = 0
        et = cols[1]
        my_pub = publish.get(self.rank, {})
        my_exits = exit_deps.get(self.rank, {})
        stops = []  # (list index, code): 0 = recv, 1 = constrained coll exit
        pubs = []   # list indices of sends and constraining enters
        for i in np.nonzero(et == _RECV)[0]:
            stops.append((int(i) + 1, 0))
        for i in np.nonzero(et == _CEXIT)[0]:
            if self.lo + int(i) in my_exits:
                stops.append((int(i) + 1, 1))
        for i in np.nonzero(et == _SEND)[0]:
            pubs.append(int(i) + 1)
        for i in np.nonzero(et == _CENT)[0]:
            if self.lo + int(i) in my_pub:
                pubs.append(int(i) + 1)
        stops.sort()
        pubs.sort()
        self.stops = stops
        self.stop_ptr = 0
        self.pubs = pubs
        self.pub_ptr = 0
        self.cur = 1

    def flush_shard(self) -> None:
        path = self.tmpdir / f"fwd_r{self.rank}_s{self.si}.npy"
        np.save(path, np.asarray(self.corr[1:], dtype=np.float64))
        self.fwd_paths.append(path)
        self.prev_orig = self.origl[self.n_s]
        self.prev_corr = self.corr[self.n_s]
        self.resident.release(self.n_s)
        self.cols = None
        self.origl = self.corr = self.gdl = None
        if self.si + 1 >= len(self.recs):
            self.finished = True

    # -- the kernel's stretch logic, on shifted per-shard lists ---------
    def _run_tail(self, i: int, stop: int) -> int:
        corr = self.corr
        origl = self.origl
        gdl = self.gdl
        while i < stop:
            follow = corr[i - 1] + gdl[i]
            if follow > origl[i]:
                corr[i] = follow
                i += 1
            else:
                break
        return i

    def _do_stretch(self, cur: int, stop: int) -> None:
        if cur >= stop:
            return
        corr = self.corr
        origl = self.origl
        if (self.lo + cur - 1) > 0 and corr[cur - 1] > origl[cur - 1]:
            cur = self._run_tail(cur, stop)
        sp = self.spont
        k = self.sp_ptr
        nsp = len(sp)
        gdl = self.gdl
        while k < nsp and sp[k] < stop:
            s = sp[k]
            k += 1
            if s < cur:
                continue
            corr[s] = corr[s - 1] + gdl[s]
            cur = self._run_tail(s + 1, stop)
        self.sp_ptr = k


def _forward_pass(
    chunked, reader, gamma, lmin_fn, id_mode, publish, exit_deps,
    consumers, caps, tmpdir, resident,
):
    """Round-robin streaming forward pass over every rank's shards.

    Returns per-rank forward state (temp file paths, jump lists) plus
    the global jump count and maximum jump.
    """
    ranks = chunked.ranks
    states = {r: _RankForward(r, reader.rank_shards(r), reader, gamma, tmpdir, resident)
              for r in ranks}
    pending_sends: dict[int, tuple[float, int, int]] = {}  # mid -> (corr, rank, idx)
    fifo_sends: dict[tuple[int, int, int], deque] = {}     # (src, dst, tag) -> deque
    coll_pubs: dict[tuple[int, int], tuple[float, int]] = {}  # (inst, rank) -> (corr, idx)
    njumps = 0
    max_jump = 0.0

    def publish_upto(st: _RankForward) -> None:
        """Publish sends / constraining enters the cursor moved past."""
        pubs = st.pubs
        k = st.pub_ptr
        npub = len(pubs)
        cols = st.cols
        my_pub = publish.get(st.rank, {})
        while k < npub and pubs[k] < st.cur:
            q = pubs[k]
            k += 1
            i = q - 1
            value = st.corr[q]
            gidx = st.lo + i
            if int(cols[1][i]) == _SEND:
                if id_mode:
                    pending_sends[int(cols[5][i])] = (value, st.rank, gidx)
                else:
                    key = (st.rank, int(cols[2][i]), int(cols[3][i]))
                    fifo_sends.setdefault(key, deque()).append((value, gidx))
            else:
                coll_pubs[(my_pub[gidx], st.rank)] = (value, gidx)
        st.pub_ptr = k

    def resolve_recv(st: _RankForward, i: int):
        """The receive's dependency edge, ``None`` for no dep, or 'block'."""
        cols = st.cols
        if id_mode:
            mid = int(cols[5][i])
            if mid < 0:
                return None
            edge = pending_sends.pop(mid, None)
            if edge is not None:
                return edge
            src = int(cols[2][i])
            if src not in states or states[src].finished:
                return None
            return "block"
        key = (int(cols[2][i]), st.rank, int(cols[3][i]))
        q = fifo_sends.get(key)
        if q:
            return q.popleft() + (key[0],)  # (corr, idx, src)
        src = key[0]
        if src not in states or states[src].finished:
            return None
        return "block"

    def advance(st: _RankForward) -> bool:
        nonlocal njumps, max_jump
        progress = False
        if st.cols is None:
            if st.finished:
                return False
            st.load_next(publish, exit_deps)
            progress = True
        my_exits = exit_deps.get(st.rank, {})
        while True:
            if st.cur > st.n_s:
                publish_upto(st)
                st.flush_shard()
                return True
            while st.stop_ptr < len(st.stops) and st.stops[st.stop_ptr][0] < st.cur:
                st.stop_ptr += 1
            if st.stop_ptr >= len(st.stops):
                st._do_stretch(st.cur, st.n_s + 1)
                st.cur = st.n_s + 1
                publish_upto(st)
                progress = True
                continue
            q, code = st.stops[st.stop_ptr]
            i = q - 1
            gidx = st.lo + i
            # Stretch up to the stop and publish the sends/enters this
            # passes over BEFORE resolving the stop's own dependency —
            # a peer may be blocked waiting for exactly those values.
            if st.cur < q:
                st._do_stretch(st.cur, q)
                st.cur = q
                publish_upto(st)
                progress = True
            # Gather this event's dependency edges (or block).
            if code == 0:
                edge = resolve_recv(st, i)
                if edge == "block":
                    publish_upto(st)
                    return progress
                if edge is None:
                    edges = []
                else:
                    if id_mode:
                        s_corr, s_rank, s_idx = edge
                    else:
                        s_corr, s_idx, s_rank = edge
                    edges = [(s_corr, s_rank, s_idx)]
            else:
                needed = my_exits[gidx]
                edges = []
                blocked = False
                for m_rank, inst in needed:
                    pub = coll_pubs.get((inst, m_rank))
                    if pub is None:
                        blocked = True
                        break
                    edges.append((pub[0], m_rank, pub[1]))
                if blocked:
                    publish_upto(st)
                    return progress
                for m_rank, inst in needed:
                    key = (inst, m_rank)
                    consumers[key] -= 1
                    if consumers[key] == 0:
                        del coll_pubs[key]
            # The kernel's dependency-event update.
            value = st.origl[q]
            if gidx > 0:
                follow = st.corr[q - 1] + st.gdl[q]
                if follow > value:
                    value = follow
            remote_floor = -np.inf
            lms = []
            for s_corr, s_rank, s_idx in edges:
                lm = lmin_fn(s_rank, st.rank)
                lms.append(lm)
                floor = s_corr + lm
                if floor > remote_floor:
                    remote_floor = floor
            if remote_floor > value:
                jump = remote_floor - value
                value = remote_floor
                st.jumps.append((gidx, jump, value))
                njumps += 1
                if jump > max_jump:
                    max_jump = jump
            st.corr[q] = value
            st.cur = q + 1
            st.stop_ptr += 1
            # Send caps for every consumed edge (reference nudge loop).
            for (s_corr, s_rank, s_idx), lm in zip(edges, lms):
                cap = value - lm
                while cap + lm > value:
                    cap = float(np.nextafter(cap, -np.inf))
                caps.add(s_rank, s_idx, cap)
            publish_upto(st)
            progress = True

    unfinished = set(r for r in ranks if not states[r].finished)
    while unfinished:
        any_progress = False
        for rank in ranks:
            st = states[rank]
            if st.finished and st.cols is None:
                unfinished.discard(rank)
                continue
            if advance(st):
                any_progress = True
            if st.finished and st.cols is None:
                unfinished.discard(rank)
        if unfinished and not any_progress:
            raise SynchronizationError(
                "streaming CLC stalled: every rank is blocked on an unpublished "
                "dependency (dependency cycle, or a receive whose matching send "
                "is recorded under a different source rank)"
            )
    return states, njumps, max_jump


# ----------------------------------------------------------------------
# Streaming backward amortization
# ----------------------------------------------------------------------
def _backward_pass(st: _RankForward, window: float, caps: _CapsSpill, resident) -> None:
    """Single reverse pass over one rank's forward temp files.

    Reproduces ``_amortize_backward`` exactly: the desired-advance ramps
    fold per shard (rows whose jump lies at or below the shard are
    all-zero and skipped), and the two reverse scalar scans cross shard
    boundaries through three carried values.  The early all-zero-desired
    return of the in-memory code is skipped — with ``desired`` all zero
    every subsequent step is the identity under ``==`` comparison.
    """
    jumps = st.jumps
    recs = st.recs
    al_carry: Optional[tuple[float, float]] = None  # (al[first], t[first]) of later shard
    ol_carry: Optional[float] = None  # re-clamped out[first] of later shard
    for si in range(len(recs) - 1, -1, -1):
        rec = recs[si]
        lo, n_s = rec.start, rec.events
        times = np.load(st.fwd_paths[si])
        resident.load(n_s)
        desired = np.zeros(n_s, dtype=np.float64)
        for k, j, v in jumps:
            if k <= lo:
                continue
            anchor = v - j
            ramp = j * (1.0 - (anchor - times) / window)
            np.maximum(ramp, 0.0, out=ramp)
            np.minimum(ramp, j, out=ramp)
            if k < lo + n_s:
                ramp[k - lo:] = 0.0
            np.maximum(desired, ramp, out=desired)
        allowed = desired
        caps_shard = np.full(n_s, np.inf, dtype=np.float64)
        idx, vals = caps.load(st.rank, si)
        if idx.size:
            np.minimum.at(caps_shard, idx - lo, vals)
        headroom = caps_shard - times
        np.minimum(allowed, np.maximum(headroom, 0.0), out=allowed)
        tl = times.tolist()
        al = allowed.tolist()
        if al_carry is not None:
            limit = al_carry[0] + (al_carry[1] - tl[n_s - 1])
            if al[n_s - 1] > limit:
                al[n_s - 1] = limit
            if al[n_s - 1] < 0.0:
                al[n_s - 1] = 0.0
        for i in range(n_s - 2, -1, -1):
            limit = al[i + 1] + (tl[i + 1] - tl[i])
            if al[i] > limit:
                al[i] = limit
            if al[i] < 0.0:
                al[i] = 0.0
        out = times + np.asarray(al, dtype=np.float64)
        np.minimum(out, np.maximum(caps_shard, times), out=out)
        ol = out.tolist()
        if ol_carry is not None:
            if ol[n_s - 1] > ol_carry >= tl[n_s - 1]:
                ol[n_s - 1] = ol_carry
        for i in range(n_s - 2, -1, -1):
            if ol[i] > ol[i + 1] >= tl[i]:
                ol[i] = ol[i + 1]
        al_carry = (al[0], tl[0])
        ol_carry = ol[0]
        np.save(st.fwd_paths[si], np.asarray(ol, dtype=np.float64))
        resident.release(n_s)


# ----------------------------------------------------------------------
# Entry point: streaming CLC
# ----------------------------------------------------------------------
def streaming_clc_correct(
    source: Union[ChunkedTrace, ShardedTraceReader, str, Path],
    out_dir: Union[str, Path],
    gamma: float = 0.99,
    amortization_window: Optional[float] = None,
    include_collectives: bool = True,
    lmin: LminSpec = 0.0,
    telemetry=None,
    shard_events: Optional[int] = None,
) -> ClcResult:
    """Apply the CLC to a sharded trace, writing a sharded corrected trace.

    Bit-identical to
    :meth:`ControlledLogicalClock.correct <repro.sync.clc.ControlledLogicalClock.correct>`
    on the materialized trace (same ``gamma`` / window / lmin), with the
    peak resident set bounded by one shard per rank plus carried
    boundary state.  The returned :class:`~repro.sync.clc.ClcResult`
    carries a :class:`~repro.tracing.store.ChunkedTrace` over
    ``out_dir``.
    """
    # Parameter validation shared with the in-memory corrector.
    ControlledLogicalClock(gamma=gamma, amortization_window=amortization_window)
    chunked = _source_is_chunked(source)
    reader = chunked.reader
    tele = ensure_telemetry(telemetry)
    resident = _Resident(tele)
    lmin_fn = _pair_lmin(lmin)
    id_mode = _id_mode(reader)
    out_dir = Path(out_dir)

    with tempfile.TemporaryDirectory(prefix="repro-stream-") as tmp:
        tmpdir = Path(tmp)
        with tele.span("sync.stream.prescan"):
            if include_collectives:
                per_instance = _accumulate_collectives(chunked, resident)
                publish, exit_deps, consumers = _collective_deps(per_instance)
            else:
                publish, exit_deps, consumers = {}, {}, {}
        shard_starts = {
            r: [rec.start for rec in reader.rank_shards(r)] for r in chunked.ranks
        }
        caps = _CapsSpill(tmpdir, shard_starts)
        with tele.span("sync.stream.forward", events=chunked.total_events()):
            states, njumps, max_jump = _forward_pass(
                chunked, reader, gamma, lmin_fn, id_mode, publish, exit_deps,
                consumers, caps, tmpdir, resident,
            )
        if tele.enabled:
            tele.count("sync.clc.events", chunked.total_events())
            tele.count("sync.clc.jumps", njumps)

        window = amortization_window
        if window is None:
            window = 50.0 * max_jump if max_jump > 0 else 0.0
        if window > 0:
            with tele.span("sync.stream.amortize", window=window):
                for rank in chunked.ranks:
                    if states[rank].jumps:
                        _backward_pass(states[rank], window, caps, resident)

        # Finalize: statistics with boundary carries + sharded output.
        corrected_events = 0
        max_shift = 0.0
        distortion = 0.0
        growth = 0.0
        out_meta = dict(chunked.meta)
        out_meta["clc"] = {"gamma": gamma, "window": window, "jumps": njumps}
        writer = ShardedTraceWriter(
            out_dir,
            shard_events=shard_events or reader.shard_events,
            run_id=reader.run_id or "clc",
        )
        with tele.span("sync.stream.finalize"), writer:
            for rank in chunked.ranks:
                writer.register_rank(rank)
                st = states[rank]
                prev_orig_last = prev_corr_last = None
                for si, (rec, cols) in enumerate(chunked.iter_shards(rank)):
                    resident.load(rec.events)
                    orig = np.asarray(cols[0], dtype=np.float64)
                    corr = np.load(st.fwd_paths[si])
                    shift = corr - orig
                    corrected_events += int(np.count_nonzero(shift > 1e-15))
                    if shift.size:
                        max_shift = max(max_shift, float(shift.max()))
                    if prev_orig_last is not None and rec.events:
                        d_o = orig[0] - prev_orig_last
                        d_c = corr[0] - prev_corr_last
                        change = abs(d_c - d_o)
                        growth = max(growth, float(change))
                        distortion = max(distortion, float(change / max(d_o, 1.0e-6)))
                    if rec.events > 1:
                        d_orig = np.diff(orig)
                        change = np.abs(np.diff(corr) - d_orig)
                        growth = max(growth, float(change.max()))
                        rel = change / np.maximum(d_orig, 1.0e-6)
                        distortion = max(distortion, float(rel.max()))
                    if rec.events:
                        prev_orig_last = orig[-1]
                        prev_corr_last = corr[-1]
                    writer.append_batch(
                        rank, corr, cols[1], cols[2], cols[3], cols[4], cols[5]
                    )
                    resident.release(rec.events)
            writer.finish(meta=out_meta)
        if tele.enabled:
            tele.count("sync.stream.shards_written", writer._seq)

    out = ChunkedTrace(ShardedTraceReader(out_dir))
    return ClcResult(
        trace=out,
        corrected_events=corrected_events,
        total_events=chunked.total_events(),
        jumps=njumps,
        max_jump=max_jump,
        max_shift=max_shift,
        interval_distortion=distortion,
        max_interval_growth=growth,
    )


# ----------------------------------------------------------------------
# Streaming violation scan
# ----------------------------------------------------------------------
def streaming_scan_trace(
    source: Union[ChunkedTrace, ShardedTraceReader, str, Path],
    lmin: LminSpec = 0.0,
    include_collectives: bool = True,
    telemetry=None,
) -> dict[str, ViolationReport]:
    """Eq. 1 scan over a sharded trace, one shard resident at a time.

    Matches :func:`repro.sync.violations.scan_trace` on the
    materialized trace exactly (counts, violation indices in message-
    table order, worst magnitude); unmatched transfer ends are dropped
    as with ``strict=False`` matching.
    """
    chunked = _source_is_chunked(source)
    reader = chunked.reader
    tele = ensure_telemetry(telemetry)
    resident = _Resident(tele)
    lmin_fn = _pair_lmin(lmin)
    id_mode = _id_mode(reader)
    ranks = chunked.ranks

    pending_sends: dict[int, tuple[float, int]] = {}   # mid -> (ts, src rank)
    pending_recvs: dict[int, tuple[float, int, int]] = {}  # mid -> (ts, rank, r_ord)
    fifo_sends: dict[tuple[int, int, int], deque] = {}
    fifo_parked: dict[tuple[int, int, int], deque] = {}
    recv_seen: dict[int, int] = {r: 0 for r in ranks}
    unmatched: dict[int, list[int]] = {r: [] for r in ranks}
    violators: list[tuple[int, int]] = []  # (dst rank, recv ordinal in rank)
    worst = 0.0
    enters: dict[int, dict[int, tuple[int, float]]] = {r: {} for r in ranks}
    exits: dict[int, list[tuple[int, float, int, int, int]]] = {r: [] for r in ranks}

    def emit(sts: float, src: int, rts: float, dst: int, r_ord: int) -> None:
        nonlocal worst
        slack = rts - (sts + lmin_fn(src, dst))
        if slack < 0:
            violators.append((dst, r_ord))
            if -slack > worst:
                worst = -slack

    per_rank = {r: reader.rank_shards(r) for r in ranks}
    max_shards = max((len(v) for v in per_rank.values()), default=0)
    with tele.span("sync.stream.scan", events=chunked.total_events()):
        for si in range(max_shards):
            for rank in ranks:
                if si >= len(per_rank[rank]):
                    continue
                rec = per_rank[rank][si]
                ts, et, a, b, _, d = reader.load_shard(rec)
                resident.load(rec.events)
                et_arr = np.asarray(et)
                msg_pos = np.nonzero(
                    (et_arr == _SEND) | (et_arr == _RECV)
                    | (et_arr == _CENT) | (et_arr == _CEXIT)
                )[0]
                r_ord = recv_seen[rank]
                for i in msg_pos:
                    code = int(et_arr[i])
                    if code == _SEND:
                        t_i = float(ts[i])
                        if id_mode:
                            mid = int(d[i])
                            hit = pending_recvs.pop(mid, None)
                            if hit is not None:
                                emit(t_i, rank, hit[0], hit[1], hit[2])
                            else:
                                pending_sends[mid] = (t_i, rank)
                        else:
                            key = (rank, int(a[i]), int(b[i]))
                            parked = fifo_parked.get(key)
                            if parked:
                                rts, ro = parked.popleft()
                                emit(t_i, rank, rts, key[1], ro)
                            else:
                                fifo_sends.setdefault(key, deque()).append(t_i)
                    elif code == _RECV:
                        t_i = float(ts[i])
                        if id_mode:
                            mid = int(d[i])
                            if mid < 0:
                                unmatched[rank].append(r_ord)
                            else:
                                hit = pending_sends.pop(mid, None)
                                if hit is not None:
                                    emit(hit[0], hit[1], t_i, rank, r_ord)
                                else:
                                    pending_recvs[mid] = (t_i, rank, r_ord)
                        else:
                            key = (int(a[i]), rank, int(b[i]))
                            q = fifo_sends.get(key)
                            parked = fifo_parked.get(key)
                            if q and not parked:
                                emit(q.popleft(), key[0], t_i, rank, r_ord)
                            else:
                                fifo_parked.setdefault(key, deque()).append((t_i, r_ord))
                        r_ord += 1
                    elif code == _CENT:
                        if include_collectives:
                            enters[rank][int(d[i])] = (rec.start + int(i), float(ts[i]))
                    else:
                        if include_collectives:
                            exits[rank].append(
                                (rec.start + int(i), float(ts[i]), int(d[i]),
                                 int(a[i]), int(b[i]))
                            )
                recv_seen[rank] = r_ord
                resident.release(rec.events)

    # Leftover pending receives are unmatched (strict=False semantics).
    for mid, (_, rank, r_ord) in pending_recvs.items():
        unmatched[rank].append(r_ord)
    for key, parked in fifo_parked.items():
        for _, r_ord in parked:
            unmatched[key[1]].append(r_ord)

    matched_per_rank = {
        r: recv_seen[r] - len(unmatched[r]) for r in ranks
    }
    offsets: dict[int, int] = {}
    total = 0
    for r in ranks:
        offsets[r] = total
        total += matched_per_rank[r]
    for r in ranks:
        unmatched[r].sort()
    ordinals = sorted(
        offsets[r] + ro - bisect_left(unmatched[r], ro) for r, ro in violators
    )
    p2p = ViolationReport(
        "p2p", total, len(ordinals), np.asarray(ordinals, dtype=np.int64), worst
    )
    out = {"p2p": p2p}
    if include_collectives:
        per_instance: dict[int, dict[int, list]] = {}
        for rank in ranks:
            open_by_instance = dict(enters[rank])
            for idx, ts_val, inst, op, root in exits[rank]:
                if inst not in open_by_instance:
                    raise TraceError(
                        f"rank {rank}: COLL_EXIT for instance {inst} without COLL_ENTER"
                    )
                e_idx, e_ts = open_by_instance.pop(inst)
                per_instance.setdefault(inst, {})[rank] = [e_ts, ts_val, e_idx, idx, op, root]
            if open_by_instance:
                raise TraceError(
                    f"rank {rank}: unclosed collective instances {sorted(open_by_instance)}"
                )
        logical = logical_messages(_collective_table(per_instance))
        report = scan_messages(logical, lmin)
        out["collective"] = ViolationReport(
            "collective", report.checked, report.violated, report.indices, report.worst
        )
    return out


# ----------------------------------------------------------------------
# Streaming offset interpolation
# ----------------------------------------------------------------------
def streaming_apply_correction(
    correction,
    source: Union[ChunkedTrace, ShardedTraceReader, str, Path],
    out_dir: Union[str, Path],
    telemetry=None,
) -> ChunkedTrace:
    """Apply a :class:`~repro.sync.interpolation.ClockCorrection` per shard.

    The per-rank offset model is evaluated on one shard's timestamps at
    a time — identical to ``correction.apply(trace)`` because the model
    is elementwise.  Returns a :class:`ChunkedTrace` over ``out_dir``.
    """
    chunked = _source_is_chunked(source)
    reader = chunked.reader
    tele = ensure_telemetry(telemetry)
    resident = _Resident(tele)
    meta = dict(chunked.meta)
    meta["correction"] = repr(correction)
    writer = ShardedTraceWriter(
        out_dir, shard_events=reader.shard_events, run_id=reader.run_id or "interp"
    )
    with tele.span("sync.stream.interpolate"), writer:
        for rank in chunked.ranks:
            writer.register_rank(rank)
            for rec, cols in chunked.iter_shards(rank):
                resident.load(rec.events)
                new_ts = correction.apply_rank(rank, np.asarray(cols[0], dtype=np.float64))
                writer.append_batch(rank, new_ts, cols[1], cols[2], cols[3], cols[4], cols[5])
                resident.release(rec.events)
        writer.finish(meta=meta)
    return ChunkedTrace(ShardedTraceReader(Path(out_dir)))
