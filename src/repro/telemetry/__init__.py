"""Run-wide telemetry: spans, counters, gauges, and their exports.

See ``docs/observability.md`` for the instrumented layers, the naming
scheme, and the inertness contract.
"""

from repro.telemetry.export import (
    load_jsonl,
    render_fallback_table,
    render_report,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.telemetry.recorder import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanRecord,
    TelemetryRecorder,
    TimingStats,
    ensure_telemetry,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecord",
    "TelemetryRecorder",
    "TimingStats",
    "ensure_telemetry",
    "load_jsonl",
    "render_fallback_table",
    "render_report",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
