"""Telemetry serialization: JSONL, Prometheus text, and a terminal report.

JSONL is the interchange format (``--telemetry PATH`` on the CLI): one
object per line, first a header, then every span in start order, then
counters, gauges, and timings sorted by name.  Prometheus text follows
the exposition format so the same snapshot can be dropped into a
node-exporter textfile collector.  Both exports are pure functions of a
snapshot, so a deterministic recorder clock yields byte-identical files
(the golden-file tests rely on this).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List

__all__ = [
    "load_jsonl",
    "render_fallback_table",
    "render_report",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]

#: Counter namespace the batch engine uses for per-reason fallbacks
#: (``sim.batch.fallback.<code>``; see docs/observability.md).
FALLBACK_PREFIX = "sim.batch.fallback."

FORMAT_VERSION = 1

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _snapshot_of(telemetry_or_snapshot) -> dict:
    if hasattr(telemetry_or_snapshot, "snapshot"):
        return telemetry_or_snapshot.snapshot()
    return telemetry_or_snapshot


def to_jsonl(telemetry_or_snapshot) -> str:
    """Serialize a recorder (or snapshot dict) to JSONL text."""
    snap = _snapshot_of(telemetry_or_snapshot)
    lines = [json.dumps({"kind": "telemetry", "format": FORMAT_VERSION}, sort_keys=True)]
    for span in snap["spans"]:
        lines.append(json.dumps({"kind": "span", **span}, sort_keys=True))
    for name, value in snap["counters"].items():
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}, sort_keys=True))
    for name, value in snap["gauges"].items():
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}, sort_keys=True))
    for name, stats in snap["timings"].items():
        lines.append(json.dumps({"kind": "timing", "name": name, **stats}, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(telemetry_or_snapshot, path) -> Path:
    """Write the JSONL export to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(telemetry_or_snapshot), encoding="utf-8")
    return path


def load_jsonl(path) -> dict:
    """Read a JSONL export back into snapshot form."""
    spans: List[dict] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    timings: Dict[str, dict] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("kind")
        if kind == "telemetry":
            continue
        if kind == "span":
            spans.append({k: v for k, v in obj.items() if k != "kind"})
        elif kind == "counter":
            counters[obj["name"]] = obj["value"]
        elif kind == "gauge":
            gauges[obj["name"]] = obj["value"]
        elif kind == "timing":
            timings[obj["name"]] = {
                k: v for k, v in obj.items() if k not in ("kind", "name")
            }
    return {"spans": spans, "counters": counters, "gauges": gauges, "timings": timings}


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def to_prometheus(telemetry_or_snapshot) -> str:
    """Render counters, gauges, timings, and span totals as Prometheus text.

    Timings (and per-name span aggregates, exposed as
    ``repro_span_<name>_*``) become a count plus a seconds total with
    min/max gauges — enough for rate() and mean-latency queries without
    histogram buckets.
    """
    snap = _snapshot_of(telemetry_or_snapshot)
    lines: List[str] = []

    for name, value in snap["counters"].items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snap["gauges"].items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")

    # Aggregate spans by name so repeated phases show up as one series.
    span_stats: Dict[str, dict] = {}
    for span in snap["spans"]:
        agg = span_stats.setdefault(span["name"], {"count": 0, "total": 0.0})
        agg["count"] += 1
        agg["total"] += span.get("duration") or 0.0

    def emit_summary(metric: str, stats: dict) -> None:
        lines.append(f"# TYPE {metric}_count counter")
        lines.append(f"{metric}_count {stats['count']}")
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {repr(float(stats['total']))}")
        for bound in ("min", "max"):
            if bound in stats:
                lines.append(f"# TYPE {metric}_seconds_{bound} gauge")
                lines.append(f"{metric}_seconds_{bound} {repr(float(stats[bound]))}")

    for name, stats in snap["timings"].items():
        emit_summary(_prom_name(name), stats)
    for name in sorted(span_stats):
        emit_summary(_prom_name("span." + name), span_stats[name])
    return "\n".join(lines) + "\n"


def render_fallback_table(counters: Dict[str, float]) -> str:
    """Per-reason batch-fallback table (reason → count) from counters.

    Returns ``""`` when no batch engine activity was recorded, so
    callers can print it unconditionally.  The engaged count rides
    along when present — coverage progress is the ratio the ROADMAP
    tracks (vectorize the dominant reasons one by one).
    """
    reasons = {
        name[len(FALLBACK_PREFIX):]: value
        for name, value in counters.items()
        if name.startswith(FALLBACK_PREFIX)
    }
    engaged = counters.get("sim.batch.engaged")
    if not reasons and engaged is None:
        return ""
    lines = ["batch engine (reason -> count)"]
    if engaged is not None:
        lines.append(f"  {'engaged':<28} {int(engaged):>8}")
    for reason in sorted(reasons):
        lines.append(f"  fallback: {reason:<18} {int(reasons[reason]):>8}")
    return "\n".join(lines)


def render_report(telemetry_or_snapshot) -> str:
    """Human-readable span tree + scalar tables for ``repro report``."""
    snap = _snapshot_of(telemetry_or_snapshot)
    lines: List[str] = []

    spans = snap["spans"]
    if spans:
        lines.append("spans")
        children: Dict[int, List[dict]] = {}
        for span in spans:
            children.setdefault(span["parent"], []).append(span)

        def walk(parent: int, depth: int) -> None:
            for span in children.get(parent, ()):
                attrs = span.get("attrs") or {}
                attr_text = (
                    " [" + ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"
                    if attrs
                    else ""
                )
                duration = span.get("duration") or 0.0
                lines.append(
                    f"  {'  ' * depth}{span['name']:<{max(40 - 2 * depth, 8)}} "
                    f"{duration * 1e3:10.3f} ms{attr_text}"
                )
                walk(span["index"], depth + 1)

        walk(-1, 0)

    for section, fmt in (("counters", "g"), ("gauges", "g")):
        table = snap[section]
        if table:
            lines.append(section)
            for name, value in table.items():
                lines.append(f"  {name:<44} {value:>14{fmt}}")

    fallbacks = render_fallback_table(snap["counters"])
    if fallbacks:
        lines.append(fallbacks)

    timings = snap["timings"]
    if timings:
        lines.append("timings")
        lines.append(
            f"  {'name':<36} {'count':>7} {'total ms':>10} {'mean ms':>9} "
            f"{'min ms':>9} {'max ms':>9}"
        )
        for name, stats in timings.items():
            count = stats["count"] or 1
            lines.append(
                f"  {name:<36} {stats['count']:>7} {stats['total'] * 1e3:>10.3f} "
                f"{stats['total'] / count * 1e3:>9.3f} {stats['min'] * 1e3:>9.3f} "
                f"{stats['max'] * 1e3:>9.3f}"
            )

    if not lines:
        return "telemetry: nothing recorded\n"
    return "\n".join(lines) + "\n"
