"""In-memory telemetry recorder: spans, counters, gauges, timings.

The subsystem has two implementations of one protocol:

* :class:`TelemetryRecorder` — records everything in memory, cheaply;
* :class:`NullTelemetry` — the shared no-op used when telemetry is off.

Instrumented code holds a single handle (``tele``) and never branches on
configuration beyond ``tele.enabled``.  The contract for hot paths is:

* never record per-event telemetry inside the discrete-event loop —
  aggregate once per run (``world.run`` publishes engine counters after
  the loop finishes);
* wrap any ``perf_counter()`` bookkeeping in ``if tele.enabled:`` so the
  disabled mode does literally nothing;
* telemetry must be *inert*: it may read simulation state but never
  touches an RNG stream or any value that feeds back into the
  simulation.  The ``telemetry_is_inert`` verify oracle enforces this
  bit-for-bit.

The recorder takes an injectable ``clock`` so tests can produce
byte-identical exports (see ``tests/data/telemetry_golden.*``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecord",
    "TelemetryRecorder",
    "TimingStats",
    "ensure_telemetry",
]


class _NullSpan:
    """Reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry sink that records nothing.

    Every method is a no-op returning as fast as Python allows; the
    module-level :data:`NULL_TELEMETRY` singleton is what disabled runs
    share, so instrumented code never needs a ``None`` check.
    """

    __slots__ = ()

    enabled = False

    def span(self, name, /, **attrs):
        return _NULL_SPAN

    def count(self, name, value=1):
        pass

    def gauge(self, name, value):
        pass

    def gauge_max(self, name, value):
        pass

    def observe(self, name, seconds):
        pass

    def snapshot(self):
        return {"spans": [], "counters": {}, "gauges": {}, "timings": {}}


NULL_TELEMETRY = NullTelemetry()


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    ``parent`` is the index of the enclosing span in the recorder's
    ``spans`` list, or ``-1`` for a root span.  ``end`` stays ``None``
    while the span is open.
    """

    index: int
    parent: int
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass
class TimingStats:
    """Aggregate of ``observe()`` calls under one name."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds


class _Span:
    """Context manager created by :meth:`TelemetryRecorder.span`."""

    __slots__ = ("_recorder", "_record")

    def __init__(self, recorder: "TelemetryRecorder", record: SpanRecord):
        self._recorder = recorder
        self._record = record

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        rec = self._record
        rec.end = self._recorder._clock()
        if exc_type is not None:
            rec.attrs.setdefault("error", exc_type.__name__)
        stack = self._recorder._stack
        if stack and stack[-1] == rec.index:
            stack.pop()
        return False

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. counts)."""
        self._record.attrs.update(attrs)
        return self


class TelemetryRecorder:
    """Record spans, counters, gauges, and timing observations in memory.

    Parameters
    ----------
    clock:
        Monotonic time source used for span start/end stamps.  Defaults
        to :func:`time.perf_counter`; tests inject a deterministic fake
        so exports are byte-identical.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timings: Dict[str, TimingStats] = {}
        self._stack: List[int] = []

    # -- spans ----------------------------------------------------------
    def span(self, name: str, /, **attrs) -> _Span:
        """Open a nested timed phase; use as a context manager."""
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        record = SpanRecord(
            index=index, parent=parent, name=name, start=self._clock(), attrs=dict(attrs)
        )
        self.spans.append(record)
        self._stack.append(index)
        return _Span(self, record)

    # -- scalars --------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a monotonically increasing counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Set a high-water gauge (keeps the maximum seen)."""
        prev = self.gauges.get(name)
        if prev is None or value > prev:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one timing sample under ``name`` (count/total/min/max)."""
        stats = self.timings.get(name)
        if stats is None:
            stats = self.timings[name] = TimingStats()
        stats.add(seconds)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of everything recorded so far.

        Scalar sections are sorted by name so exports are deterministic
        for a deterministic clock.
        """
        return {
            "spans": [
                {
                    "index": s.index,
                    "parent": s.parent,
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    "attrs": dict(s.attrs),
                }
                for s in self.spans
            ],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "timings": {
                k: {
                    "count": t.count,
                    "total": t.total,
                    "min": t.min if t.count else 0.0,
                    "max": t.max,
                }
                for k, t in sorted(self.timings.items())
            },
        }


def ensure_telemetry(telemetry) -> "TelemetryRecorder | NullTelemetry":
    """Map ``None`` to the shared null sink; pass recorders through."""
    return NULL_TELEMETRY if telemetry is None else telemetry
