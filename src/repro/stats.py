"""Statistically rigorous measurement summaries (``repro.stats``).

The paper's Table II and Figures 4-8 all report sample means of noisy
quantities — latencies, deviations, violation percentages — measured
under network jitter, OS noise and timer quantization.  Following the
methodology of Hunold & Carpen-Amarie, *"MPI Benchmarking Revisited"*
(see PAPERS.md), every such number in this repository now carries an
explicit repetition design:

* :class:`SampleSummary` — mean, median, sample std (ddof=1), a Student
  t confidence interval at a configurable level, an optional percentile
  *bootstrap* interval from a deterministic seeded resampler, and the
  run-to-run variance of per-run means across repeated independent runs;
* :class:`StoppingRule` — a sequential stopping rule: keep adding
  independent runs until the relative CI half-width undercuts a target,
  with a hard repetition cap;
* :func:`collect_runs` — the driver loop that applies a stopping rule to
  any ``run_index -> samples`` callable.

Everything here is scipy-free and bit-deterministic: the t quantiles
come from a regularized-incomplete-beta inversion (so property tests can
pin them against hand-computed values), and the bootstrap draws from a
:func:`numpy.random.default_rng` seeded explicitly — the same data and
seed always produce the same interval, which is what makes summaries
safe to memoize in the result cache and compare bit-for-bit across
serial and parallel grid runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SampleSummary",
    "StoppingRule",
    "bootstrap_ci",
    "collect_runs",
    "student_t_cdf",
    "student_t_ppf",
    "summarize",
]

#: Default confidence level for every summary in the repository.
DEFAULT_LEVEL = 0.95

#: Default number of bootstrap resamples when a bootstrap CI is requested.
DEFAULT_RESAMPLES = 1000


# ----------------------------------------------------------------------
# Student t quantiles, scipy-free
# ----------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function
    (modified Lentz algorithm)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ConfigurationError(f"degrees of freedom must be > 0, got {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    p = 0.5 * _betainc(0.5 * df, 0.5, x)
    return 1.0 - p if t > 0 else p


@lru_cache(maxsize=256)
def student_t_ppf(p: float, df: float) -> float:
    """Quantile of Student's t distribution (inverse CDF), by bisection.

    Deterministic and accurate to ~1e-10; with ``df`` cached per
    ``(p, df)`` pair the cost is paid once per confidence level.
    """
    if df <= 0:
        raise ConfigurationError(f"degrees of freedom must be > 0, got {df}")
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile probability must be in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_ppf(1.0 - p, df)
    lo, hi = 0.0, 2.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# Bootstrap
# ----------------------------------------------------------------------
def bootstrap_ci(
    samples: np.ndarray,
    level: float = DEFAULT_LEVEL,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the mean, deterministic under ``seed``.

    The resampler is ``numpy.random.default_rng(seed)``: the same
    ``(samples, level, resamples, seed)`` always yields the same
    interval, bit for bit, regardless of process or platform.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ConfigurationError("bootstrap_ci needs at least one sample")
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"confidence level must be in (0, 1), got {level}")
    if resamples < 1:
        raise ConfigurationError(f"resamples must be >= 1, got {resamples}")
    if samples.size == 1:
        value = float(samples[0])
        return value, value
    rng = np.random.default_rng(int(seed))
    draws = rng.integers(0, samples.size, size=(int(resamples), samples.size))
    means = samples[draws].mean(axis=1)
    alpha = 0.5 * (1.0 - level)
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    # Resampled means live in [min, max] mathematically, but the fp
    # summation inside mean() can overshoot either end by an ulp; clip
    # so the interval never leaves the sample range.
    lo = float(np.clip(lo, samples.min(), samples.max()))
    hi = float(np.clip(hi, samples.min(), samples.max()))
    return lo, hi


# ----------------------------------------------------------------------
# SampleSummary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one measured quantity with its uncertainty.

    Attributes
    ----------
    n:
        Pooled sample count across all runs.
    mean, median, std:
        Pooled sample statistics (``std`` with ddof=1; 0.0 at n=1).
    std_of_mean:
        ``std / sqrt(n)`` — the standard error (0.0 at n=1).
    level:
        Confidence level of both intervals (e.g. 0.95).
    ci_lower, ci_upper:
        Student t CI of the mean.  Zero-width (== mean) at n=1, never
        NaN.
    bootstrap_lower, bootstrap_upper:
        Percentile bootstrap CI of the mean, or ``None`` when no
        bootstrap was requested.
    runs:
        Number of independent runs pooled into this summary.
    run_variance:
        Variance (ddof=1) of the per-run means; 0.0 below two runs.
    """

    n: int
    mean: float
    median: float
    std: float
    std_of_mean: float
    level: float
    ci_lower: float
    ci_upper: float
    bootstrap_lower: Optional[float] = None
    bootstrap_upper: Optional[float] = None
    runs: int = 1
    run_variance: float = 0.0

    @property
    def ci_halfwidth(self) -> float:
        return 0.5 * (self.ci_upper - self.ci_lower)

    def relative_ci_width(self) -> float:
        """CI half-width relative to |mean| (inf for a zero mean with a
        nonzero interval) — the quantity stopping rules target."""
        half = self.ci_halfwidth
        if half == 0.0:
            return 0.0
        if self.mean == 0.0:
            return math.inf
        return half / abs(self.mean)

    def describe(self, unit_scale: float = 1.0, unit: str = "") -> str:
        """Human-readable one-liner: mean ± half-width [lo, hi], n, runs."""
        u = f" {unit}" if unit else ""
        text = (
            f"{self.mean * unit_scale:.3f} ± {self.ci_halfwidth * unit_scale:.3f}{u} "
            f"[{self.ci_lower * unit_scale:.3f}, {self.ci_upper * unit_scale:.3f}] "
            f"({self.level:.0%} CI, n={self.n}"
        )
        if self.runs > 1:
            text += f", runs={self.runs}"
        return text + ")"


def summarize(
    samples: Union[np.ndarray, Sequence],
    level: float = DEFAULT_LEVEL,
    bootstrap: int = 0,
    seed: int = 0,
) -> SampleSummary:
    """Summarize samples from one or more independent runs.

    ``samples`` is either a flat array (one run) or a sequence of arrays
    (one per independent run); runs are pooled for the point estimates
    and CI, and their per-run means feed ``run_variance``.  ``bootstrap``
    > 0 adds a percentile bootstrap CI with that many resamples, seeded
    deterministically by ``seed``.
    """
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"confidence level must be in (0, 1), got {level}")
    if isinstance(samples, np.ndarray) and samples.ndim <= 1:
        run_arrays = [np.asarray(samples, dtype=np.float64).ravel()]
    elif samples and isinstance(samples[0], (np.ndarray, list, tuple)):
        run_arrays = [np.asarray(run, dtype=np.float64).ravel() for run in samples]
    else:
        run_arrays = [np.asarray(samples, dtype=np.float64).ravel()]
    run_arrays = [run for run in run_arrays if run.size]
    if not run_arrays:
        raise ConfigurationError("summarize needs at least one sample")

    pooled = np.concatenate(run_arrays) if len(run_arrays) > 1 else run_arrays[0]
    n = int(pooled.size)
    mean = float(pooled.mean())
    median = float(np.median(pooled))
    if n > 1:
        std = float(pooled.std(ddof=1))
        sem = std / math.sqrt(n)
        t_crit = student_t_ppf(0.5 * (1.0 + level), n - 1)
        half = t_crit * sem
    else:
        std = sem = half = 0.0  # zero-width CI at n=1, never NaN

    run_means = [float(run.mean()) for run in run_arrays]
    run_variance = (
        float(np.var(run_means, ddof=1)) if len(run_means) > 1 else 0.0
    )

    boot_lo = boot_hi = None
    if bootstrap > 0:
        boot_lo, boot_hi = bootstrap_ci(pooled, level=level,
                                        resamples=bootstrap, seed=seed)
    return SampleSummary(
        n=n,
        mean=mean,
        median=median,
        std=std,
        std_of_mean=sem,
        level=level,
        ci_lower=mean - half,
        ci_upper=mean + half,
        bootstrap_lower=boot_lo,
        bootstrap_upper=boot_hi,
        runs=len(run_arrays),
        run_variance=run_variance,
    )


# ----------------------------------------------------------------------
# Sequential stopping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoppingRule:
    """Sequential stopping: repeat until the CI is tight or the cap hits.

    A measurement driver keeps adding independent runs while
    ``relative_ci_width() > rel_ci_width`` and fewer than ``max_runs``
    runs have completed; ``min_runs`` runs always execute (a CI from a
    single run of correlated samples says little about run-to-run
    effects).  The rule is a frozen pure-data object, so it can ride in
    :class:`repro.options.RunOptions` and in cache-keyed grid configs.
    """

    rel_ci_width: float = 0.05
    min_runs: int = 2
    max_runs: int = 10
    level: float = DEFAULT_LEVEL

    def __post_init__(self):
        if not self.rel_ci_width > 0.0:
            raise ConfigurationError(
                f"rel_ci_width must be > 0, got {self.rel_ci_width!r}"
            )
        if not isinstance(self.min_runs, int) or self.min_runs < 1:
            raise ConfigurationError(
                f"min_runs must be a positive int, got {self.min_runs!r}"
            )
        if not isinstance(self.max_runs, int) or self.max_runs < self.min_runs:
            raise ConfigurationError(
                f"max_runs must be an int >= min_runs, got {self.max_runs!r}"
            )
        if not 0.0 < self.level < 1.0:
            raise ConfigurationError(
                f"confidence level must be in (0, 1), got {self.level!r}"
            )

    def satisfied(self, summary: SampleSummary) -> bool:
        """True when the summary's CI meets the relative-width target."""
        return summary.relative_ci_width() <= self.rel_ci_width


def collect_runs(
    sample_run: Callable[[int], np.ndarray],
    runs: int = 1,
    stopping: Optional[StoppingRule] = None,
    level: float = DEFAULT_LEVEL,
) -> list[np.ndarray]:
    """Collect per-run sample arrays, honoring a sequential stopping rule.

    ``sample_run(run_index)`` produces the samples of one independent
    run (the caller derives per-run seeds from the index).  Without a
    rule, exactly ``runs`` runs execute.  With a rule, at least
    ``max(runs, rule.min_runs)`` and at most ``rule.max_runs`` runs
    execute, stopping as soon as the pooled summary at ``rule.level``
    satisfies the rule.  Deterministic: the decision sequence is a pure
    function of the (deterministic) samples.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if stopping is None:
        return [np.asarray(sample_run(r), dtype=np.float64).ravel()
                for r in range(runs)]
    floor = max(runs, stopping.min_runs)
    collected: list[np.ndarray] = []
    for r in range(stopping.max_runs):
        collected.append(np.asarray(sample_run(r), dtype=np.float64).ravel())
        if len(collected) >= floor and stopping.satisfied(
            summarize(collected, level=stopping.level)
        ):
            break
    return collected
