"""Content-addressed on-disk cache for experiment results.

Regenerating a paper figure means re-running dozens of simulations whose
outcome is a pure function of their configuration (every experiment in
:mod:`repro.analysis.experiments` is deterministic given its keyword
arguments).  The cache exploits that: a result is stored under a SHA-256
digest of

* the **function's qualified name** (``module.qualname``),
* a **canonical encoding of its configuration** (the keyword arguments),
* the **package version** (:data:`repro.__version__`),

so re-running an unchanged figure is a single pickle load, while any
change to the configuration, the function identity, or the package
version silently misses and recomputes.  Nothing is ever returned from a
stale key — invalidation is structural, not time-based.

Storage layout: one ``<digest>.pkl`` file per entry under the cache
root.  The root defaults to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Writes are atomic
(temp file + rename), so concurrent processes — e.g. the workers of
:func:`repro.analysis.runner.run_grid` — can share one cache directory
without locking: the worst case is the same entry being computed twice.

Unpicklable or corrupt entries degrade to misses; the cache never makes
a computation fail that would have succeeded without it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry import ensure_telemetry

__all__ = [
    "ResultCache",
    "PATH_ONLY_KEYS",
    "canonical_config",
    "config_digest",
    "default_cache_dir",
]

_MISS = object()

#: Keyword arguments that select an execution *path*, not a result.
#: The two simulation engines are bit-identical by contract (enforced
#: by the ``batch_matches_engine`` oracle), so ``engine`` must not
#: enter cache keys: a grid re-run under the other engine has to hit
#: every entry the first run stored.
PATH_ONLY_KEYS = frozenset({"engine"})


def default_cache_dir() -> Path:
    """Resolve the on-disk cache root (see module docstring for rules)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def canonical_config(obj: Any) -> str:
    """Encode a configuration value as a canonical, hashable string.

    Deterministic across processes and platforms (unlike ``repr`` of
    sets or salted ``hash``).  Supports the JSON-ish types experiment
    kwargs are made of — None, bools, ints, floats, strings, bytes,
    sequences, mappings — plus numpy scalars/arrays and dataclasses.
    Anything else raises :class:`ConfigurationError` rather than risking
    an unstable key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return f"{type(obj).__name__}:{obj!r}"
    if isinstance(obj, float):
        # hex round-trips every bit; repr of floats is stable too, but
        # hex makes bit-for-bit identity explicit.
        return f"float:{obj.hex()}"
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return canonical_config(obj.item())
    if isinstance(obj, np.ndarray):
        return f"ndarray:{obj.dtype.str}:{obj.shape}:{obj.tobytes().hex()}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical_config(v) for v in obj)
        return f"{type(obj).__name__}:[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(canonical_config(v) for v in obj))
        return f"set:[{inner}]"
    if isinstance(obj, dict):
        items = sorted((canonical_config(k), canonical_config(v)) for k, v in obj.items())
        inner = ",".join(f"{k}={v}" for k, v in items)
        return f"dict:{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = canonical_config(dataclasses.asdict(obj))
        return f"dc:{type(obj).__module__}.{type(obj).__qualname__}:{body}"
    raise ConfigurationError(
        f"cannot build a stable cache key from {type(obj).__name__!r} value {obj!r}"
    )


def _func_name(func: Union[str, Callable[..., Any]]) -> str:
    if isinstance(func, str):
        return func
    return f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"


def config_digest(
    func: Union[str, Callable[..., Any]],
    config: dict[str, Any],
    version: Optional[str] = None,
) -> str:
    """SHA-256 key over (function name, canonical config, package version).

    Path-selection kwargs (:data:`PATH_ONLY_KEYS`) are excluded: they
    change how a result is computed, never what it is.
    """
    if version is None:
        from repro import __version__ as version
    config = {k: v for k, v in config.items() if k not in PATH_ONLY_KEYS}
    text = "\x1e".join((_func_name(func), canonical_config(config), f"v:{version}"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed pickle store for deterministic experiment results.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_dir`.
    version:
        Version string folded into every key; defaults to
        :data:`repro.__version__`, so upgrading the package invalidates
        all prior entries.

    telemetry:
        A :class:`repro.telemetry.TelemetryRecorder` (or ``None``).
        When recording, every load/store also lands as ``cache.hit`` /
        ``cache.miss`` / ``cache.store`` counters plus latency timings
        (``cache.load.hit``, ``cache.load.miss``, ``cache.store``).
        :func:`repro.analysis.runner.run_grid` attaches its recorder
        here automatically.

    Counters ``hits`` / ``misses`` / ``stores`` track usage for
    reporting (e.g. the CLI prints them after a cached regeneration).
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        version: Optional[str] = None,
        telemetry=None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if version is None:
            from repro import __version__ as version
        self.version = str(version)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.telemetry = ensure_telemetry(telemetry)

    # ------------------------------------------------------------------
    def key(self, func: Union[str, Callable[..., Any]], config: dict[str, Any]) -> str:
        """Digest identifying ``func(**config)`` under this cache's version."""
        return config_digest(func, config, version=self.version)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def load(self, digest: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; corrupt entries are dropped and miss."""
        tele = self.telemetry
        start = perf_counter() if tele.enabled else 0.0
        path = self.path_for(digest)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            self._note_load(tele, start, hit=False)
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Truncated write, unreadable file, or a payload whose class
            # no longer unpickles: treat as a miss and clear the entry.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self._note_load(tele, start, hit=False)
            return False, None
        self.hits += 1
        self._note_load(tele, start, hit=True)
        return True, value

    @staticmethod
    def _note_load(tele, start: float, *, hit: bool) -> None:
        if tele.enabled:
            outcome = "hit" if hit else "miss"
            tele.count(f"cache.{outcome}")
            tele.observe(f"cache.load.{outcome}", perf_counter() - start)

    def store(self, digest: str, value: Any) -> bool:
        """Atomically persist ``value``; returns False if unpicklable.

        An unusable cache root (a plain file, no write permission) also
        returns False — caching degrades to recomputation, it never
        takes the experiment down.
        """
        tele = self.telemetry
        start = perf_counter() if tele.enabled else 0.0
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError:
            return False
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, self.path_for(digest))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        if tele.enabled:
            tele.count("cache.store")
            tele.observe("cache.store", perf_counter() - start)
        return True

    # ------------------------------------------------------------------
    def call(self, func: Callable[..., Any], /, **kwargs: Any) -> Any:
        """``func(**kwargs)`` through the cache (compute on miss, store)."""
        digest = self.key(func, kwargs)
        hit, value = self.load(digest)
        if hit:
            return value
        value = func(**kwargs)
        self.store(digest, value)
        return value

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(root={str(self.root)!r}, version={self.version!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )
