"""HTTP/JSON API of the trace-correction service (stdlib only).

A :class:`http.server.ThreadingHTTPServer` front end over
:class:`repro.service.application.JobManager`.  Routes (all JSON unless
noted):

================================  =====================================
``POST /v1/jobs``                 submit a correction job (body: a
                                  :class:`CorrectionRequest`); 202 with
                                  the job record, 200 when dedup/cache
                                  made it instantly ``done``
``GET /v1/jobs``                  list job records
``GET /v1/jobs/<id>``             poll one job's status
``GET /v1/jobs/<id>/report``      the finished outcome summary
                                  (violation report, digests, timings)
``GET /v1/jobs/<id>/trace``       the corrected trace as canonical
                                  ``.jsonl`` text
                                  (``application/x-ndjson``)
``POST /v1/jobs/<id>/cancel``     cancel a still-queued job (also
                                  ``DELETE /v1/jobs/<id>``)
``GET /metrics``                  Prometheus text exposition of the
                                  service counters and timings
``GET /healthz``                  liveness + worker count
================================  =====================================

Every error body is ``{"error": {"code", "message", "http"}}`` with a
stable machine-readable ``code`` from
:data:`repro.service.domain.ERROR_HTTP_STATUS` — clients branch on the
code, never on message text.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.application import JobManager
from repro.service.domain import CorrectionRequest, JobState, ServiceError

__all__ = ["ServiceServer", "make_server"]

#: Refuse request bodies beyond this (inline traces are big; abuse is
#: bigger).  64 MiB comfortably fits every built-in workload's trace.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the manager lives on ``self.server.manager``."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, obj: dict) -> None:
        body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json")

    def _send_error(self, exc: ServiceError) -> None:
        self._send_json(exc.http_status, exc.to_json())

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                "bad_request",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length) if length else b""

    def _json_body(self) -> dict:
        raw = self._read_body()
        if not raw:
            raise ServiceError("bad_request", "request body must be JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError("bad_request", f"invalid JSON body: {exc}") from exc

    def _route(self) -> tuple[str, Optional[str], Optional[str]]:
        """Split ``/v1/jobs/<id>/<verb>`` into (head, job_id, verb)."""
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts[:2] == ["v1", "jobs"]:
            job_id = parts[2] if len(parts) > 2 else None
            verb = parts[3] if len(parts) > 3 else None
            if len(parts) <= 4:
                return "jobs", job_id, verb
        return "/".join(parts), None, None

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        try:
            head, job_id, verb = self._route()
            if head == "metrics":
                from repro.telemetry.export import to_prometheus

                text = to_prometheus(self.manager.telemetry.snapshot())
                self._send(200, text.encode("utf-8"), "text/plain; version=0.0.4")
            elif head == "healthz":
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "workers": self.manager.pool.alive,
                        "queued": len(self.manager.queue),
                    },
                )
            elif head == "jobs" and job_id is None:
                self._send_json(
                    200, {"jobs": [j.to_json() for j in self.manager.jobs()]}
                )
            elif head == "jobs" and verb is None:
                self._send_json(200, self.manager.get(job_id).to_json())
            elif head == "jobs" and verb == "report":
                outcome = self.manager.fetch(job_id)
                self._send_json(200, outcome.to_json())
            elif head == "jobs" and verb == "trace":
                outcome = self.manager.fetch(job_id)
                if outcome.trace_jsonl is None:
                    raise ServiceError(
                        "not_materializable",
                        f"job {job_id} corrected a sharded trace; its result "
                        f"stays on the server at {outcome.result_dir}",
                    )
                self._send(
                    200,
                    outcome.trace_jsonl.encode("utf-8"),
                    "application/x-ndjson",
                )
            else:
                raise ServiceError("unknown_job", f"no such resource: {self.path}")
        except ServiceError as exc:
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            head, job_id, verb = self._route()
            if head == "jobs" and job_id is None:
                request = CorrectionRequest.from_json(self._json_body())
                job = self.manager.submit(request)
                status = 200 if job.state is JobState.DONE else 202
                self._send_json(status, job.to_json())
            elif head == "jobs" and verb == "cancel":
                job = self.manager.cancel(job_id)
                self._send_json(200, job.to_json())
            else:
                raise ServiceError("unknown_job", f"no such resource: {self.path}")
        except ServiceError as exc:
            self._send_error(exc)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        try:
            head, job_id, verb = self._route()
            if head == "jobs" and job_id is not None and verb is None:
                job = self.manager.cancel(job_id)
                self._send_json(200, job.to_json())
            else:
                raise ServiceError("unknown_job", f"no such resource: {self.path}")
        except ServiceError as exc:
            self._send_error(exc)


class ServiceServer(ThreadingHTTPServer):
    """The service's HTTP server; owns a :class:`JobManager`."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], manager: JobManager, verbose: bool = False
    ) -> None:
        super().__init__(address, _Handler)
        self.manager = manager
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    def shutdown(self) -> None:  # stop workers with the listener
        super().shutdown()
        self.manager.stop()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    manager: Optional[JobManager] = None,
    work_dir=None,
    cache=None,
    workers: int = 2,
    max_attempts: int = 3,
    verbose: bool = False,
) -> ServiceServer:
    """Build a ready (not yet serving) server; ``port=0`` picks a free one.

    With no explicit ``manager`` one is created from ``work_dir`` (a
    temp-style directory the caller owns), ``cache``, and the worker
    knobs; its pool is started.  Call ``serve_forever()`` to serve and
    ``shutdown()`` to stop both the listener and the workers.
    """
    if manager is None:
        if work_dir is None:
            raise ServiceError("bad_config", "make_server needs work_dir or manager")
        manager = JobManager(
            work_dir, cache=cache, workers=workers, max_attempts=max_attempts
        )
    server = ServiceServer((host, port), manager, verbose=verbose)
    manager.start()
    return server
