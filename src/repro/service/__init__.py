"""The long-running trace-correction service.

Turns the one-call facade :func:`repro.core.correct.correct_trace` into
a queued, deduplicating, metrics-scraped HTTP service — the deployment
shape the ROADMAP's "correction as a service" item asks for.  Layers,
dependency-downward only:

* :mod:`repro.service.api` — stdlib ``ThreadingHTTPServer`` HTTP/JSON
  front end (submit / status / fetch / cancel / ``/metrics``);
* :mod:`repro.service.application` — :class:`JobManager`: dedup via
  content digests + :class:`repro.cache.ResultCache`, bounded retries,
  dead-letter, per-job audit manifests;
* :mod:`repro.service.domain` — requests, job states, and the stable
  machine-readable error codes;
* :mod:`repro.service.infrastructure` — queue, worker threads, atomic
  manifest store, thread-safe telemetry facade;
* :mod:`repro.service.client` — urllib :class:`ServiceClient`.

Quick start (in-process)::

    from repro.service import JobManager, make_server
    server = make_server(port=0, work_dir="/tmp/repro-service")
    # serve_forever() in a thread; ServiceClient(f"http://127.0.0.1:{server.port}")

or from the CLI: ``repro serve --port 8631`` then ``repro submit
--workload pingpong``.
"""

from repro.service.application import JobManager, execute_correction
from repro.service.api import ServiceServer, make_server
from repro.service.client import ServiceClient
from repro.service.domain import (
    CorrectionRequest,
    JobOutcome,
    JobRecord,
    JobState,
    ServiceError,
    WorkloadSpec,
    classify_error,
)
from repro.service.infrastructure import LockedTelemetry

__all__ = [
    "CorrectionRequest",
    "JobManager",
    "JobOutcome",
    "JobRecord",
    "JobState",
    "LockedTelemetry",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "WorkloadSpec",
    "classify_error",
    "execute_correction",
    "make_server",
]
