"""Python client for the correction service (urllib, no dependencies).

:class:`ServiceClient` wraps the HTTP API of :mod:`repro.service.api`
in blocking calls that speak domain objects::

    from repro import ServiceClient
    client = ServiceClient("http://127.0.0.1:8631")
    job = client.submit_workload("pingpong", nprocs=4)
    job = client.wait(job["id"])
    text = client.fetch_trace(job["id"])      # canonical .jsonl

Server-side :class:`~repro.service.domain.ServiceError` bodies are
re-raised as :class:`ServiceError` with the same stable ``code``, so
callers branch identically whether the failure happened in-process or
across the wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.service.domain import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking HTTP client; one instance per service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, bytes, str]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (
                    resp.status,
                    resp.read(),
                    resp.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            raise self._error_from(exc.code, payload) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                "internal", f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _error_from(status: int, payload: bytes) -> ServiceError:
        try:
            obj = json.loads(payload.decode("utf-8"))
            err = obj["error"]
            return ServiceError(err["code"], err["message"])
        except (ValueError, KeyError, TypeError):
            return ServiceError("internal", f"HTTP {status}: {payload[:200]!r}")

    def _json(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        _, payload, _ = self._request(method, path, body)
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Submit a raw :class:`CorrectionRequest` JSON body; returns the job."""
        return self._json("POST", "/v1/jobs", request)

    def submit_trace(self, trace, **knobs) -> dict:
        """Submit an in-memory :class:`~repro.tracing.trace.Trace` (or
        pre-rendered ``.jsonl`` text) inline."""
        if isinstance(trace, str):
            payload = trace
        else:
            from repro.tracing.writer import trace_to_jsonl

            payload = trace_to_jsonl(trace)
        return self.submit({"trace_inline": payload, **knobs})

    def submit_workload(self, name: str, **spec_and_knobs) -> dict:
        """Submit a built-in workload job.

        Workload fields (``nprocs``, ``scale``, ``seed``, ``platform``,
        ``placement``, ``timer``, ``engine``) go into the spec; anything
        else is a correction knob.
        """
        workload_fields = {
            "nprocs", "scale", "seed", "platform", "placement", "timer", "engine",
        }
        spec = {"name": name}
        knobs = {}
        for key, value in spec_and_knobs.items():
            (spec if key in workload_fields else knobs)[key] = value
        return self.submit({"workload": spec, **knobs})

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def report(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/report")

    def fetch_trace(self, job_id: str) -> str:
        """The corrected trace as canonical ``.jsonl`` text."""
        _, payload, _ = self._request("GET", f"/v1/jobs/{job_id}/trace")
        return payload.decode("utf-8")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        _, payload, _ = self._request("GET", "/metrics")
        return payload.decode("utf-8")

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    # ------------------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final record.

        Raises :class:`ServiceError` (``not_ready``) on timeout — the
        job keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "not_ready",
                    f"job {job_id} still {job['state']} after {timeout:.0f}s",
                )
            time.sleep(poll)
