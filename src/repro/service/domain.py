"""Domain model of the trace-correction service.

Pure data and rules — no threads, no sockets, no disk beyond hashing
inputs.  The application layer (:mod:`repro.service.application`)
executes jobs over this model; the HTTP layer
(:mod:`repro.service.api`) serializes it.

The central objects:

* :class:`CorrectionRequest` — what a client asks for: exactly one
  trace *source* (an inline ``.jsonl`` payload, a server-local trace
  file or sharded trace directory, or a built-in workload spec) plus
  the correction parameters of
  :func:`repro.core.correct.correct_trace`.  Requests are
  content-addressed: :meth:`CorrectionRequest.digest` folds the source
  identity (payload hashes, not paths), every correction knob, and the
  package version into one SHA-256, which is the deduplication key and
  the :class:`repro.cache.ResultCache` key.
* :class:`JobRecord` — one submitted job's lifecycle:
  ``queued -> running -> done`` with the failure exits ``failed``
  (deterministic error), ``cancelled`` (client cancelled mid-queue) and
  ``dead`` (crashed ``max_attempts`` times, the dead-letter state).
* :class:`ServiceError` and :func:`classify_error` — the stable
  machine-readable error codes every HTTP error body carries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.errors import (
    ConfigurationError,
    MatchingError,
    ReproError,
    SimulationError,
    SynchronizationError,
    TraceError,
)

__all__ = [
    "CorrectionRequest",
    "ERROR_HTTP_STATUS",
    "JobOutcome",
    "JobRecord",
    "JobState",
    "ServiceError",
    "TERMINAL_STATES",
    "WorkloadSpec",
    "classify_error",
]


class JobState(str, enum.Enum):
    """Lifecycle of a correction job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"        # deterministic error; retrying cannot help
    CANCELLED = "cancelled"  # client cancelled while still queued
    DEAD = "dead"            # crashed max_attempts times (dead-letter)


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.DEAD}
)


#: Stable error code -> HTTP status.  Codes are part of the API
#: contract (documented in docs/service.md); add, never repurpose.
ERROR_HTTP_STATUS = {
    "bad_request": 400,
    "bad_trace": 400,
    "bad_config": 400,
    "unknown_workload": 400,
    "unknown_job": 404,
    "not_ready": 409,
    "not_cancellable": 409,
    "cancelled": 409,
    "not_materializable": 409,
    "sync_failed": 422,
    "worker_crashed": 500,
    "internal": 500,
}


class ServiceError(ReproError):
    """A service-level failure with a stable machine-readable code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_HTTP_STATUS:
            raise ValueError(f"unknown service error code {code!r}")
        super().__init__(message)
        self.code = code
        self.http_status = ERROR_HTTP_STATUS[code]

    def to_json(self) -> dict:
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                "http": self.http_status,
            }
        }


def classify_error(exc: BaseException) -> str:
    """Map an exception to its stable service error code.

    The mapping is intentionally coarse: clients branch on the code,
    humans read the message.  Anything that is not a deliberate
    :class:`ReproError` counts as a worker crash (retryable).
    """
    if isinstance(exc, ServiceError):
        return exc.code
    if isinstance(exc, (TraceError, MatchingError)):
        return "bad_trace"
    if isinstance(exc, ConfigurationError):
        if "unknown workload" in str(exc):
            return "unknown_workload"
        return "bad_config"
    if isinstance(exc, (SynchronizationError, SimulationError)):
        return "sync_failed"
    if isinstance(exc, ReproError):
        return "bad_request"
    return "worker_crashed"


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A built-in workload to simulate server-side before correcting.

    Field defaults mirror ``repro simulate``, so a spec naming only
    ``name`` corrects exactly what the bare CLI invocation traces.
    """

    name: str
    nprocs: int = 8
    scale: float = 0.02
    seed: int = 0
    platform: str = "xeon"
    placement: str = "scheduler"
    timer: Optional[str] = None
    engine: str = "reference"

    def validate(self) -> None:
        from repro.options import ENGINES
        from repro.workloads import WORKLOADS

        if self.name not in WORKLOADS:
            raise ServiceError(
                "unknown_workload",
                f"unknown workload {self.name!r}; known: "
                f"{', '.join(sorted(WORKLOADS))}",
            )
        if not isinstance(self.nprocs, int) or self.nprocs < 1:
            raise ServiceError(
                "bad_config", f"nprocs must be a positive int, got {self.nprocs!r}"
            )
        if self.engine not in ENGINES:
            raise ServiceError(
                "bad_config",
                f"unknown engine {self.engine!r}; expected one of {', '.join(ENGINES)}",
            )
        if self.placement not in ("spread", "scheduler"):
            raise ServiceError(
                "bad_config",
                f"unknown placement {self.placement!r} (use 'spread' or 'scheduler')",
            )

    @classmethod
    def from_json(cls, obj: dict) -> "WorkloadSpec":
        if not isinstance(obj, dict) or "name" not in obj:
            raise ServiceError(
                "bad_request", "workload spec must be an object with a 'name'"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(obj) - known
        if unknown:
            raise ServiceError(
                "bad_request", f"unknown workload field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**obj)


@dataclass(frozen=True)
class CorrectionRequest:
    """One correction job, content-addressed.

    Exactly one of the four sources must be set:

    ``trace_inline``
        A full ``.jsonl`` trace payload (what
        :func:`repro.tracing.writer.trace_to_jsonl` produces).
    ``trace_path``
        A server-local ``.npz`` / ``.jsonl`` trace file.
    ``trace_dir``
        A server-local sharded trace directory — corrected out-of-core;
        the result stays on the server as a sharded directory.
    ``workload``
        A :class:`WorkloadSpec` simulated server-side first.
    """

    trace_inline: Optional[str] = None
    trace_path: Optional[str] = None
    trace_dir: Optional[str] = None
    workload: Optional[WorkloadSpec] = None
    interpolation: str = "linear"
    clc: bool = True
    gamma: float = 0.99
    lmin: float = 0.0

    def validate(self) -> None:
        from repro.core.correct import INTERPOLATIONS, STREAMING_INTERPOLATIONS

        sources = [
            s for s in (
                self.trace_inline, self.trace_path, self.trace_dir, self.workload
            ) if s is not None
        ]
        if len(sources) != 1:
            raise ServiceError(
                "bad_request",
                "give exactly one source: trace_inline, trace_path, "
                f"trace_dir, or workload (got {len(sources)})",
            )
        if self.interpolation not in INTERPOLATIONS:
            raise ServiceError(
                "bad_config",
                f"unknown interpolation {self.interpolation!r}; known: "
                f"{', '.join(INTERPOLATIONS)}",
            )
        if self.trace_dir is not None and self.interpolation not in STREAMING_INTERPOLATIONS:
            raise ServiceError(
                "bad_config",
                f"sharded traces support interpolation "
                f"{', '.join(STREAMING_INTERPOLATIONS)}, not {self.interpolation!r}",
            )
        if self.interpolation == "none" and not self.clc:
            raise ServiceError(
                "bad_request", "nothing to apply: interpolation 'none' without clc"
            )
        if not 0.0 < self.gamma <= 1.0:
            raise ServiceError(
                "bad_config", f"gamma must be in (0, 1], got {self.gamma!r}"
            )
        if self.lmin < 0.0:
            raise ServiceError("bad_config", f"lmin must be >= 0, got {self.lmin!r}")
        if self.workload is not None:
            self.workload.validate()

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content digest: the dedup and result-cache key.

        Sources are hashed by *content* where the content is available
        (inline payloads, local files, shard manifests — the manifest
        carries every shard's SHA-256, so hashing it is hashing the
        data), so two requests for the same bytes deduplicate no matter
        how they were submitted.  The package version is folded in via
        :func:`repro.cache.config_digest`, so an upgrade never replays
        a stale result.
        """
        from repro.cache import config_digest

        cfg: dict[str, Any] = {
            "interpolation": self.interpolation,
            "clc": self.clc,
            "gamma": self.gamma,
            "lmin": self.lmin,
        }
        if self.trace_inline is not None:
            cfg["trace_sha256"] = hashlib.sha256(
                self.trace_inline.encode("utf-8")
            ).hexdigest()
        elif self.trace_path is not None:
            cfg["trace_sha256"] = _hash_file(self.trace_path)
        elif self.trace_dir is not None:
            cfg["manifest_sha256"] = _hash_file(Path(self.trace_dir) / "manifest.jsonl")
        elif self.workload is not None:
            cfg["workload"] = dataclasses.asdict(self.workload)
        return config_digest("repro.service.correct_trace", cfg)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        out: dict[str, Any] = {
            "interpolation": self.interpolation,
            "clc": self.clc,
            "gamma": self.gamma,
            "lmin": self.lmin,
        }
        if self.trace_inline is not None:
            out["trace_inline"] = self.trace_inline
        if self.trace_path is not None:
            out["trace_path"] = self.trace_path
        if self.trace_dir is not None:
            out["trace_dir"] = self.trace_dir
        if self.workload is not None:
            out["workload"] = dataclasses.asdict(self.workload)
        return out

    def describe(self) -> dict:
        """`to_json` with inline payloads elided (manifest/status bodies)."""
        out = self.to_json()
        if "trace_inline" in out:
            out["trace_inline"] = {
                "sha256": hashlib.sha256(
                    self.trace_inline.encode("utf-8")
                ).hexdigest(),
                "bytes": len(self.trace_inline.encode("utf-8")),
            }
        return out

    @classmethod
    def from_json(cls, obj: Any) -> "CorrectionRequest":
        if not isinstance(obj, dict):
            raise ServiceError("bad_request", "request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(obj) - known
        if unknown:
            raise ServiceError(
                "bad_request", f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = dict(obj)
        if kwargs.get("workload") is not None:
            kwargs["workload"] = WorkloadSpec.from_json(kwargs["workload"])
        try:
            request = cls(**kwargs)
        except TypeError as exc:
            raise ServiceError("bad_request", f"malformed request: {exc}") from exc
        request.validate()
        return request


def _hash_file(path) -> str:
    path = Path(path)
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError as exc:
        raise ServiceError("bad_trace", f"cannot read {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """What a finished correction produced (picklable: cache payload).

    ``trace_jsonl`` is the corrected trace in canonical ``.jsonl`` form
    for materialized sources; sharded sources leave the result on the
    server and set ``result_dir`` instead.
    """

    trace_sha256: str
    report: dict
    events: int
    trace_jsonl: Optional[str] = None
    result_dir: Optional[str] = None
    engine: Optional[str] = None
    fallback_reason: Optional[str] = None
    timings: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Result summary (no trace payload — that is the fetch body)."""
        return {
            "trace_sha256": self.trace_sha256,
            "events": self.events,
            "report": self.report,
            "result_dir": self.result_dir,
            "engine": self.engine,
            "fallback_reason": self.fallback_reason,
            "timings": dict(self.timings),
            "materializable": self.trace_jsonl is not None,
        }


@dataclass
class JobRecord:
    """One submitted job's full lifecycle state."""

    id: str
    request: CorrectionRequest
    digest: str
    state: JobState = JobState.QUEUED
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    attempts: int = 0
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    outcome: Optional[JobOutcome] = None
    from_cache: bool = False
    manifest_path: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict:
        out = {
            "id": self.id,
            "state": self.state.value,
            "request_digest": self.digest,
            "request": self.request.describe(),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "from_cache": self.from_cache,
        }
        if self.error_code is not None:
            out["error"] = {"code": self.error_code, "message": self.error_message}
        if self.outcome is not None:
            out["result"] = self.outcome.to_json()
        return out

    def manifest(self) -> dict:
        """The audit manifest persisted as ``manifest.json``."""
        from repro import __version__

        manifest = {
            "kind": "repro.service.job",
            "version": __version__,
            "job_id": self.id,
            "request_digest": self.digest,
            "request": self.request.describe(),
            "state": self.state.value,
            "attempts": self.attempts,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "from_cache": self.from_cache,
        }
        if self.error_code is not None:
            manifest["error"] = {"code": self.error_code, "message": self.error_message}
        if self.outcome is not None:
            manifest["result"] = self.outcome.to_json()
        return manifest
