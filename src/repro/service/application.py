"""Application layer: job lifecycle policy over the domain model.

:class:`JobManager` owns every rule the HTTP layer must not:

* **Deduplication, twice.**  A submit whose request digest matches a
  *live or done* job joins that job (counter
  ``service.jobs.deduplicated``) — two identical concurrent submissions
  compute once, structurally.  A submit whose digest hits the
  :class:`repro.cache.ResultCache` is born ``done`` without ever
  queueing (the cache's own ``cache.hit`` counter proves it).
* **Retries and the dead letter.**  A deterministic
  :class:`repro.errors.ReproError` fails the job immediately — the same
  input will fail the same way forever.  Anything else is treated as a
  worker crash: the job is requeued (``service.jobs.retried``) until
  ``max_attempts``, then parked as ``dead`` (``service.jobs.dead``) with
  the last error preserved.  Dead jobs keep their manifest, so the dead
  letter is inspectable on disk.
* **Manifests.**  Every terminal transition writes the job's
  ``manifest.json`` (request digest, elided request, timings, result
  digests) through :class:`repro.service.infrastructure.ManifestStore`.

:func:`execute_correction` is the one function a worker runs per
attempt.  It is deliberately just a thin adapter from a
:class:`~repro.service.domain.CorrectionRequest` onto
:func:`repro.core.correct.correct_trace` (and
:func:`repro.workloads.simulate_workload` for workload sources) — the
service adds queueing and bookkeeping, never correction semantics.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.cache import ResultCache
from repro.service.domain import (
    CorrectionRequest,
    JobOutcome,
    JobRecord,
    JobState,
    ServiceError,
    classify_error,
)
from repro.service.infrastructure import (
    JobQueue,
    LockedTelemetry,
    ManifestStore,
    WorkerPool,
)

__all__ = ["JobManager", "execute_correction"]


def execute_correction(
    request: CorrectionRequest, job_dir: Union[str, Path]
) -> JobOutcome:
    """Run one correction attempt; the worker-side unit of work.

    ``job_dir`` is the job's directory in the manifest store — streamed
    (``trace_dir``) results land in ``<job_dir>/result`` and stay on the
    server; every other source returns the corrected trace inline as
    canonical ``.jsonl``.
    """
    from repro.core.correct import correct_trace
    from repro.tracing.writer import trace_to_jsonl

    job_dir = Path(job_dir)
    kwargs = dict(
        interpolation=request.interpolation,
        clc=request.clc,
        gamma=request.gamma,
        lmin=request.lmin,
    )

    engine = None
    fallback_reason = None
    if request.workload is not None:
        from repro.options import RunOptions
        from repro.workloads import simulate_workload

        spec = request.workload
        run = simulate_workload(
            spec.name,
            nprocs=spec.nprocs,
            scale=spec.scale,
            seed=spec.seed,
            platform=spec.platform,
            placement=spec.placement,
            timer=spec.timer,
            options=RunOptions(engine=spec.engine),
        )
        engine = getattr(run, "engine", None)
        fallback_reason = getattr(run, "fallback_reason", None)
        result = correct_trace(run, **kwargs)
    elif request.trace_inline is not None:
        from repro.tracing.reader import trace_from_jsonl

        trace = trace_from_jsonl(request.trace_inline, label="<inline trace>")
        result = correct_trace(trace, **kwargs)
    elif request.trace_path is not None:
        path = Path(request.trace_path)
        if path.is_dir():
            raise ServiceError(
                "bad_request",
                f"trace_path {path} is a directory; sharded traces go in "
                "trace_dir",
            )
        result = correct_trace(path, **kwargs)
    else:
        out_dir = job_dir / "result"
        result = correct_trace(request.trace_dir, output=out_dir, **kwargs)
        manifest = out_dir / "manifest.jsonl"
        return JobOutcome(
            trace_sha256=hashlib.sha256(manifest.read_bytes()).hexdigest(),
            report=result.to_dict(),
            events=result.trace.total_events(),
            result_dir=str(out_dir),
            timings=dict(result.timings),
        )

    payload = trace_to_jsonl(result.trace)
    return JobOutcome(
        trace_sha256=hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        report=result.to_dict(),
        events=result.trace.total_events(),
        trace_jsonl=payload,
        engine=engine,
        fallback_reason=fallback_reason,
        timings=dict(result.timings),
    )


class JobManager:
    """Thread-safe job registry + worker pool + dedup + dead letter.

    Parameters
    ----------
    work_dir:
        Root for per-job manifests and server-side results.
    cache:
        A :class:`ResultCache` for completed outcomes, or ``None`` to
        disable cross-restart dedup (live-job dedup still applies).
    workers:
        Worker-thread count.
    max_attempts:
        Crash budget per job before it goes to the dead letter.
    executor:
        The per-attempt work function ``(request, job_dir) -> JobOutcome``;
        defaults to :func:`execute_correction`.  Tests inject crashing or
        recording executors here.
    telemetry:
        A :class:`LockedTelemetry` (created if omitted); scraped by
        ``/metrics``.
    """

    def __init__(
        self,
        work_dir: Union[str, Path],
        cache: Optional[ResultCache] = None,
        workers: int = 2,
        max_attempts: int = 3,
        executor: Optional[Callable[[CorrectionRequest, Path], JobOutcome]] = None,
        telemetry: Optional[LockedTelemetry] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else LockedTelemetry()
        self.store = ManifestStore(work_dir)
        self.cache = cache
        if cache is not None:
            cache.telemetry = self.telemetry
        self.max_attempts = max_attempts
        self.executor = executor if executor is not None else execute_correction
        self.clock = clock
        self.queue = JobQueue()
        self.pool = WorkerPool(
            self.queue, self._run_job, workers=workers, on_crash=self._note_crash
        )
        import threading

        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_digest: dict[str, str] = {}  # digest -> newest job id
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pool.start()

    def stop(self, timeout: float = 10.0) -> None:
        self.pool.stop(timeout=timeout)

    # ------------------------------------------------------------------
    def submit(self, request: CorrectionRequest) -> JobRecord:
        """Register a job; dedups against live/done jobs and the cache."""
        request.validate()
        digest = request.digest()
        with self._lock:
            self.telemetry.count("service.jobs.submitted")
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                # Join any job that can still produce (or has produced)
                # the answer; failed/cancelled/dead digests resubmit.
                if not existing.terminal or existing.state is JobState.DONE:
                    self.telemetry.count("service.jobs.deduplicated")
                    return existing

            job = JobRecord(
                id=f"job-{next(self._ids):06d}",
                request=request,
                digest=digest,
                created=self.clock(),
            )
            self._jobs[job.id] = job
            self._by_digest[digest] = job.id

            if self.cache is not None:
                hit, outcome = self.cache.load(digest)
                if hit and isinstance(outcome, JobOutcome):
                    job.state = JobState.DONE
                    job.outcome = outcome
                    job.from_cache = True
                    job.finished = job.created
                    self.telemetry.count("service.jobs.completed")
                    self._write_manifest(job)
                    return job

            job.state = JobState.QUEUED
        self.queue.push(job.id)
        return job

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("unknown_job", f"no job {job_id!r}")
        return job

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def fetch(self, job_id: str) -> JobOutcome:
        """The finished outcome; errors carry the job's state as a code."""
        job = self.get(job_id)
        with self._lock:
            state, outcome = job.state, job.outcome
            code, message = job.error_code, job.error_message
        if state is JobState.DONE and outcome is not None:
            return outcome
        if state is JobState.CANCELLED:
            raise ServiceError("cancelled", f"job {job_id} was cancelled")
        if state is JobState.FAILED:
            raise ServiceError(
                code or "internal", f"job {job_id} failed: {message}"
            )
        if state is JobState.DEAD:
            raise ServiceError(
                "worker_crashed",
                f"job {job_id} crashed {self.max_attempts} times; last error: "
                f"{message}",
            )
        raise ServiceError(
            "not_ready", f"job {job_id} is {state.value}; poll status until done"
        )

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a still-queued job; running/terminal jobs refuse."""
        job = self.get(job_id)
        with self._lock:
            if job.state is not JobState.QUEUED:
                raise ServiceError(
                    "not_cancellable",
                    f"job {job_id} is {job.state.value}; only queued jobs "
                    "can be cancelled",
                )
            # Between the check above and remove() no worker can claim
            # the id: workers mark RUNNING under this same lock.
            self.queue.remove(job_id)
            job.state = JobState.CANCELLED
            job.finished = self.clock()
            self.telemetry.count("service.jobs.cancelled")
            self._write_manifest(job)
        return job

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run_job(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return  # cancelled (or gone) between pop and claim
            job.state = JobState.RUNNING
            job.attempts += 1
            if job.started is None:
                job.started = self.clock()

        try:
            outcome = self.executor(job.request, self.store.job_dir(job_id))
        except ServiceError as exc:
            self._finish_error(job, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - classified below
            code = classify_error(exc)
            if code == "worker_crashed":
                self._crash(job, exc)
            else:
                self._finish_error(job, code, str(exc))
        else:
            self._finish_done(job, outcome)

    def _finish_done(self, job: JobRecord, outcome: JobOutcome) -> None:
        if self.cache is not None:
            self.cache.store(job.digest, outcome)
        with self._lock:
            job.state = JobState.DONE
            job.outcome = outcome
            job.finished = self.clock()
            self.telemetry.count("service.jobs.completed")
            if job.started is not None:
                self.telemetry.observe(
                    "service.job.duration", job.finished - job.started
                )
            self._write_manifest(job)

    def _finish_error(self, job: JobRecord, code: str, message: str) -> None:
        with self._lock:
            job.state = JobState.FAILED
            job.error_code = code
            job.error_message = message
            job.finished = self.clock()
            self.telemetry.count("service.jobs.failed")
            self._write_manifest(job)

    def _crash(self, job: JobRecord, exc: BaseException) -> None:
        with self._lock:
            job.error_code = "worker_crashed"
            job.error_message = f"{type(exc).__name__}: {exc}"
            if job.attempts < self.max_attempts:
                job.state = JobState.QUEUED
                self.telemetry.count("service.jobs.retried")
                requeue = True
            else:
                job.state = JobState.DEAD
                job.finished = self.clock()
                self.telemetry.count("service.jobs.dead")
                self._write_manifest(job)
                requeue = False
        if requeue:
            self.queue.push(job.id)

    def _note_crash(self, job_id: str, exc: BaseException) -> None:
        """Pool-level backstop: _run_job itself raised (a manager bug)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            job.state = JobState.DEAD
            job.error_code = "worker_crashed"
            job.error_message = f"{type(exc).__name__}: {exc}"
            job.finished = self.clock()
            self.telemetry.count("service.jobs.dead")
            self._write_manifest(job)

    # ------------------------------------------------------------------
    def _write_manifest(self, job: JobRecord) -> None:
        """Persist the audit manifest; never lets disk trouble kill a job."""
        try:
            path = self.store.write_manifest(job.id, job.manifest())
            job.manifest_path = str(path)
        except OSError:
            pass
