"""Infrastructure of the correction service: threads, queue, disk.

Mechanism only — no job-lifecycle policy (that is
:class:`repro.service.application.JobManager`'s).  Three pieces:

* :class:`JobQueue` — a condition-variable FIFO of job ids with the one
  extra operation a correction service needs: :meth:`JobQueue.remove`,
  so a queued job can be cancelled before a worker claims it.
* :class:`WorkerPool` — N daemon threads draining the queue into a
  handler callable.  The pool knows nothing about jobs; crash isolation
  (a handler exception must never kill a worker) is the only policy it
  carries.
* :class:`ManifestStore` — one directory per job under the service work
  dir, holding the audit ``manifest.json`` (atomic replace, so a
  half-written manifest is never observed) and any server-side result
  artifacts (e.g. the corrected shard directory of a ``trace_dir`` job).

:class:`LockedTelemetry` wraps the (deliberately lock-free,
single-threaded) :class:`repro.telemetry.TelemetryRecorder` for the one
place this package shares a recorder across threads: service counters
and timings updated by workers and scraped by ``/metrics``.  Spans stay
unsupported — the recorder's span stack is inherently per-thread.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Union

from repro.telemetry import TelemetryRecorder

__all__ = ["JobQueue", "LockedTelemetry", "ManifestStore", "WorkerPool"]


class LockedTelemetry:
    """Thread-safe facade over a :class:`TelemetryRecorder`.

    Exposes the scalar half of the telemetry protocol (``count`` /
    ``gauge`` / ``gauge_max`` / ``observe`` / ``snapshot``) behind one
    lock.  ``span`` raises: span nesting is tracked on a plain stack in
    the recorder and cannot be shared between threads — per-job spans
    belong on a per-thread recorder, not here.
    """

    enabled = True

    def __init__(self, recorder: Optional[TelemetryRecorder] = None) -> None:
        self.recorder = recorder if recorder is not None else TelemetryRecorder()
        self._lock = threading.Lock()

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.recorder.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.recorder.gauge(name, value)

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            self.recorder.gauge_max(name, value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self.recorder.observe(name, seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return self.recorder.snapshot()

    def span(self, name, /, **attrs):
        raise RuntimeError(
            "LockedTelemetry does not support spans; use a per-thread "
            "TelemetryRecorder for span recording"
        )

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return int(self.recorder.counters.get(name, 0))


class JobQueue:
    """FIFO of job ids with blocking pop, removal, and shutdown."""

    def __init__(self) -> None:
        self._items: deque[str] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def push(self, job_id: str) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._items.append(job_id)
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next job id; ``None`` once closed and drained (or on timeout)."""
        with self._cond:
            while not self._items and not self._closed:
                if not self._cond.wait(timeout=timeout):
                    return None
            if self._items:
                return self._items.popleft()
            return None  # closed and drained

    def remove(self, job_id: str) -> bool:
        """Drop a queued id (cancellation); False if a worker already took it."""
        with self._cond:
            try:
                self._items.remove(job_id)
            except ValueError:
                return False
            return True

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


class WorkerPool:
    """N daemon threads applying ``handler(job_id)`` to queued ids.

    The handler owns all job semantics, including its own error
    handling; if it still lets an exception escape, the worker reports
    it to ``on_crash`` (if any) and keeps serving — a buggy handler must
    not bleed the pool dry.
    """

    def __init__(
        self,
        queue: JobQueue,
        handler: Callable[[str], None],
        workers: int = 2,
        on_crash: Optional[Callable[[str, BaseException], None]] = None,
        name: str = "repro-service-worker",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.queue = queue
        self.handler = handler
        self.on_crash = on_crash
        self._threads = [
            threading.Thread(target=self._loop, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for t in self._threads:
            t.start()

    def _loop(self) -> None:
        while True:
            job_id = self.queue.pop()
            if job_id is None:
                return
            try:
                self.handler(job_id)
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                if self.on_crash is not None:
                    try:
                        self.on_crash(job_id, exc)
                    except Exception:
                        pass

    def stop(self, timeout: float = 10.0) -> None:
        """Close the queue and join the workers (in-flight jobs finish)."""
        self.queue.close()
        for t in self._threads:
            if t.is_alive():
                t.join(timeout=timeout)

    @property
    def alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())


class ManifestStore:
    """Per-job directories under the service work dir.

    Layout: ``<root>/jobs/<job_id>/manifest.json`` plus whatever result
    artifacts the job leaves next to it.  Manifest writes are atomic
    (temp file + ``os.replace``), matching the cache's crash discipline.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def job_dir(self, job_id: str) -> Path:
        path = self.root / "jobs" / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def manifest_path(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id / "manifest.json"

    def write_manifest(self, job_id: str, manifest: dict) -> Path:
        directory = self.job_dir(job_id)
        target = directory / "manifest.json"
        payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    def read_manifest(self, job_id: str) -> dict:
        return json.loads(self.manifest_path(job_id).read_text(encoding="utf-8"))
