"""repro — clock drift, event-trace timestamps, and their correction.

A from-scratch Python reproduction of Becker, Rabenseifner & Wolf,
*"Implications of non-constant clock drifts for the timestamps of
concurrent events"* (IEEE Cluster 2008): a simulated-cluster substrate
(topology, latency models, drift-accurate clocks, discrete-event MPI and
OpenMP runtimes, PMPI/POMP-style tracing) plus the full postmortem
timestamp-synchronization toolchain the paper studies — Cristian offset
measurement, linear offset interpolation, clock-condition violation
analysis, logical clocks, and the controlled logical clock (CLC) with
forward/backward amortization and collective mapping.

Quick start
-----------
>>> from repro import RunOptions, TracingSession
>>> from repro.workloads import SparseConfig, sparse_worker
>>> session = TracingSession(platform="xeon", nprocs=4, duration_hint=60.0,
...                          options=RunOptions(seed=7))
>>> run = session.trace(sparse_worker(SparseConfig(rounds=5)))
>>> report = session.synchronize(run)
>>> report.stage("clc").total_violated
0

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from repro.core.api import TracingSession
from repro.core.pipeline import PipelineReport, SyncPipeline
from repro.errors import ReproError
from repro.mpi.runtime import RunResult
from repro.options import RunOptions
from repro.stats import SampleSummary, StoppingRule
from repro.telemetry import TelemetryRecorder

__version__ = "1.7.0"

__all__ = [
    "TracingSession",
    "SyncPipeline",
    "PipelineReport",
    "ReproError",
    "RunOptions",
    "RunResult",
    "SampleSummary",
    "StoppingRule",
    "TelemetryRecorder",
    "__version__",
]
