"""repro — clock drift, event-trace timestamps, and their correction.

A from-scratch Python reproduction of Becker, Rabenseifner & Wolf,
*"Implications of non-constant clock drifts for the timestamps of
concurrent events"* (IEEE Cluster 2008): a simulated-cluster substrate
(topology, latency models, drift-accurate clocks, discrete-event MPI and
OpenMP runtimes, PMPI/POMP-style tracing) plus the full postmortem
timestamp-synchronization toolchain the paper studies — Cristian offset
measurement, linear offset interpolation, clock-condition violation
analysis, logical clocks, and the controlled logical clock (CLC) with
forward/backward amortization and collective mapping.

Quick start
-----------
>>> from repro import RunOptions, TracingSession
>>> from repro.workloads import SparseConfig, sparse_worker
>>> session = TracingSession(platform="xeon", nprocs=4, duration_hint=60.0,
...                          options=RunOptions(seed=7))
>>> run = session.trace(sparse_worker(SparseConfig(rounds=5)))
>>> report = session.synchronize(run)
>>> report.stage("clc").total_violated
0

Or skip the session machinery entirely — :func:`correct_trace` is the
one-call facade over the whole correction chain (the same code path the
CLI and the :mod:`repro.service` HTTP service execute)::

    from repro import correct_trace
    result = correct_trace("run.npz", interpolation="linear", clc=True)
    result.trace                 # the corrected Trace
    print(result.summary())      # violation counts per stage

See ``examples/`` for complete scenarios, ``docs/service.md`` for the
correction service, and ``benchmarks/`` for the regeneration of every
table and figure in the paper.
"""

from repro.core.api import TracingSession
from repro.core.correct import CorrectionResult, correct_trace
from repro.core.pipeline import PipelineReport, SyncPipeline
from repro.errors import ReproError
from repro.mpi.runtime import RunResult
from repro.options import RunOptions
from repro.service.client import ServiceClient
from repro.stats import SampleSummary, StoppingRule
from repro.telemetry import TelemetryRecorder

__version__ = "1.8.0"

__all__ = [
    "CorrectionResult",
    "TracingSession",
    "ServiceClient",
    "SyncPipeline",
    "PipelineReport",
    "ReproError",
    "RunOptions",
    "RunResult",
    "SampleSummary",
    "StoppingRule",
    "TelemetryRecorder",
    "__version__",
    "correct_trace",
]
