"""Command-line interface: ``python -m repro.cli <command>``.

Six subcommands cover the tool loop without writing Python:

* ``simulate`` — run a workload on a simulated platform, write the
  trace (and its offset measurements) to a ``.npz``/``.jsonl`` file, or
  spill it out-of-core to a sharded directory (``--trace-out DIR
  --shard-events N``);
* ``scan``     — count clock-condition violations in a trace file or
  shard directory (the latter streams one shard at a time);
* ``sync``     — correct a trace file (interpolation and/or CLC) and
  write the result; shard directories stream through the bounded-memory
  kernels and write a sharded output;
* ``report``   — summarize a trace: events, messages, collectives,
  violation rates, optional ASCII timeline; or render a telemetry
  export (``--telemetry``);
* ``figures``  — regenerate paper figures/tables through the parallel
  runner (``--jobs N``) with on-disk result caching (``--no-cache`` to
  disable, ``--cache-dir`` to relocate);
* ``verify``   — fuzz the invariant oracles with adversarial traces
  (``--campaign``, repeatable), serialize shrunken failures into the
  corpus (``--corpus-dir``), or replay the committed corpus
  (``--replay``); see docs/testing.md.

``simulate``, ``sync``, ``figures`` and ``verify`` accept
``--telemetry PATH`` to record run-wide spans/counters and write them
as JSONL (render with ``repro report --telemetry PATH``); see
docs/observability.md.

Examples
--------
::

    python -m repro.cli simulate --workload pop --nprocs 16 --scale 0.02 \\
        --timer tsc --seed 3 -o pop.npz
    python -m repro.cli scan pop.npz
    python -m repro.cli sync pop.npz --clc -o pop_fixed.npz
    python -m repro.cli simulate --workload pop --nprocs 16 --seed 3 \\
        --trace-out pop_shards --shard-events 65536
    python -m repro.cli sync pop_shards --clc -o pop_fixed_shards
    python -m repro.cli report pop_fixed.npz --timeline
    python -m repro.cli figures fig7 fig8 --jobs 4 --telemetry figs.tele.jsonl
    python -m repro.cli report --telemetry figs.tele.jsonl
    python -m repro.cli verify --campaign smoke --max-examples 25
    python -m repro.cli verify --replay
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.timeline import render_message_arrows, render_timeline
from repro.cluster.jitter import OsJitterModel
from repro.cluster.pinning import inter_node, scheduler_default
from repro.core.api import PLATFORMS
from repro.errors import ReproError
from repro.mpi.runtime import MpiWorld
from repro.options import ENGINES, RunOptions
from repro.rng import RngFabric
from repro.sync.clc import ControlledLogicalClock
from repro.sync.interpolation import align_offsets, linear_interpolation
from repro.sync.offset import OffsetMeasurement
from repro.sync.violations import scan_collectives, scan_messages
from repro.tracing.reader import read_trace
from repro.tracing.store import ChunkedTrace, is_sharded_trace_dir
from repro.tracing.writer import write_trace
from repro.workloads import WORKLOADS, build_workload

__all__ = ["main", "build_parser", "FIGURE_TARGETS"]

#: ``figures`` subcommand targets -> renderer (defined below).
FIGURE_TARGETS = ("table2", "fig4", "fig7", "fig8", "waitstates")


def _add_telemetry_arg(sub) -> None:
    sub.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="record run telemetry (spans/counters) and write JSONL here",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated-cluster event tracing and timestamp synchronization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a workload and write its trace")
    sim.add_argument("--workload", choices=sorted(WORKLOADS), default="sparse")
    sim.add_argument("--platform", choices=sorted(PLATFORMS), default="xeon")
    sim.add_argument("--nprocs", type=int, default=8)
    sim.add_argument("--timer", default=None, help="timer technology (default: platform's)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--scale", type=float, default=0.02, help="workload scale knob")
    sim.add_argument("--placement", choices=["spread", "scheduler"], default="scheduler")
    sim.add_argument(
        "--engine", choices=list(ENGINES), default="reference",
        help="simulation path: the discrete-event engine, or the "
        "vectorized batch fast path (bit-identical; falls back to the "
        "engine when the workload's structure is dynamic)",
    )
    _add_telemetry_arg(sim)
    sim.add_argument("-o", "--output", default=None, help=".npz or .jsonl trace path")
    sim.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="spill the trace out-of-core to a sharded directory instead "
             "of materializing it (see docs/performance.md)",
    )
    sim.add_argument(
        "--shard-events", type=int, default=None, metavar="N",
        help="events per shard for --trace-out (default 262144)",
    )

    scan = sub.add_parser("scan", help="count clock-condition violations")
    scan.add_argument("trace", help="trace file or shard directory")
    scan.add_argument("--lmin", type=float, default=0.0, help="latency floor [s]")

    sync = sub.add_parser("sync", help="correct a trace's timestamps")
    sync.add_argument("trace", help="trace file or shard directory")
    sync.add_argument(
        "-o", "--output", required=True,
        help="corrected trace path (a directory for shard-directory input)",
    )
    sync.add_argument(
        "--interpolation",
        choices=["none", "align", "linear", "hull", "regression", "minmax", "exchange"],
        default="linear",
        help="measurement-based (align/linear) or trace-only "
             "(hull/regression/minmax = error estimation; exchange = "
             "collective midpoints) correction",
    )
    sync.add_argument("--clc", action="store_true", help="apply the controlled logical clock")
    sync.add_argument("--gamma", type=float, default=0.99)
    sync.add_argument("--lmin", type=float, default=0.0)
    _add_telemetry_arg(sync)

    rep = sub.add_parser("report", help="summarize a trace or a telemetry export")
    rep.add_argument("trace", nargs="?", default=None,
                     help="trace file or shard directory")
    rep.add_argument("--timeline", action="store_true", help="render an ASCII timeline")
    rep.add_argument("--arrows", type=int, default=0, help="list up to N messages")
    rep.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="render a telemetry JSONL export (span tree + counters)",
    )

    figs = sub.add_parser(
        "figures",
        help="regenerate paper figures/tables (parallel runner + result cache)",
    )
    figs.add_argument(
        "targets",
        nargs="+",
        choices=sorted(FIGURE_TARGETS) + ["all"],
        help="figures/tables to regenerate",
    )
    figs.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per grid (default serial; 0 = all cores)",
    )
    figs.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything, ignore and do not write the result cache",
    )
    figs.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    figs.add_argument("--seed", type=int, default=None, help="override the base seed")
    figs.add_argument(
        "--scale", type=float, default=0.1, help="workload scale for fig7 (default 0.1)"
    )
    figs.add_argument(
        "--runs", type=int, default=None,
        help="independent repetitions per reported number "
             "(default: 3 for fig7/fig8, 1 for table2/fig4)",
    )
    figs.add_argument(
        "--level", type=float, default=0.95,
        help="confidence level for the reported intervals (default 0.95)",
    )
    figs.add_argument(
        "--stop-rel", type=float, default=None, metavar="WIDTH",
        help="sequential stopping: add runs until the relative CI "
             "half-width undercuts WIDTH (see docs/methodology.md)",
    )
    figs.add_argument(
        "--stop-max-runs", type=int, default=10,
        help="hard repetition cap for --stop-rel (default 10)",
    )
    figs.add_argument(
        "--engine", choices=list(ENGINES), default="reference",
        help="simulation path for the underlying runs (bit-identical)",
    )
    _add_telemetry_arg(figs)

    ver = sub.add_parser(
        "verify",
        help="fuzz the invariant oracles with adversarial traces",
    )
    ver.add_argument(
        "--campaign", action="append", default=None, metavar="NAME",
        help="campaign to run (repeatable; default: smoke)",
    )
    ver.add_argument(
        "--max-examples", type=int, default=50,
        help="hypothesis examples per probe (default 50)",
    )
    ver.add_argument(
        "--corpus-dir", default=None,
        help="serialize shrunken failures here (default for --replay: tests/corpus)",
    )
    ver.add_argument("--seed", type=int, default=0, help="base fuzzing seed")
    ver.add_argument(
        "--replay", action="store_true",
        help="replay the corpus instead of fuzzing",
    )
    ver.add_argument(
        "--list", action="store_true", dest="list_catalog",
        help="list campaigns and oracles, then exit",
    )
    _add_telemetry_arg(ver)

    return parser


# ----------------------------------------------------------------------
def _telemetry_for(args):
    """A live recorder when ``--telemetry PATH`` was given, else None."""
    if getattr(args, "telemetry", None) is None:
        return None
    from repro.telemetry import TelemetryRecorder

    return TelemetryRecorder()


def _flush_telemetry(args, recorder) -> None:
    if recorder is None:
        return
    from repro.telemetry import write_jsonl

    path = write_jsonl(recorder, args.telemetry)
    print(f"telemetry: wrote {path}")


def _cmd_simulate(args) -> int:
    if (args.output is None) == (args.trace_out is None):
        print("error: give exactly one of -o/--output or --trace-out",
              file=sys.stderr)
        return 2
    if args.shard_events is not None and args.trace_out is None:
        print("error: --shard-events requires --trace-out", file=sys.stderr)
        return 2
    preset = PLATFORMS[args.platform]()
    if args.placement == "spread":
        pinning = inter_node(preset.machine, args.nprocs)
    else:
        pinning = scheduler_default(
            preset.machine, args.nprocs, RngFabric(args.seed).generator("placement")
        )

    built = build_workload(args.workload, args.nprocs, args.scale, args.seed)
    recorder = _telemetry_for(args)
    world = MpiWorld(
        preset,
        pinning,
        timer=args.timer,
        seed=args.seed,
        duration_hint=built.duration_hint,
        jitter=OsJitterModel(rate=10.0, mean_delay=5e-6),
    )
    run = world.run(
        built.worker,
        tracing_initially=built.tracing_initially,
        options=RunOptions(
            engine=args.engine, telemetry=recorder,
            trace_dir=args.trace_out, shard_events=args.shard_events,
        ),
    )
    engine_note = run.engine
    if run.fallback_reason:
        engine_note += f", fell back: {run.fallback_reason}"
    if args.trace_out is not None:
        reader = run.trace.reader
        print(
            f"wrote {args.trace_out}: {run.trace.total_events()} events "
            f"in {reader.shard_count()} shards "
            f"({reader.shard_events} events/shard), "
            f"{run.duration:.3f} s simulated ({engine_note}), "
            "offsets measured at init+finalize"
        )
    else:
        path = write_trace(run.trace, args.output)
        print(
            f"wrote {path}: {run.trace.total_events()} events, "
            f"{run.duration:.3f} s simulated ({engine_note}), "
            "offsets measured at init+finalize"
        )
    if recorder is not None:
        from repro.telemetry import render_fallback_table

        table = render_fallback_table(recorder.counters)
        if table:
            print(table)
    _flush_telemetry(args, recorder)
    return 0


def _measurements_from_meta(meta: dict, key: str):
    raw = meta.get(key)
    if raw is None:
        return None
    return {
        int(r): OffsetMeasurement(
            worker=int(r), worker_time=float(w), offset=float(o), rtt=0.0, repeats=0
        )
        for r, (w, o) in raw.items()
    }


def _cmd_scan(args) -> int:
    if is_sharded_trace_dir(args.trace):
        from repro.sync.streaming import streaming_scan_trace

        chunked = ChunkedTrace(args.trace)
        reports = streaming_scan_trace(chunked, lmin=args.lmin)
        p2p, coll = reports["p2p"], reports["collective"]
        print(
            f"{args.trace}: {chunked.nranks} ranks, "
            f"{chunked.total_events()} events "
            f"({chunked.reader.shard_count()} shards, streamed)"
        )
    else:
        trace = read_trace(args.trace)
        p2p = scan_messages(trace.messages(strict=False), args.lmin)
        coll, _ = scan_collectives(trace, args.lmin)
        print(f"{args.trace}: {trace.nranks} ranks, {trace.total_events()} events")
    print(f"  p2p:        {p2p.violated}/{p2p.checked} ({100 * p2p.rate:.3f} %) violations")
    print(
        f"  collective: {coll.violated}/{coll.checked} "
        f"({100 * coll.rate:.3f} %) violations"
    )
    return 0 if (p2p.violated + coll.violated) == 0 else 1


def _cmd_sync_sharded(args, recorder) -> int:
    """Stream a shard directory through the bounded-memory kernels."""
    import tempfile

    from repro.sync.streaming import streaming_apply_correction, streaming_clc_correct

    if args.interpolation in ("hull", "regression", "minmax", "exchange"):
        print(
            f"error: --interpolation {args.interpolation} needs the whole "
            "trace in memory; shard directories support align, linear or "
            "none (materialize the trace first for the others)",
            file=sys.stderr,
        )
        return 2
    source = ChunkedTrace(args.trace)
    correction = None
    if args.interpolation != "none":
        init = _measurements_from_meta(source.meta, "init_offsets")
        final = _measurements_from_meta(source.meta, "final_offsets")
        if init is None:
            print("error: trace has no offset measurements in metadata", file=sys.stderr)
            return 2
        if args.interpolation == "align":
            correction = align_offsets(init)
        else:
            if final is None:
                print("error: trace has no final offsets; use --interpolation align",
                      file=sys.stderr)
                return 2
            correction = linear_interpolation(init, final)
    if correction is None and not args.clc:
        print("error: nothing to apply (--interpolation none without --clc)",
              file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="repro-sync-") as tmp:
        if correction is not None:
            dest = f"{tmp}/interp" if args.clc else args.output
            source = streaming_apply_correction(
                correction, source, dest, telemetry=recorder
            )
            print(f"applied {args.interpolation} interpolation (streamed)")
        if args.clc:
            result = streaming_clc_correct(
                source, args.output, gamma=args.gamma, lmin=args.lmin,
                telemetry=recorder,
            )
            print(
                f"applied CLC (streamed): {result.jumps} jumps, max shift "
                f"{result.max_shift * 1e6:.3f} us"
            )
    print(f"wrote {args.output}")
    _flush_telemetry(args, recorder)
    return 0


def _cmd_sync(args) -> int:
    recorder = _telemetry_for(args)
    if is_sharded_trace_dir(args.trace):
        return _cmd_sync_sharded(args, recorder)
    trace = read_trace(args.trace)
    if args.interpolation in ("hull", "regression", "minmax"):
        from repro.sync.error_estimation import synchronize_by_spanning_tree

        correction = synchronize_by_spanning_tree(
            trace, lmin=args.lmin, method=args.interpolation
        )
        trace = correction.apply(trace)
        print(f"applied {args.interpolation} error estimation")
    elif args.interpolation == "exchange":
        from repro.sync.exchange import exchange_correction

        trace = exchange_correction(trace).apply(trace)
        print("applied exchange-midpoint correction")
    elif args.interpolation != "none":
        init = _measurements_from_meta(trace.meta, "init_offsets")
        final = _measurements_from_meta(trace.meta, "final_offsets")
        if init is None:
            print("error: trace has no offset measurements in metadata", file=sys.stderr)
            return 2
        if args.interpolation == "align":
            correction = align_offsets(init)
        else:
            if final is None:
                print("error: trace has no final offsets; use --interpolation align",
                      file=sys.stderr)
                return 2
            correction = linear_interpolation(init, final)
        trace = correction.apply(trace)
        print(f"applied {args.interpolation} interpolation")
    if args.clc:
        result = ControlledLogicalClock(
            gamma=args.gamma, telemetry=recorder
        ).correct(trace, lmin=args.lmin)
        trace = result.trace
        print(
            f"applied CLC: {result.jumps} jumps, max shift "
            f"{result.max_shift * 1e6:.3f} us"
        )
    path = write_trace(trace, args.output)
    print(f"wrote {path}")
    _flush_telemetry(args, recorder)
    return 0


def _report_sharded(args) -> int:
    """Summarize a shard directory one shard at a time (bounded memory)."""
    import numpy as np

    from repro.tracing.events import EventType

    if args.timeline or args.arrows:
        print("error: --timeline/--arrows need a materialized trace file",
              file=sys.stderr)
        return 2
    chunked = ChunkedTrace(args.trace)
    reader = chunked.reader
    counts = np.zeros(len(EventType), dtype=np.int64)
    sends = recvs = 0
    for rank in chunked.ranks:
        for rec, cols in chunked.iter_shards(rank):
            counts += np.bincount(
                np.asarray(cols[1]), minlength=len(EventType)
            )[: len(EventType)]
            sends += rec.sends
            recvs += rec.recvs
    print(f"{args.trace} (sharded)")
    print(f"  ranks: {chunked.nranks}   events: {chunked.total_events()}   "
          f"shards: {reader.shard_count()} ({reader.shard_events} events/shard)")
    print("  by type: " + ", ".join(
        f"{EventType(i).name}={int(n)}" for i, n in enumerate(counts) if n
    ))
    print(f"  send events: {sends}   recv events: {recvs}")
    for key in ("machine", "timer", "duration"):
        if key in chunked.meta:
            print(f"  {key}: {chunked.meta[key]}")
    return 0


def _cmd_report(args) -> int:
    if args.telemetry is not None:
        from repro.telemetry import load_jsonl, render_report

        print(render_report(load_jsonl(args.telemetry)), end="")
        if args.trace is None:
            return 0
        print()
    if args.trace is None:
        print("error: give a trace file and/or --telemetry PATH", file=sys.stderr)
        return 2
    if is_sharded_trace_dir(args.trace):
        return _report_sharded(args)
    trace = read_trace(args.trace)
    counts = trace.event_counts()
    msgs = trace.messages(strict=False)
    colls = trace.collectives()
    print(f"{args.trace}")
    print(f"  ranks: {trace.nranks}   events: {trace.total_events()}")
    print("  by type: " + ", ".join(f"{t.name}={n}" for t, n in sorted(counts.items())))
    print(f"  messages: {len(msgs)}   collectives: {len(colls)}")
    print(f"  message-event fraction: {100 * trace.message_event_fraction():.1f} %")
    p2p = scan_messages(msgs, 0.0)
    print(f"  reversed messages: {p2p.violated} ({100 * p2p.rate:.3f} %)")
    for key in ("machine", "timer", "duration"):
        if key in trace.meta:
            print(f"  {key}: {trace.meta[key]}")
    if args.timeline:
        print()
        print(render_timeline(trace))
    if args.arrows:
        print()
        print(render_message_arrows(trace, limit=args.arrows))
    return 0


def _fig_table2(args, options) -> None:
    from repro.analysis.experiments import table2_latencies

    result = table2_latencies(
        runs=args.runs or 1, level=args.level, options=options
    )
    print("Table II — measured latencies per placement")
    for row in result.rows:
        print(f"  {row}")


def _fig_fig4(args, options) -> None:
    from repro.analysis.experiments import fig4_all_panels

    runs = args.runs or 1
    results = fig4_all_panels(runs=runs, level=args.level, options=options)
    print("Fig. 4 — deviation after initial offset alignment")
    for panel, res in results.items():
        summary = res.residual_summary
        print(
            f"  panel {panel}: {res.timer:>12s} {res.duration:6.0f} s  "
            f"max residual {summary.describe(unit_scale=1e6, unit='us')}  "
            f"(l_min {res.lmin * 1e6:.2f} us)"
        )


def _fig_fig7(args, options) -> None:
    from repro.analysis.experiments import fig7_app_violations

    runs = args.runs or 3
    for app in ("pop", "smg2000"):
        result = fig7_app_violations(
            app=app, runs=runs, scale=args.scale, options=options
        )
        print(f"Fig. 7 — {app}: {runs} runs")
        for i, run in enumerate(result.runs):
            print(
                f"  run {i}: reversed {run.reversed_pct:6.3f} %  "
                f"message events {run.message_event_pct:5.1f} %"
            )
        rev = result.reversed_summary(level=args.level)
        msg = result.message_event_summary(level=args.level)
        print(f"  reversed:       {rev.describe(unit_scale=1.0, unit='%')}")
        print(f"  message events: {msg.describe(unit_scale=1.0, unit='%')}")


def _fig_fig8(args, options) -> None:
    from repro.analysis.experiments import fig8_openmp_violations

    runs = args.runs or 3
    result = fig8_openmp_violations(runs=runs, options=options)
    print(f"Fig. 8 — POMP violations vs thread count "
          f"(mean % of regions, {runs} runs)")
    print("  threads             any   entry    exit barrier")
    for n, any_, entry, exit_, barr in result.rows():
        half = result.summary(n, "any", level=args.level).ci_halfwidth
        print(f"  {n:7d} {any_:7.2f} ± {half:5.2f} {entry:7.2f} "
              f"{exit_:7.2f} {barr:7.2f}")


def _fig_waitstates(args, options) -> None:
    from repro.analysis.experiments import ext_waitstate_accuracy

    result = ext_waitstate_accuracy(options=options)
    print("Wait-state accuracy — Late Sender totals vs ground truth")
    print(f"  truth: {result.truth_total * 1e3:.3f} ms")
    for scheme in ("raw", "linear", "clc"):
        print(
            f"  {scheme:>6s}: {result.totals[scheme] * 1e3:.3f} ms  "
            f"(error {result.error_pct(scheme):6.2f} %, "
            f"{result.sign_flips[scheme]} sign flips)"
        )


_FIGURE_RENDERERS = {
    "table2": _fig_table2,
    "fig4": _fig_fig4,
    "fig7": _fig_fig7,
    "fig8": _fig_fig8,
    "waitstates": _fig_waitstates,
}


def _cmd_figures(args) -> int:
    from repro.cache import ResultCache

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    stopping = None
    if args.stop_rel is not None:
        from repro.stats import StoppingRule

        stopping = StoppingRule(
            rel_ci_width=args.stop_rel, max_runs=args.stop_max_runs,
            level=args.level,
        )
    recorder = _telemetry_for(args)
    options = RunOptions(
        engine=args.engine, jobs=args.jobs, cache=cache,
        seed=args.seed, telemetry=recorder, stopping=stopping,
    )
    targets = list(FIGURE_TARGETS) if "all" in args.targets else args.targets
    for target in dict.fromkeys(targets):  # dedupe, keep order
        _FIGURE_RENDERERS[target](args, options)
    if cache is not None:
        print(
            f"cache: {cache.hits} hits, {cache.misses} misses "
            f"({cache.root})"
        )
    _flush_telemetry(args, recorder)
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import CAMPAIGNS, ORACLES, replay_corpus, run_campaign

    if args.list_catalog:
        print("campaigns:")
        for name, campaign in sorted(CAMPAIGNS.items()):
            print(f"  {name:<14s} {len(campaign.probes):2d} probes — "
                  f"{campaign.description}")
        print("oracles:")
        for name, oracle in sorted(ORACLES.items()):
            print(f"  {name:<30s} {oracle.description}")
        return 0

    if args.replay:
        corpus_dir = args.corpus_dir or "tests/corpus"
        results = replay_corpus(corpus_dir)
        failed = 0
        for entry, error in results:
            if error is None:
                print(f"  ok   {entry.name}")
            else:
                failed += 1
                print(f"  FAIL {entry.name}: {error}")
        print(f"corpus {corpus_dir}: {len(results)} entries, {failed} failures")
        return 1 if failed else 0

    recorder = _telemetry_for(args)
    names = args.campaign or ["smoke"]
    rc = 0
    for name in dict.fromkeys(names):  # dedupe, keep order
        result = run_campaign(
            name,
            max_examples=args.max_examples,
            corpus_dir=args.corpus_dir,
            seed=args.seed,
            telemetry=recorder,
        )
        print(result.summary())
        for failure in result.failures:
            rc = 1
            print(f"  FAIL {failure.strategy} x {failure.oracle}: {failure.message}")
            print(f"       spec: {failure.spec.to_json()}")
            if failure.corpus_path:
                print(f"       saved: {failure.corpus_path}")
    _flush_telemetry(args, recorder)
    return rc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "scan":
            return _cmd_scan(args)
        if args.command == "sync":
            return _cmd_sync(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "verify":
            return _cmd_verify(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    raise SystemExit(main())
