"""Command-line interface: ``python -m repro.cli <command>``.

The local subcommands cover the tool loop without writing Python:

* ``simulate`` — run a workload on a simulated platform, write the
  trace (and its offset measurements) to a ``.npz``/``.jsonl`` file, or
  spill it out-of-core to a sharded directory (``--trace-out DIR
  --shard-events N``);
* ``scan``     — count clock-condition violations in a trace file or
  shard directory (the latter streams one shard at a time);
* ``sync``     — correct a trace file (interpolation and/or CLC) and
  write the result; shard directories stream through the bounded-memory
  kernels and write a sharded output;
* ``report``   — summarize a trace: events, messages, collectives,
  violation rates, optional ASCII timeline; or render a telemetry
  export (``--telemetry``);
* ``figures``  — regenerate paper figures/tables through the parallel
  runner (``--jobs N``) with on-disk result caching (``--no-cache`` to
  disable, ``--cache-dir`` to relocate);
* ``verify``   — fuzz the invariant oracles with adversarial traces
  (``--campaign``, repeatable), serialize shrunken failures into the
  corpus (``--corpus-dir``), or replay the committed corpus
  (``--replay``); see docs/testing.md.

``scan`` and ``sync`` are thin shells over the one-call facade
:func:`repro.core.correct.correct_trace` — the same code path the
Python API and the service workers execute.

The service subcommands run and talk to the long-running correction
service (:mod:`repro.service`, docs/service.md):

* ``serve``  — start the HTTP service (``--port 0`` picks a free port
  and prints it);
* ``submit`` — submit a trace file (uploaded inline) or a built-in
  workload (``--workload``) for correction;
* ``status`` — poll one job (or all jobs with no id);
* ``fetch``  — download a finished job's corrected trace or its
  violation report (``--report``);
* ``cancel`` — cancel a still-queued job.

``simulate``, ``sync``, ``figures`` and ``verify`` accept
``--telemetry PATH`` to record run-wide spans/counters and write them
as JSONL (render with ``repro report --telemetry PATH``); see
docs/observability.md.

Examples
--------
::

    python -m repro.cli simulate --workload pop --nprocs 16 --scale 0.02 \\
        --timer tsc --seed 3 -o pop.npz
    python -m repro.cli scan pop.npz
    python -m repro.cli sync pop.npz --clc -o pop_fixed.npz
    python -m repro.cli simulate --workload pop --nprocs 16 --seed 3 \\
        --trace-out pop_shards --shard-events 65536
    python -m repro.cli sync pop_shards --clc -o pop_fixed_shards
    python -m repro.cli report pop_fixed.npz --timeline
    python -m repro.cli figures fig7 fig8 --jobs 4 --telemetry figs.tele.jsonl
    python -m repro.cli report --telemetry figs.tele.jsonl
    python -m repro.cli verify --campaign smoke --max-examples 25
    python -m repro.cli verify --replay
    python -m repro.cli serve --port 8631 --work-dir /tmp/repro-service
    python -m repro.cli submit --workload sparse --nprocs 8 --clc --wait
    python -m repro.cli fetch job-000001 -o corrected.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.timeline import render_message_arrows, render_timeline
from repro.core.api import PLATFORMS
from repro.core.correct import correct_trace, scan_source
from repro.errors import ReproError
from repro.options import ENGINES, RunOptions
from repro.sync.violations import scan_messages
from repro.tracing.reader import read_trace
from repro.tracing.store import ChunkedTrace, is_sharded_trace_dir
from repro.tracing.writer import write_trace
from repro.workloads import WORKLOADS, simulate_workload

__all__ = ["main", "build_parser", "FIGURE_TARGETS"]

#: ``figures`` subcommand targets -> renderer (defined below).
FIGURE_TARGETS = ("table2", "fig4", "fig7", "fig8", "waitstates")


def _add_telemetry_arg(sub) -> None:
    sub.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="record run telemetry (spans/counters) and write JSONL here",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated-cluster event tracing and timestamp synchronization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a workload and write its trace")
    sim.add_argument("--workload", choices=sorted(WORKLOADS), default="sparse")
    sim.add_argument("--platform", choices=sorted(PLATFORMS), default="xeon")
    sim.add_argument("--nprocs", type=int, default=8)
    sim.add_argument("--timer", default=None, help="timer technology (default: platform's)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--scale", type=float, default=0.02, help="workload scale knob")
    sim.add_argument("--placement", choices=["spread", "scheduler"], default="scheduler")
    sim.add_argument(
        "--engine", choices=list(ENGINES), default="reference",
        help="simulation path: the discrete-event engine, or the "
        "vectorized batch fast path (bit-identical; falls back to the "
        "engine when the workload's structure is dynamic)",
    )
    _add_telemetry_arg(sim)
    sim.add_argument("-o", "--output", default=None, help=".npz or .jsonl trace path")
    sim.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="spill the trace out-of-core to a sharded directory instead "
             "of materializing it (see docs/performance.md)",
    )
    sim.add_argument(
        "--shard-events", type=int, default=None, metavar="N",
        help="events per shard for --trace-out (default 262144)",
    )

    scan = sub.add_parser("scan", help="count clock-condition violations")
    scan.add_argument("trace", help="trace file or shard directory")
    scan.add_argument("--lmin", type=float, default=0.0, help="latency floor [s]")

    sync = sub.add_parser("sync", help="correct a trace's timestamps")
    sync.add_argument("trace", help="trace file or shard directory")
    sync.add_argument(
        "-o", "--output", required=True,
        help="corrected trace path (a directory for shard-directory input)",
    )
    sync.add_argument(
        "--interpolation",
        choices=["none", "align", "linear", "hull", "regression", "minmax", "exchange"],
        default="linear",
        help="measurement-based (align/linear) or trace-only "
             "(hull/regression/minmax = error estimation; exchange = "
             "collective midpoints) correction",
    )
    sync.add_argument("--clc", action="store_true", help="apply the controlled logical clock")
    sync.add_argument("--gamma", type=float, default=0.99)
    sync.add_argument("--lmin", type=float, default=0.0)
    _add_telemetry_arg(sync)

    rep = sub.add_parser("report", help="summarize a trace or a telemetry export")
    rep.add_argument("trace", nargs="?", default=None,
                     help="trace file or shard directory")
    rep.add_argument("--timeline", action="store_true", help="render an ASCII timeline")
    rep.add_argument("--arrows", type=int, default=0, help="list up to N messages")
    rep.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="render a telemetry JSONL export (span tree + counters)",
    )

    figs = sub.add_parser(
        "figures",
        help="regenerate paper figures/tables (parallel runner + result cache)",
    )
    figs.add_argument(
        "targets",
        nargs="+",
        choices=sorted(FIGURE_TARGETS) + ["all"],
        help="figures/tables to regenerate",
    )
    figs.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per grid (default serial; 0 = all cores)",
    )
    figs.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything, ignore and do not write the result cache",
    )
    figs.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    figs.add_argument("--seed", type=int, default=None, help="override the base seed")
    figs.add_argument(
        "--scale", type=float, default=0.1, help="workload scale for fig7 (default 0.1)"
    )
    figs.add_argument(
        "--runs", type=int, default=None,
        help="independent repetitions per reported number "
             "(default: 3 for fig7/fig8, 1 for table2/fig4)",
    )
    figs.add_argument(
        "--level", type=float, default=0.95,
        help="confidence level for the reported intervals (default 0.95)",
    )
    figs.add_argument(
        "--stop-rel", type=float, default=None, metavar="WIDTH",
        help="sequential stopping: add runs until the relative CI "
             "half-width undercuts WIDTH (see docs/methodology.md)",
    )
    figs.add_argument(
        "--stop-max-runs", type=int, default=10,
        help="hard repetition cap for --stop-rel (default 10)",
    )
    figs.add_argument(
        "--engine", choices=list(ENGINES), default="reference",
        help="simulation path for the underlying runs (bit-identical)",
    )
    _add_telemetry_arg(figs)

    ver = sub.add_parser(
        "verify",
        help="fuzz the invariant oracles with adversarial traces",
    )
    ver.add_argument(
        "--campaign", action="append", default=None, metavar="NAME",
        help="campaign to run (repeatable; default: smoke)",
    )
    ver.add_argument(
        "--max-examples", type=int, default=50,
        help="hypothesis examples per probe (default 50)",
    )
    ver.add_argument(
        "--corpus-dir", default=None,
        help="serialize shrunken failures here (default for --replay: tests/corpus)",
    )
    ver.add_argument("--seed", type=int, default=0, help="base fuzzing seed")
    ver.add_argument(
        "--replay", action="store_true",
        help="replay the corpus instead of fuzzing",
    )
    ver.add_argument(
        "--list", action="store_true", dest="list_catalog",
        help="list campaigns and oracles, then exit",
    )
    _add_telemetry_arg(ver)

    srv = sub.add_parser(
        "serve", help="run the trace-correction HTTP service (docs/service.md)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8631,
        help="listen port (0 picks a free one; the bound port is printed)",
    )
    srv.add_argument("--workers", type=int, default=2, help="worker threads")
    srv.add_argument(
        "--max-attempts", type=int, default=3,
        help="crash retries per job before the dead letter (default 3)",
    )
    srv.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="job manifests + server-side results (default: a temp dir)",
    )
    srv.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    srv.add_argument(
        "--no-cache", action="store_true",
        help="disable the cross-restart result cache (live-job dedup stays)",
    )
    srv.add_argument("--verbose", action="store_true", help="log each request")

    def add_url(p):
        p.add_argument(
            "--url", default="http://127.0.0.1:8631",
            help="service base URL (default http://127.0.0.1:8631)",
        )

    sbm = sub.add_parser("submit", help="submit a correction job to a service")
    sbm.add_argument(
        "trace", nargs="?", default=None,
        help="trace file to upload inline (.npz or .jsonl)",
    )
    sbm.add_argument(
        "--workload", choices=sorted(WORKLOADS), default=None,
        help="simulate a built-in workload server-side instead of uploading",
    )
    sbm.add_argument("--nprocs", type=int, default=8)
    sbm.add_argument("--scale", type=float, default=0.02)
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--platform", choices=sorted(PLATFORMS), default="xeon")
    sbm.add_argument("--placement", choices=["spread", "scheduler"], default="scheduler")
    sbm.add_argument("--timer", default=None)
    sbm.add_argument("--engine", choices=list(ENGINES), default="reference")
    sbm.add_argument(
        "--interpolation",
        choices=["none", "align", "linear", "hull", "regression", "minmax", "exchange"],
        default="linear",
    )
    sbm.add_argument("--clc", action="store_true")
    sbm.add_argument("--gamma", type=float, default=0.99)
    sbm.add_argument("--lmin", type=float, default=0.0)
    sbm.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )
    add_url(sbm)

    st = sub.add_parser("status", help="poll a service job (or list all jobs)")
    st.add_argument("job", nargs="?", default=None, help="job id (omit to list)")
    st.add_argument("--json", action="store_true", help="print the raw JSON record")
    add_url(st)

    ft = sub.add_parser("fetch", help="download a finished job's result")
    ft.add_argument("job", help="job id")
    ft.add_argument(
        "-o", "--output", default=None,
        help="write the corrected trace here (.jsonl verbatim, .npz converted; "
             "default: print the .jsonl to stdout)",
    )
    ft.add_argument(
        "--report", action="store_true",
        help="print the violation report instead of the trace",
    )
    add_url(ft)

    cn = sub.add_parser("cancel", help="cancel a still-queued service job")
    cn.add_argument("job", help="job id")
    add_url(cn)

    return parser


# ----------------------------------------------------------------------
def _telemetry_for(args):
    """A live recorder when ``--telemetry PATH`` was given, else None."""
    if getattr(args, "telemetry", None) is None:
        return None
    from repro.telemetry import TelemetryRecorder

    return TelemetryRecorder()


def _flush_telemetry(args, recorder) -> None:
    if recorder is None:
        return
    from repro.telemetry import write_jsonl

    path = write_jsonl(recorder, args.telemetry)
    print(f"telemetry: wrote {path}")


def _cmd_simulate(args) -> int:
    if (args.output is None) == (args.trace_out is None):
        print("error: give exactly one of -o/--output or --trace-out",
              file=sys.stderr)
        return 2
    if args.shard_events is not None and args.trace_out is None:
        print("error: --shard-events requires --trace-out", file=sys.stderr)
        return 2
    recorder = _telemetry_for(args)
    run = simulate_workload(
        args.workload,
        nprocs=args.nprocs,
        scale=args.scale,
        seed=args.seed,
        platform=args.platform,
        placement=args.placement,
        timer=args.timer,
        options=RunOptions(
            engine=args.engine, telemetry=recorder,
            trace_dir=args.trace_out, shard_events=args.shard_events,
        ),
    )
    engine_note = run.engine
    if run.fallback_reason:
        engine_note += f", fell back: {run.fallback_reason}"
    if args.trace_out is not None:
        reader = run.trace.reader
        print(
            f"wrote {args.trace_out}: {run.trace.total_events()} events "
            f"in {reader.shard_count()} shards "
            f"({reader.shard_events} events/shard), "
            f"{run.duration:.3f} s simulated ({engine_note}), "
            "offsets measured at init+finalize"
        )
    else:
        path = write_trace(run.trace, args.output)
        print(
            f"wrote {path}: {run.trace.total_events()} events, "
            f"{run.duration:.3f} s simulated ({engine_note}), "
            "offsets measured at init+finalize"
        )
    if recorder is not None:
        from repro.telemetry import render_fallback_table

        table = render_fallback_table(recorder.counters)
        if table:
            print(table)
    _flush_telemetry(args, recorder)
    return 0


def _cmd_scan(args) -> int:
    reports = scan_source(args.trace, lmin=args.lmin)
    p2p, coll = reports["p2p"], reports["collective"]
    if is_sharded_trace_dir(args.trace):
        chunked = ChunkedTrace(args.trace)
        print(
            f"{args.trace}: {chunked.nranks} ranks, "
            f"{chunked.total_events()} events "
            f"({chunked.reader.shard_count()} shards, streamed)"
        )
    else:
        trace = read_trace(args.trace)
        print(f"{args.trace}: {trace.nranks} ranks, {trace.total_events()} events")
    print(f"  p2p:        {p2p.violated}/{p2p.checked} ({100 * p2p.rate:.3f} %) violations")
    print(
        f"  collective: {coll.violated}/{coll.checked} "
        f"({100 * coll.rate:.3f} %) violations"
    )
    return 0 if (p2p.violated + coll.violated) == 0 else 1


def _cmd_sync(args) -> int:
    recorder = _telemetry_for(args)
    result = correct_trace(
        args.trace,
        interpolation=args.interpolation,
        clc=args.clc,
        gamma=args.gamma,
        lmin=args.lmin,
        scan=False,
        output=args.output,
        telemetry=recorder,
    )
    suffix = " (streamed)" if result.streamed else ""
    if args.interpolation in ("hull", "regression", "minmax"):
        print(f"applied {args.interpolation} error estimation")
    elif args.interpolation == "exchange":
        print("applied exchange-midpoint correction")
    elif args.interpolation != "none":
        print(f"applied {args.interpolation} interpolation{suffix}")
    if result.clc is not None:
        print(
            f"applied CLC{suffix}: {result.clc.jumps} jumps, max shift "
            f"{result.clc.max_shift * 1e6:.3f} us"
        )
    print(f"wrote {result.output}")
    _flush_telemetry(args, recorder)
    return 0


def _report_sharded(args) -> int:
    """Summarize a shard directory one shard at a time (bounded memory)."""
    import numpy as np

    from repro.tracing.events import EventType

    if args.timeline or args.arrows:
        print("error: --timeline/--arrows need a materialized trace file",
              file=sys.stderr)
        return 2
    chunked = ChunkedTrace(args.trace)
    reader = chunked.reader
    counts = np.zeros(len(EventType), dtype=np.int64)
    sends = recvs = 0
    for rank in chunked.ranks:
        for rec, cols in chunked.iter_shards(rank):
            counts += np.bincount(
                np.asarray(cols[1]), minlength=len(EventType)
            )[: len(EventType)]
            sends += rec.sends
            recvs += rec.recvs
    print(f"{args.trace} (sharded)")
    print(f"  ranks: {chunked.nranks}   events: {chunked.total_events()}   "
          f"shards: {reader.shard_count()} ({reader.shard_events} events/shard)")
    print("  by type: " + ", ".join(
        f"{EventType(i).name}={int(n)}" for i, n in enumerate(counts) if n
    ))
    print(f"  send events: {sends}   recv events: {recvs}")
    for key in ("machine", "timer", "duration"):
        if key in chunked.meta:
            print(f"  {key}: {chunked.meta[key]}")
    return 0


def _cmd_report(args) -> int:
    if args.telemetry is not None:
        from repro.telemetry import load_jsonl, render_report

        print(render_report(load_jsonl(args.telemetry)), end="")
        if args.trace is None:
            return 0
        print()
    if args.trace is None:
        print("error: give a trace file and/or --telemetry PATH", file=sys.stderr)
        return 2
    if is_sharded_trace_dir(args.trace):
        return _report_sharded(args)
    trace = read_trace(args.trace)
    counts = trace.event_counts()
    msgs = trace.messages(strict=False)
    colls = trace.collectives()
    print(f"{args.trace}")
    print(f"  ranks: {trace.nranks}   events: {trace.total_events()}")
    print("  by type: " + ", ".join(f"{t.name}={n}" for t, n in sorted(counts.items())))
    print(f"  messages: {len(msgs)}   collectives: {len(colls)}")
    print(f"  message-event fraction: {100 * trace.message_event_fraction():.1f} %")
    p2p = scan_messages(msgs, 0.0)
    print(f"  reversed messages: {p2p.violated} ({100 * p2p.rate:.3f} %)")
    for key in ("machine", "timer", "duration"):
        if key in trace.meta:
            print(f"  {key}: {trace.meta[key]}")
    if args.timeline:
        print()
        print(render_timeline(trace))
    if args.arrows:
        print()
        print(render_message_arrows(trace, limit=args.arrows))
    return 0


def _fig_table2(args, options) -> None:
    from repro.analysis.experiments import table2_latencies

    result = table2_latencies(
        runs=args.runs or 1, level=args.level, options=options
    )
    print("Table II — measured latencies per placement")
    for row in result.rows:
        print(f"  {row}")


def _fig_fig4(args, options) -> None:
    from repro.analysis.experiments import fig4_all_panels

    runs = args.runs or 1
    results = fig4_all_panels(runs=runs, level=args.level, options=options)
    print("Fig. 4 — deviation after initial offset alignment")
    for panel, res in results.items():
        summary = res.residual_summary
        print(
            f"  panel {panel}: {res.timer:>12s} {res.duration:6.0f} s  "
            f"max residual {summary.describe(unit_scale=1e6, unit='us')}  "
            f"(l_min {res.lmin * 1e6:.2f} us)"
        )


def _fig_fig7(args, options) -> None:
    from repro.analysis.experiments import fig7_app_violations

    runs = args.runs or 3
    for app in ("pop", "smg2000"):
        result = fig7_app_violations(
            app=app, runs=runs, scale=args.scale, options=options
        )
        print(f"Fig. 7 — {app}: {runs} runs")
        for i, run in enumerate(result.runs):
            print(
                f"  run {i}: reversed {run.reversed_pct:6.3f} %  "
                f"message events {run.message_event_pct:5.1f} %"
            )
        rev = result.reversed_summary(level=args.level)
        msg = result.message_event_summary(level=args.level)
        print(f"  reversed:       {rev.describe(unit_scale=1.0, unit='%')}")
        print(f"  message events: {msg.describe(unit_scale=1.0, unit='%')}")


def _fig_fig8(args, options) -> None:
    from repro.analysis.experiments import fig8_openmp_violations

    runs = args.runs or 3
    result = fig8_openmp_violations(runs=runs, options=options)
    print(f"Fig. 8 — POMP violations vs thread count "
          f"(mean % of regions, {runs} runs)")
    print("  threads             any   entry    exit barrier")
    for n, any_, entry, exit_, barr in result.rows():
        half = result.summary(n, "any", level=args.level).ci_halfwidth
        print(f"  {n:7d} {any_:7.2f} ± {half:5.2f} {entry:7.2f} "
              f"{exit_:7.2f} {barr:7.2f}")


def _fig_waitstates(args, options) -> None:
    from repro.analysis.experiments import ext_waitstate_accuracy

    result = ext_waitstate_accuracy(options=options)
    print("Wait-state accuracy — Late Sender totals vs ground truth")
    print(f"  truth: {result.truth_total * 1e3:.3f} ms")
    for scheme in ("raw", "linear", "clc"):
        print(
            f"  {scheme:>6s}: {result.totals[scheme] * 1e3:.3f} ms  "
            f"(error {result.error_pct(scheme):6.2f} %, "
            f"{result.sign_flips[scheme]} sign flips)"
        )


_FIGURE_RENDERERS = {
    "table2": _fig_table2,
    "fig4": _fig_fig4,
    "fig7": _fig_fig7,
    "fig8": _fig_fig8,
    "waitstates": _fig_waitstates,
}


def _cmd_figures(args) -> int:
    from repro.cache import ResultCache

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    stopping = None
    if args.stop_rel is not None:
        from repro.stats import StoppingRule

        stopping = StoppingRule(
            rel_ci_width=args.stop_rel, max_runs=args.stop_max_runs,
            level=args.level,
        )
    recorder = _telemetry_for(args)
    # The flag documents 0 as "all cores"; RunOptions only carries
    # positive counts, so resolve it here.
    jobs = args.jobs
    if jobs == 0:
        import os

        jobs = os.cpu_count() or 1
    options = RunOptions(
        engine=args.engine, jobs=jobs, cache=cache,
        seed=args.seed, telemetry=recorder, stopping=stopping,
    )
    targets = list(FIGURE_TARGETS) if "all" in args.targets else args.targets
    for target in dict.fromkeys(targets):  # dedupe, keep order
        _FIGURE_RENDERERS[target](args, options)
    if cache is not None:
        print(
            f"cache: {cache.hits} hits, {cache.misses} misses "
            f"({cache.root})"
        )
    _flush_telemetry(args, recorder)
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import CAMPAIGNS, ORACLES, replay_corpus, run_campaign

    if args.list_catalog:
        print("campaigns:")
        for name, campaign in sorted(CAMPAIGNS.items()):
            print(f"  {name:<14s} {len(campaign.probes):2d} probes — "
                  f"{campaign.description}")
        print("oracles:")
        for name, oracle in sorted(ORACLES.items()):
            print(f"  {name:<30s} {oracle.description}")
        return 0

    if args.replay:
        corpus_dir = args.corpus_dir or "tests/corpus"
        results = replay_corpus(corpus_dir)
        failed = 0
        for entry, error in results:
            if error is None:
                print(f"  ok   {entry.name}")
            else:
                failed += 1
                print(f"  FAIL {entry.name}: {error}")
        print(f"corpus {corpus_dir}: {len(results)} entries, {failed} failures")
        return 1 if failed else 0

    recorder = _telemetry_for(args)
    names = args.campaign or ["smoke"]
    rc = 0
    for name in dict.fromkeys(names):  # dedupe, keep order
        result = run_campaign(
            name,
            max_examples=args.max_examples,
            corpus_dir=args.corpus_dir,
            seed=args.seed,
            telemetry=recorder,
        )
        print(result.summary())
        for failure in result.failures:
            rc = 1
            print(f"  FAIL {failure.strategy} x {failure.oracle}: {failure.message}")
            print(f"       spec: {failure.spec.to_json()}")
            if failure.corpus_path:
                print(f"       saved: {failure.corpus_path}")
    _flush_telemetry(args, recorder)
    return rc


# ----------------------------------------------------------------------
# Service commands
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    import tempfile

    from repro.cache import ResultCache
    from repro.service import make_server

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    tmp = None
    work_dir = args.work_dir
    if work_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-service-")
        work_dir = tmp.name
    server = make_server(
        args.host,
        args.port,
        work_dir=work_dir,
        cache=cache,
        workers=args.workers,
        max_attempts=args.max_attempts,
        verbose=args.verbose,
    )
    print(
        f"serving on http://{args.host}:{server.port} "
        f"({args.workers} workers, work dir {work_dir})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if tmp is not None:
            tmp.cleanup()
    return 0


def _client_for(args):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _print_job(job: dict) -> None:
    line = f"job {job['id']}: {job['state']}"
    details = [f"attempts {job['attempts']}"]
    if job.get("from_cache"):
        details.append("from cache")
    if "result" in job:
        details.append(f"{job['result']['events']} events")
    if "error" in job:
        details.append(f"{job['error']['code']}: {job['error']['message']}")
    print(f"{line} ({', '.join(details)})")


def _cmd_submit(args) -> int:
    if (args.trace is None) == (args.workload is None):
        print("error: give exactly one of a trace file or --workload",
              file=sys.stderr)
        return 2
    client = _client_for(args)
    knobs = {
        "interpolation": args.interpolation,
        "clc": args.clc,
        "gamma": args.gamma,
        "lmin": args.lmin,
    }
    if args.workload is not None:
        body = {
            "workload": {
                "name": args.workload,
                "nprocs": args.nprocs,
                "scale": args.scale,
                "seed": args.seed,
                "platform": args.platform,
                "placement": args.placement,
                "timer": args.timer,
                "engine": args.engine,
            },
            **knobs,
        }
    else:
        from pathlib import Path

        from repro.tracing.writer import trace_to_jsonl

        path = Path(args.trace)
        if path.suffix == ".jsonl":
            payload = path.read_text(encoding="utf-8")
        else:
            payload = trace_to_jsonl(read_trace(path))
        body = {"trace_inline": payload, **knobs}
    job = client.submit(body)
    _print_job(job)
    if args.wait and job["state"] in ("queued", "running"):
        job = client.wait(job["id"])
        _print_job(job)
    if args.wait and job["state"] != "done":
        return 1
    return 0


def _cmd_status(args) -> int:
    import json as _json

    client = _client_for(args)
    if args.job is None:
        jobs = client.jobs()
        if args.json:
            print(_json.dumps(jobs, indent=2, sort_keys=True))
        else:
            for job in jobs:
                _print_job(job)
            if not jobs:
                print("no jobs")
        return 0
    job = client.status(args.job)
    if args.json:
        print(_json.dumps(job, indent=2, sort_keys=True))
    else:
        _print_job(job)
    return 0


def _cmd_fetch(args) -> int:
    client = _client_for(args)
    if args.report:
        outcome = client.report(args.job)
        report = outcome["report"]
        for stage in report["stages"]:
            checked = stage["p2p"]["checked"] + stage["collective"]["checked"]
            violated = stage["p2p"]["violated"] + stage["collective"]["violated"]
            rate = 100 * violated / checked if checked else 0.0
            print(f"{stage['stage']:12s}: {violated}/{checked} ({rate:.3f} %) violations")
        if "clc_stats" in report:
            stats = report["clc_stats"]
            print(f"clc: {stats['jumps']} jumps, max shift "
                  f"{stats['max_shift'] * 1e6:.3f} us")
        print(f"trace sha256: {outcome['trace_sha256']}")
        return 0
    text = client.fetch_trace(args.job)
    if args.output is None:
        print(text, end="")
        return 0
    from pathlib import Path

    out = Path(args.output)
    if out.suffix == ".jsonl":
        out.write_text(text, encoding="utf-8")
    else:
        from repro.tracing.reader import trace_from_jsonl

        out = write_trace(trace_from_jsonl(text, label=f"job {args.job}"), out)
    print(f"wrote {out}")
    return 0


def _cmd_cancel(args) -> int:
    _print_job(_client_for(args).cancel(args.job))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "scan":
            return _cmd_scan(args)
        if args.command == "sync":
            return _cmd_sync(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
        if args.command == "cancel":
            return _cmd_cancel(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":
    raise SystemExit(main())
