"""Event recording (the PMPI-interposition analogue).

A :class:`Tracer` is attached to one rank's :class:`~repro.mpi.comm.MpiContext`
(or OpenMP thread).  The context's public operations consult it exactly
like PMPI wrappers consult the tracing library: read the local clock,
perform the operation, append a record to the buffer, pay the recording
cost.  Setting :attr:`Tracer.active` to ``False`` turns recording off
without disturbing the simulation — the partial-tracing mode the paper
uses for POP ("we traced iterations 3500 to 5500").
"""

from __future__ import annotations

from repro.tracing.buffer import TraceBuffer
from repro.tracing.events import EventLog, EventType

__all__ = ["Tracer"]


class Tracer:
    """Per-rank event recorder.

    Parameters
    ----------
    buffer:
        Destination buffer; a fresh unbounded one by default.
    active:
        Initial recording state.
    """

    __slots__ = ("buffer", "active")

    def __init__(self, buffer: TraceBuffer | None = None, active: bool = True) -> None:
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.active = active

    def record(
        self, timestamp: float, etype: EventType, a: int = 0, b: int = 0, c: int = 0, d: int = 0
    ) -> float:
        """Append one event; returns the CPU cost of recording it.

        Callers must check :attr:`active` first (the context does), so
        this method itself stays branch-free and cheap.
        """
        return self.buffer.append(timestamp, etype, a, b, c, d)

    @property
    def log(self) -> EventLog:
        """The recorded events (frozen on first postmortem access)."""
        return self.buffer.log
