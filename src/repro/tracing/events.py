"""Event species and the columnar per-rank event log.

The event vocabulary follows the models named in the paper: MPI events
(send/receive of point-to-point messages, enter/exit of code regions,
collective begin/end) and the POMP event model for OpenMP (fork/join,
parallel-region enter/exit, implicit-barrier enter/exit).

Records are held columnar — one numpy array per field — because every
postmortem algorithm in :mod:`repro.sync` (interpolation, violation
scans, CLC) operates on whole timestamp arrays at once.  During a
simulation records accumulate directly in preallocated numpy columns
that double in capacity when full (amortized O(1) appends); freezing
merely slices zero-copy views of the filled prefix.

Field meaning by event type (the four generic integer attributes
``a, b, c, d`` are interpreted per type, like OTF's record layouts):

=================  ======= ====== ========= ===========
type               a       b      c         d
=================  ======= ====== ========= ===========
SEND / RECV        peer    tag    nbytes    match_id
COLL_ENTER / EXIT  op      root   comm size instance id
ENTER / EXIT       region  --     --        --
OMP_FORK / JOIN    region  team   --        instance id
OMP_PAR_* /
OMP_BARRIER_*      region  team   --        instance id
=================  ======= ====== ========= ===========
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import TraceError

__all__ = [
    "EventType",
    "CollectiveOp",
    "CollectiveFlavor",
    "COLLECTIVE_FLAVORS",
    "Event",
    "EventLog",
]


class EventType(enum.IntEnum):
    """Event species (stable small ints; stored as int8)."""

    ENTER = 0
    EXIT = 1
    SEND = 2
    RECV = 3
    COLL_ENTER = 4
    COLL_EXIT = 5
    OMP_FORK = 6
    OMP_JOIN = 7
    OMP_PAR_ENTER = 8
    OMP_PAR_EXIT = 9
    OMP_BARRIER_ENTER = 10
    OMP_BARRIER_EXIT = 11


class CollectiveOp(enum.IntEnum):
    """MPI collective operations distinguished by the mapping of Section V.

    The CLC extension maps each collective onto logical point-to-point
    messages according to its flavor (1-to-N, N-to-1, N-to-N); see
    :data:`COLLECTIVE_FLAVORS`.
    """

    BARRIER = 0
    BCAST = 1
    REDUCE = 2
    ALLREDUCE = 3
    GATHER = 4
    SCATTER = 5
    ALLGATHER = 6
    ALLTOALL = 7
    SCAN = 8
    REDUCE_SCATTER = 9


class CollectiveFlavor(enum.Enum):
    """Communication shape of a collective (paper Section V).

    ``PREFIX`` extends the paper's three flavors for MPI_Scan: rank i's
    result depends on the contributions of ranks 0..i only, so its exit
    is constrained by the enters of *lower* ranks rather than all of
    them.
    """

    ONE_TO_N = "1-to-N"
    N_TO_ONE = "N-to-1"
    N_TO_N = "N-to-N"
    PREFIX = "prefix"


#: Flavor of each collective op, used when mapping collectives onto
#: logical point-to-point semantics.
COLLECTIVE_FLAVORS: dict[CollectiveOp, CollectiveFlavor] = {
    CollectiveOp.BARRIER: CollectiveFlavor.N_TO_N,
    CollectiveOp.BCAST: CollectiveFlavor.ONE_TO_N,
    CollectiveOp.REDUCE: CollectiveFlavor.N_TO_ONE,
    CollectiveOp.ALLREDUCE: CollectiveFlavor.N_TO_N,
    CollectiveOp.GATHER: CollectiveFlavor.N_TO_ONE,
    CollectiveOp.SCATTER: CollectiveFlavor.ONE_TO_N,
    CollectiveOp.ALLGATHER: CollectiveFlavor.N_TO_N,
    CollectiveOp.ALLTOALL: CollectiveFlavor.N_TO_N,
    CollectiveOp.SCAN: CollectiveFlavor.PREFIX,
    CollectiveOp.REDUCE_SCATTER: CollectiveFlavor.N_TO_N,
}


@dataclass(frozen=True)
class Event:
    """Row view of one event (convenience; algorithms use the columns)."""

    timestamp: float
    etype: EventType
    a: int = 0
    b: int = 0
    c: int = 0
    d: int = 0


#: Initial column capacity on the first append (doubles when full).
_INITIAL_CAPACITY = 64

#: (attribute, dtype) layout of the six columns, in record order.
_COLUMNS = (
    ("_ts", np.float64),
    ("_et", np.int8),
    ("_a", np.int64),
    ("_b", np.int64),
    ("_c", np.int64),
    ("_d", np.int64),
)


class EventLog:
    """Columnar, append-then-freeze event storage for one rank.

    Appends write directly into preallocated numpy columns that double
    in capacity when full (amortized O(1)); :meth:`freeze` slices
    zero-copy views of the filled prefix.  All read accessors
    implicitly freeze.
    """

    __slots__ = ("_ts", "_et", "_a", "_b", "_c", "_d", "_n", "_frozen")

    def __init__(self) -> None:
        for name, dtype in _COLUMNS:
            setattr(self, name, np.empty(0, dtype=dtype))
        self._n = 0
        self._frozen = False

    def _reserve(self, extra: int) -> None:
        """Grow every column so at least ``extra`` more records fit."""
        need = self._n + extra
        cap = len(self._ts)
        if need <= cap:
            return
        new_cap = max(cap, _INITIAL_CAPACITY)
        while new_cap < need:
            new_cap *= 2
        for name, dtype in _COLUMNS:
            old = getattr(self, name)
            grown = np.empty(new_cap, dtype=dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    def append(
        self, timestamp: float, etype: EventType, a: int = 0, b: int = 0, c: int = 0, d: int = 0
    ) -> None:
        """Record one event (only before freezing)."""
        if self._frozen:
            raise TraceError("cannot append to a frozen EventLog")
        n = self._n
        if n >= len(self._ts):
            self._reserve(1)
        self._ts[n] = timestamp
        self._et[n] = int(etype)
        self._a[n] = a
        self._b[n] = b
        self._c[n] = c
        self._d[n] = d
        self._n = n + 1

    def extend(
        self,
        timestamps: np.ndarray,
        etypes: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        d: np.ndarray,
    ) -> None:
        """Append N records at once from parallel column arrays."""
        if self._frozen:
            raise TraceError("cannot append to a frozen EventLog")
        k = len(timestamps)
        if not all(len(col) == k for col in (etypes, a, b, c, d)):
            raise TraceError("column length mismatch")
        self._reserve(k)
        n = self._n
        for name, col in zip(
            ("_ts", "_et", "_a", "_b", "_c", "_d"),
            (timestamps, etypes, a, b, c, d),
        ):
            getattr(self, name)[n : n + k] = col
        self._n = n + k

    def freeze(self) -> "EventLog":
        """Slice immutable zero-copy views of the columns; idempotent."""
        if not self._frozen:
            n = self._n
            for name, _ in _COLUMNS:
                setattr(self, name, getattr(self, name)[:n])
            self._frozen = True
        return self

    @classmethod
    def from_arrays(
        cls,
        timestamps: np.ndarray,
        etypes: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        d: np.ndarray,
    ) -> "EventLog":
        """Build a frozen log directly from columns (I/O, corrections)."""
        n = len(timestamps)
        if not all(len(col) == n for col in (etypes, a, b, c, d)):
            raise TraceError("column length mismatch")
        log = cls()
        log._ts = np.asarray(timestamps, dtype=np.float64)
        log._et = np.asarray(etypes, dtype=np.int8)
        log._a = np.asarray(a, dtype=np.int64)
        log._b = np.asarray(b, dtype=np.int64)
        log._c = np.asarray(c, dtype=np.int64)
        log._d = np.asarray(d, dtype=np.int64)
        log._n = n
        log._frozen = True
        return log

    # ------------------------------------------------------------------
    # Column accessors (freeze on first use)
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        return self.freeze()._ts

    @property
    def etypes(self) -> np.ndarray:
        return self.freeze()._et

    @property
    def a(self) -> np.ndarray:
        return self.freeze()._a

    @property
    def b(self) -> np.ndarray:
        return self.freeze()._b

    @property
    def c(self) -> np.ndarray:
        return self.freeze()._c

    @property
    def d(self) -> np.ndarray:
        return self.freeze()._d

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> Event:
        self.freeze()
        return Event(
            timestamp=float(self._ts[i]),
            etype=EventType(int(self._et[i])),
            a=int(self._a[i]),
            b=int(self._b[i]),
            c=int(self._c[i]),
            d=int(self._d[i]),
        )

    def __iter__(self) -> Iterator[Event]:
        for i in range(len(self)):
            yield self[i]

    def with_timestamps(self, new_ts: np.ndarray) -> "EventLog":
        """A copy of this log with replaced timestamps (corrections)."""
        self.freeze()
        ts = np.asarray(new_ts, dtype=np.float64)
        if ts.shape != self._ts.shape:
            raise TraceError(
                f"replacement timestamps shape {ts.shape} != {self._ts.shape}"
            )
        return EventLog.from_arrays(ts, self._et, self._a, self._b, self._c, self._d)

    def select(self, etype: EventType) -> np.ndarray:
        """Indices of all events of the given type, in log order."""
        self.freeze()
        return np.nonzero(self._et == int(etype))[0]

    def is_sorted(self) -> bool:
        """Are timestamps non-decreasing (local clock order)?"""
        ts = self.timestamps
        return bool(np.all(np.diff(ts) >= 0)) if len(ts) > 1 else True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog(<{len(self)} events>, frozen={self._frozen})"
