"""The postmortem trace container and record extraction.

A :class:`Trace` bundles the per-rank event logs of one run plus
free-form metadata (machine, timer technology, process locations).  Its
job is to answer the questions the synchronization layer asks:

* :meth:`Trace.messages` — the matched point-to-point messages, i.e.
  (send timestamp, receive timestamp, ranks, indices) for every
  transferred message;
* :meth:`Trace.collectives` — per-instance enter/exit timestamps of
  every collective operation;
* event statistics used by Fig. 7 (fraction of message events).

Matching uses the simulator's ground-truth ``match_id`` when present
(every record written by :mod:`repro.tracing.instrument` carries one)
and falls back to FIFO per (src, dst, tag) matching — the algorithm real
tools must use — when ids are absent (e.g. traces read from foreign
files).  Both paths are tested to agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from repro.errors import MatchingError, TraceError
from repro.tracing.events import CollectiveOp, EventLog, EventType

__all__ = ["Trace", "MessageRecord", "MessageTable", "CollectiveRecord", "CollectiveTable"]


@dataclass(frozen=True)
class MessageRecord:
    """Row view of one matched message."""

    src: int
    dst: int
    tag: int
    nbytes: int
    send_ts: float
    recv_ts: float
    send_idx: int  # index into the sender's event log
    recv_idx: int  # index into the receiver's event log


class MessageTable:
    """Columnar set of matched messages (vectorized access)."""

    __slots__ = ("src", "dst", "tag", "nbytes", "send_ts", "recv_ts", "send_idx", "recv_idx")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        tag: np.ndarray,
        nbytes: np.ndarray,
        send_ts: np.ndarray,
        recv_ts: np.ndarray,
        send_idx: np.ndarray,
        recv_idx: np.ndarray,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.tag = np.asarray(tag, dtype=np.int64)
        self.nbytes = np.asarray(nbytes, dtype=np.int64)
        self.send_ts = np.asarray(send_ts, dtype=np.float64)
        self.recv_ts = np.asarray(recv_ts, dtype=np.float64)
        self.send_idx = np.asarray(send_idx, dtype=np.int64)
        self.recv_idx = np.asarray(recv_idx, dtype=np.int64)

    def __len__(self) -> int:
        return self.src.size

    def __iter__(self) -> Iterator[MessageRecord]:
        for i in range(len(self)):
            yield self.row(i)

    def row(self, i: int) -> MessageRecord:
        return MessageRecord(
            src=int(self.src[i]),
            dst=int(self.dst[i]),
            tag=int(self.tag[i]),
            nbytes=int(self.nbytes[i]),
            send_ts=float(self.send_ts[i]),
            recv_ts=float(self.recv_ts[i]),
            send_idx=int(self.send_idx[i]),
            recv_idx=int(self.recv_idx[i]),
        )

    @classmethod
    def empty(cls) -> "MessageTable":
        z = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return cls(z, z, z, z, f, f, z, z)


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective instance: per-rank enter/exit timestamps."""

    instance: int
    op: CollectiveOp
    root: int
    ranks: np.ndarray  # participating ranks, ascending
    enter_ts: np.ndarray  # aligned with ranks
    exit_ts: np.ndarray  # aligned with ranks
    enter_idx: np.ndarray  # log index of each rank's COLL_ENTER
    exit_idx: np.ndarray  # log index of each rank's COLL_EXIT


class CollectiveTable:
    """All collective instances of a trace, grouped by instance id."""

    __slots__ = ("records",)

    def __init__(self, records: list[CollectiveRecord]) -> None:
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CollectiveRecord]:
        return iter(self.records)

    def __getitem__(self, i: int) -> CollectiveRecord:
        return self.records[i]


class Trace:
    """Per-rank event logs plus run metadata.

    Parameters
    ----------
    logs:
        Mapping rank -> :class:`EventLog`.  Ranks need not be contiguous
        (OpenMP traces use thread ids).
    meta:
        Free-form metadata; well-known keys used by the toolchain:
        ``machine``, ``timer``, ``locations`` (list of
        ``(node, chip, core)`` per rank), ``duration``.
    """

    def __init__(self, logs: dict[int, EventLog], meta: Optional[dict[str, Any]] = None) -> None:
        if not logs:
            raise TraceError("a trace needs at least one rank")
        self.logs = {rank: log.freeze() for rank, log in logs.items()}
        self.meta: dict[str, Any] = dict(meta or {})
        self._messages: Optional[MessageTable] = None
        self._collectives: Optional[CollectiveTable] = None
        self._schedules: dict[bool, Any] = {}

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        return sorted(self.logs.keys())

    @property
    def nranks(self) -> int:
        return len(self.logs)

    def total_events(self) -> int:
        return sum(len(log) for log in self.logs.values())

    def compiled_schedule(self, include_collectives: bool = True):
        """The trace's compiled happened-before schedule (cached).

        Returns a :class:`repro.sync.schedule.CompiledSchedule` for the
        standard message/collective dependency relation.  Schedules are
        structure-only (timestamps never enter the compilation), so one
        schedule serves every timestamp correction of this trace; CLC,
        naive-shift, Lamport, vector, and replay all share it.
        """
        # ``setdefault`` on ``__dict__``: traces unpickled from caches
        # written by older versions lack the attribute.
        cache = self.__dict__.setdefault("_schedules", {})
        schedule = cache.get(include_collectives)
        if schedule is None:
            from repro.sync.schedule import CompiledSchedule  # import cycle: sync -> tracing

            schedule = CompiledSchedule.from_trace(self, include_collectives)
            cache[include_collectives] = schedule
        return schedule

    def event_counts(self) -> dict[EventType, int]:
        """Number of events per type across all ranks."""
        counts: dict[EventType, int] = {}
        for log in self.logs.values():
            types, n = np.unique(log.etypes, return_counts=True)
            for t, k in zip(types, n):
                et = EventType(int(t))
                counts[et] = counts.get(et, 0) + int(k)
        return counts

    def message_event_fraction(self) -> float:
        """Fraction of message-transfer events among all events (Fig. 7)."""
        total = self.total_events()
        if total == 0:
            return 0.0
        counts = self.event_counts()
        msg = counts.get(EventType.SEND, 0) + counts.get(EventType.RECV, 0)
        return msg / total

    # ------------------------------------------------------------------
    # Message extraction
    # ------------------------------------------------------------------
    def messages(self, refresh: bool = False, strict: bool = True) -> MessageTable:
        """Matched point-to-point messages (cached).

        With ``strict=False``, half-matched messages — possible when only
        a window of a longer run was traced, so one end of a transfer
        falls outside the trace — are silently dropped instead of raising
        :class:`MatchingError`.
        """
        if self._messages is None or refresh or not strict:
            table = self._match_messages(strict)
            if strict:
                self._messages = table
            return table
        return self._messages

    def _match_messages(self, strict: bool = True) -> MessageTable:
        have_ids = True
        for log in self.logs.values():
            idx = log.select(EventType.SEND)
            if idx.size and np.any(log.d[idx] < 0):
                have_ids = False
                break
        if have_ids:
            return self._match_by_id(strict)
        return self._match_fifo(strict)

    def _match_by_id(self, strict: bool) -> MessageTable:
        """Vectorized alignment of send and receive rows on match ids.

        Columns are concatenated across ranks, sorted by match id on
        both sides, and intersected — O(m log m) with no per-message
        Python work, which matters for million-message traces.
        """
        s_mid, s_rank, s_idx, s_ts = [], [], [], []
        r_mid, r_rank, r_idx, r_ts, r_tag, r_nb = [], [], [], [], [], []
        for rank in self.ranks:
            log = self.logs[rank]
            ts = log.timestamps
            sel = log.select(EventType.SEND)
            if sel.size:
                s_mid.append(log.d[sel])
                s_rank.append(np.full(sel.size, rank, dtype=np.int64))
                s_idx.append(sel.astype(np.int64))
                s_ts.append(ts[sel])
            sel = log.select(EventType.RECV)
            if sel.size:
                r_mid.append(log.d[sel])
                r_rank.append(np.full(sel.size, rank, dtype=np.int64))
                r_idx.append(sel.astype(np.int64))
                r_ts.append(ts[sel])
                r_tag.append(log.b[sel])
                r_nb.append(log.c[sel])
        if not r_mid or not s_mid:
            n_sends = sum(a.size for a in s_mid)
            n_recvs = sum(a.size for a in r_mid)
            if strict and (n_sends or n_recvs):
                raise MatchingError(
                    f"{n_sends} send(s) / {n_recvs} receive(s) cannot be matched"
                )
            return MessageTable.empty()

        s_mid = np.concatenate(s_mid)
        s_rank = np.concatenate(s_rank)
        s_idx = np.concatenate(s_idx)
        s_ts = np.concatenate(s_ts)
        r_mid = np.concatenate(r_mid)
        r_rank = np.concatenate(r_rank)
        r_idx = np.concatenate(r_idx)
        r_ts = np.concatenate(r_ts)
        r_tag = np.concatenate(r_tag)
        r_nb = np.concatenate(r_nb)

        s_order = np.argsort(s_mid, kind="stable")
        s_mid_sorted = s_mid[s_order]
        # Position of each receive's id in the sorted send ids.
        pos = np.searchsorted(s_mid_sorted, r_mid)
        pos_clipped = np.minimum(pos, s_mid_sorted.size - 1)
        found = (r_mid >= 0) & (s_mid_sorted[pos_clipped] == r_mid)
        if strict:
            if not np.all(found):
                bad = int(np.nonzero(~found)[0][0])
                raise MatchingError(
                    f"receive at rank {int(r_rank[bad])} index {int(r_idx[bad])} "
                    f"has unmatched id {int(r_mid[bad])}"
                )
            if int(found.sum()) != s_mid.size:
                raise MatchingError(
                    f"{s_mid.size - int(found.sum())} send event(s) have no matching receive"
                )
        if not np.any(found):
            return MessageTable.empty()
        take_s = s_order[pos_clipped[found]]
        return MessageTable(
            s_rank[take_s], r_rank[found], r_tag[found], r_nb[found],
            s_ts[take_s], r_ts[found], s_idx[take_s], r_idx[found],
        )

    def _match_fifo(self, strict: bool) -> MessageTable:
        """FIFO matching per (src, dst, tag) channel (tool-style fallback).

        Relies on MPI non-overtaking semantics: the k-th receive on a
        channel matches the k-th send.  Receives recorded with concrete
        source/tag only (wildcards were resolved at record time, as real
        tools do via ``MPI_Status``).
        """
        from collections import defaultdict, deque

        queues: dict[tuple[int, int, int], deque] = defaultdict(deque)
        for rank in self.ranks:
            log = self.logs[rank]
            for i in log.select(EventType.SEND):
                key = (rank, int(log.a[i]), int(log.b[i]))
                queues[key].append((int(i), float(log.timestamps[i]), int(log.c[i])))
        src_l, dst_l, tag_l, nb_l, sts_l, rts_l, sidx_l, ridx_l = ([] for _ in range(8))
        for rank in self.ranks:
            log = self.logs[rank]
            for i in log.select(EventType.RECV):
                key = (int(log.a[i]), rank, int(log.b[i]))
                q = queues.get(key)
                if not q:
                    if strict:
                        raise MatchingError(
                            f"receive at rank {rank} (src={key[0]}, tag={key[2]}) has no send"
                        )
                    continue
                s_idx, s_ts, s_nb = q.popleft()
                src_l.append(key[0])
                dst_l.append(rank)
                tag_l.append(key[2])
                nb_l.append(s_nb)
                sts_l.append(s_ts)
                rts_l.append(float(log.timestamps[i]))
                sidx_l.append(s_idx)
                ridx_l.append(int(i))
        leftovers = sum(len(q) for q in queues.values())
        if strict and leftovers:
            raise MatchingError(f"{leftovers} send event(s) have no matching receive")
        if not src_l:
            return MessageTable.empty()
        return MessageTable(
            np.array(src_l), np.array(dst_l), np.array(tag_l), np.array(nb_l),
            np.array(sts_l), np.array(rts_l), np.array(sidx_l), np.array(ridx_l),
        )

    # ------------------------------------------------------------------
    # Collective extraction
    # ------------------------------------------------------------------
    def collectives(self, refresh: bool = False) -> CollectiveTable:
        """Collective instances with per-rank enter/exit times (cached)."""
        if self._collectives is None or refresh:
            self._collectives = self._extract_collectives()
        return self._collectives

    def _extract_collectives(self) -> CollectiveTable:
        # instance -> {rank: (enter_ts, exit_ts, enter_idx, exit_idx, op, root)}
        per_instance: dict[int, dict[int, list]] = {}
        for rank in self.ranks:
            log = self.logs[rank]
            ts = log.timestamps
            enters = log.select(EventType.COLL_ENTER)
            exits = log.select(EventType.COLL_EXIT)
            open_by_instance: dict[int, int] = {}
            for i in enters:
                inst = int(log.d[i])
                open_by_instance[inst] = int(i)
            for i in exits:
                inst = int(log.d[i])
                if inst not in open_by_instance:
                    raise TraceError(
                        f"rank {rank}: COLL_EXIT for instance {inst} without COLL_ENTER"
                    )
                e_idx = open_by_instance.pop(inst)
                entry = per_instance.setdefault(inst, {})
                entry[rank] = [
                    float(ts[e_idx]),
                    float(ts[i]),
                    e_idx,
                    int(i),
                    int(log.a[i]),
                    int(log.b[i]),
                ]
            if open_by_instance:
                raise TraceError(
                    f"rank {rank}: unclosed collective instances {sorted(open_by_instance)}"
                )
        records = []
        for inst in sorted(per_instance):
            members = per_instance[inst]
            ranks = np.array(sorted(members), dtype=np.int64)
            enter_ts = np.array([members[r][0] for r in ranks], dtype=np.float64)
            exit_ts = np.array([members[r][1] for r in ranks], dtype=np.float64)
            enter_idx = np.array([members[r][2] for r in ranks], dtype=np.int64)
            exit_idx = np.array([members[r][3] for r in ranks], dtype=np.int64)
            op = CollectiveOp(members[int(ranks[0])][4])
            root = members[int(ranks[0])][5]
            records.append(
                CollectiveRecord(
                    instance=inst,
                    op=op,
                    root=root,
                    ranks=ranks,
                    enter_ts=enter_ts,
                    exit_ts=exit_ts,
                    enter_idx=enter_idx,
                    exit_idx=exit_idx,
                )
            )
        return CollectiveTable(records)

    # ------------------------------------------------------------------
    def slice(self, t0: float, t1: float) -> "Trace":
        """Sub-trace with only the events whose timestamp lies in ``[t0, t1)``.

        The tool-side analogue of a partial-tracing window applied
        postmortem.  Messages with one endpoint outside the window
        become half-matched — use ``messages(strict=False)`` on the
        result, exactly as with window-traced runs.  Collective
        instances that lose their enter or exit are dropped from
        ``collectives()`` extraction with an error, so slice on region
        boundaries when collectives matter.
        """
        if t1 <= t0:
            raise TraceError(f"empty slice window [{t0}, {t1})")
        logs = {}
        for rank, log in self.logs.items():
            ts = log.timestamps
            mask = (ts >= t0) & (ts < t1)
            logs[rank] = EventLog.from_arrays(
                ts[mask], log.etypes[mask], log.a[mask], log.b[mask],
                log.c[mask], log.d[mask],
            )
        meta = dict(self.meta)
        meta["slice"] = (t0, t1)
        return Trace(logs, meta=meta)

    def with_timestamps(self, new_ts: dict[int, np.ndarray]) -> "Trace":
        """A corrected copy of this trace with replaced timestamps.

        Ranks absent from ``new_ts`` keep their original timestamps.
        """
        logs = {
            rank: (log.with_timestamps(new_ts[rank]) if rank in new_ts else log)
            for rank, log in self.logs.items()
        }
        out = Trace(logs, meta=dict(self.meta))
        # Timestamp replacement preserves event structure, so compiled
        # happened-before schedules stay valid for the corrected trace.
        out._schedules = dict(self.__dict__.get("_schedules", {}))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(ranks={self.nranks}, events={self.total_events()})"
