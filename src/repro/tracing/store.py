"""Sharded, memory-mappable on-disk trace store.

Out-of-core counterpart of the single-file formats in
:mod:`repro.tracing.writer`: each rank's columnar :class:`EventLog` is
split into fixed-event-count *shards* of raw little-endian column
files, described by an append-only JSONL manifest.  The layout mirrors
the append-only trace-contract idiom of real tracing back-ends — every
shard is individually addressable, partially written runs are
detectable (no footer), and readers open columns with ``np.memmap`` so
loading a shard never copies more than it touches::

    <dir>/manifest.jsonl           # header, one record per shard, footer
    <dir>/shard_000000_r0.bin      # ts|et|a|b|c|d column bytes

Manifest records (one JSON object per line):

* ``header`` — format name/version, ``run_id``, ``shard_events``, the
  column dtypes;
* ``shard`` — ``seq`` (global write order), ``rank``, ``file``,
  ``events``, the rank-local event span ``[start, stop)``, ``nbytes``,
  a ``sha256`` content digest, and send/recv summary flags used by the
  streaming kernels;
* ``footer`` — ranks, per-rank totals, shard count, and run metadata.
  A manifest without a footer is a partial run.

:class:`ChunkedTrace` is the bounded-memory facade over a stored run:
it satisfies enough of the :class:`~repro.tracing.trace.Trace` surface
(ranks, totals, event counts, metadata) for reporting, and hands whole
shards to the streaming kernels in :mod:`repro.sync.streaming`.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from pathlib import Path
from typing import Any, Iterator, Optional, Union

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.tracing.buffer import TraceBuffer
from repro.tracing.events import EventLog, EventType
from repro.tracing.trace import Trace
from repro.tracing.writer import _jsonable_meta

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "DEFAULT_SHARD_EVENTS",
    "ShardRecord",
    "ShardedTraceWriter",
    "ShardedTraceReader",
    "ChunkedTrace",
    "SpillingTraceBuffer",
    "write_sharded_trace",
    "is_sharded_trace_dir",
]

#: Manifest format name; checked by the reader.
STORE_FORMAT = "repro-shard"
#: Bumped on any incompatible layout change.
STORE_VERSION = 1
#: Shard size used when a spill sink is requested without an explicit one.
DEFAULT_SHARD_EVENTS = 65536

#: (manifest name, numpy little-endian dtype) of the six columns, in
#: on-disk order.  Mirrors ``repro.tracing.events._COLUMNS``.
_STORE_COLUMNS = (
    ("ts", "<f8"),
    ("et", "<i1"),
    ("a", "<i8"),
    ("b", "<i8"),
    ("c", "<i8"),
    ("d", "<i8"),
)

#: Bytes per event across all six columns.
_EVENT_NBYTES = sum(np.dtype(dt).itemsize for _, dt in _STORE_COLUMNS)


class ShardRecord:
    """One parsed ``shard`` manifest line (attribute access, no dict walk)."""

    __slots__ = (
        "seq", "rank", "file", "events", "start", "stop",
        "nbytes", "sha256", "sends", "recvs", "neg_send_ids",
    )

    def __init__(self, obj: dict) -> None:
        self.seq = int(obj["seq"])
        self.rank = int(obj["rank"])
        self.file = str(obj["file"])
        self.events = int(obj["events"])
        self.start = int(obj["start"])
        self.stop = int(obj["stop"])
        self.nbytes = int(obj["nbytes"])
        self.sha256 = str(obj["sha256"])
        self.sends = int(obj.get("sends", 0))
        self.recvs = int(obj.get("recvs", 0))
        self.neg_send_ids = bool(obj.get("neg_send_ids", False))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRecord(seq={self.seq}, rank={self.rank}, "
            f"span=[{self.start}, {self.stop}))"
        )


class ShardedTraceWriter:
    """Split per-rank event columns into fixed-size on-disk shards.

    Events are buffered per rank and flushed as a shard whenever
    ``shard_events`` records have accumulated; :meth:`finish` flushes
    the partial tails and appends the manifest footer.  Use as a
    context manager — on a clean exit the footer is written, on an
    exception it is not, leaving a detectable partial run.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        shard_events: int = DEFAULT_SHARD_EVENTS,
        run_id: str = "run",
    ) -> None:
        if not isinstance(shard_events, int) or shard_events < 1:
            raise ConfigurationError(
                f"shard_events must be a positive int, got {shard_events!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_events = shard_events
        self.run_id = run_id
        self._pending: dict[int, EventLog] = {}
        self._written: dict[int, int] = {}  # rank -> events flushed so far
        self._seq = 0
        self._finished = False
        self._manifest = (self.directory / "manifest.jsonl").open("w", encoding="utf-8")
        self._emit(
            {
                "kind": "header",
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "run_id": run_id,
                "shard_events": shard_events,
                "columns": [[name, dt] for name, dt in _STORE_COLUMNS],
            }
        )

    # ------------------------------------------------------------------
    def _emit(self, obj: dict) -> None:
        self._manifest.write(json.dumps(obj) + "\n")
        self._manifest.flush()

    def register_rank(self, rank: int) -> None:
        """Ensure ``rank`` appears in the footer even with zero events."""
        self._check_open()
        self._pending.setdefault(int(rank), EventLog())
        self._written.setdefault(int(rank), 0)

    def _check_open(self) -> None:
        if self._finished:
            raise TraceFormatError("ShardedTraceWriter is already finished")

    def append(
        self, rank: int, timestamp: float, etype: EventType,
        a: int = 0, b: int = 0, c: int = 0, d: int = 0,
    ) -> None:
        """Record one event for ``rank`` (shards flush automatically)."""
        self._check_open()
        log = self._pending.get(rank)
        if log is None:
            self.register_rank(rank)
            log = self._pending[rank]
        log.append(timestamp, etype, a, b, c, d)
        if len(log) >= self.shard_events:
            self._flush_full(rank)

    def append_batch(self, rank: int, timestamps, etypes, a, b, c, d) -> None:
        """Record N events for ``rank`` from parallel column arrays."""
        self._check_open()
        log = self._pending.get(rank)
        if log is None:
            self.register_rank(rank)
            log = self._pending[rank]
        log.extend(
            np.asarray(timestamps, dtype=np.float64),
            np.asarray(etypes, dtype=np.int8),
            np.asarray(a, dtype=np.int64),
            np.asarray(b, dtype=np.int64),
            np.asarray(c, dtype=np.int64),
            np.asarray(d, dtype=np.int64),
        )
        if len(log) >= self.shard_events:
            self._flush_full(rank)

    def add_log(self, rank: int, log: EventLog) -> None:
        """Append an entire frozen :class:`EventLog` for ``rank``."""
        self.register_rank(rank)
        if len(log):
            self.append_batch(
                rank, log.timestamps, log.etypes, log.a, log.b, log.c, log.d
            )

    # ------------------------------------------------------------------
    def _flush_full(self, rank: int) -> None:
        """Flush every complete shard buffered for ``rank``."""
        log = self._pending[rank].freeze()
        cols = (log.timestamps, log.etypes, log.a, log.b, log.c, log.d)
        n = len(log)
        pos = 0
        while n - pos >= self.shard_events:
            self._write_shard(rank, [c[pos : pos + self.shard_events] for c in cols])
            pos += self.shard_events
        rest = EventLog()
        if pos < n:
            rest.extend(*(c[pos:] for c in cols))
        self._pending[rank] = rest

    def _write_shard(self, rank: int, cols) -> None:
        ts, et, a, b, c, d = cols
        events = int(ts.size)
        name = f"shard_{self._seq:06d}_r{rank}.bin"
        payload = b"".join(
            np.ascontiguousarray(col).astype(dt, copy=False).tobytes()
            for col, (_, dt) in zip(cols, _STORE_COLUMNS)
        )
        (self.directory / name).write_bytes(payload)
        send_mask = et == int(EventType.SEND)
        sends = int(np.count_nonzero(send_mask))
        recvs = int(np.count_nonzero(et == int(EventType.RECV)))
        neg_ids = bool(sends and np.any(d[send_mask] < 0))
        start = self._written[rank]
        self._emit(
            {
                "kind": "shard",
                "seq": self._seq,
                "rank": rank,
                "file": name,
                "events": events,
                "start": start,
                "stop": start + events,
                "nbytes": len(payload),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "sends": sends,
                "recvs": recvs,
                "neg_send_ids": neg_ids,
            }
        )
        self._written[rank] = start + events
        self._seq += 1

    # ------------------------------------------------------------------
    def finish(self, meta: Optional[dict] = None) -> Path:
        """Flush partial tails, write the footer, and close the manifest."""
        if self._finished:
            return self.directory
        for rank in sorted(self._pending):
            log = self._pending[rank].freeze()
            if len(log):
                self._write_shard(
                    rank,
                    (log.timestamps, log.etypes, log.a, log.b, log.c, log.d),
                )
            self._pending[rank] = EventLog()
        self._emit(
            {
                "kind": "footer",
                "ranks": sorted(self._written),
                "events": {str(r): n for r, n in sorted(self._written.items())},
                "shards": self._seq,
                "meta": _jsonable_meta(dict(meta or {})),
            }
        )
        self._manifest.close()
        self._finished = True
        return self.directory

    def close(self) -> None:
        """Close the manifest without a footer (leaves a partial run)."""
        if not self._manifest.closed:
            self._manifest.close()

    def __enter__(self) -> "ShardedTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.close()


def write_sharded_trace(
    trace: Trace,
    directory: Union[str, Path],
    shard_events: int = DEFAULT_SHARD_EVENTS,
    run_id: str = "run",
) -> Path:
    """Serialize an in-memory :class:`Trace` as a sharded directory."""
    writer = ShardedTraceWriter(directory, shard_events=shard_events, run_id=run_id)
    with writer:
        for rank in trace.ranks:
            writer.add_log(rank, trace.logs[rank])
        writer.finish(meta=trace.meta)
    return writer.directory


def is_sharded_trace_dir(path: Union[str, Path]) -> bool:
    """Does ``path`` look like a sharded trace directory (has a manifest)?"""
    path = Path(path)
    return path.is_dir() and (path / "manifest.jsonl").exists()


class ShardedTraceReader:
    """Open a sharded trace directory and hand out memory-mapped shards.

    Parameters
    ----------
    directory:
        A directory written by :class:`ShardedTraceWriter`.
    allow_partial:
        Accept a manifest without a footer (interrupted run).  The
        readable prefix — every shard whose record and file are intact —
        is exposed; run metadata is empty.
    verify_digests:
        Check every shard's sha256 against the manifest up front
        (otherwise only file sizes are validated, which catches
        truncation but not corruption).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        allow_partial: bool = False,
        verify_digests: bool = False,
    ) -> None:
        self.directory = Path(directory)
        manifest = self.directory / "manifest.jsonl"
        if not manifest.exists():
            raise TraceFormatError(
                f"{self.directory} has no manifest.jsonl (not a sharded trace directory)"
            )
        header = None
        footer = None
        shards: list[ShardRecord] = []
        with manifest.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    if allow_partial:
                        break  # torn tail line of an interrupted run
                    raise TraceFormatError(
                        f"{manifest}:{lineno}: invalid JSON (truncated manifest? "
                        "pass allow_partial=True to read the intact prefix)"
                    ) from exc
                kind = obj.get("kind")
                if kind == "header":
                    if lineno != 1:
                        raise TraceFormatError(f"{manifest}: header is not the first record")
                    header = obj
                elif kind == "shard":
                    shards.append(ShardRecord(obj))
                elif kind == "footer":
                    footer = obj
                else:
                    raise TraceFormatError(
                        f"{manifest}:{lineno}: unknown record kind {kind!r}"
                    )
        if header is None:
            raise TraceFormatError(f"{manifest}: missing header line")
        if header.get("format") != STORE_FORMAT:
            raise TraceFormatError(
                f"{manifest}: format {header.get('format')!r} is not {STORE_FORMAT!r}"
            )
        if header.get("version") != STORE_VERSION:
            raise TraceFormatError(
                f"{manifest}: shard-directory format version {header.get('version')} "
                f"unsupported (expected {STORE_VERSION})"
            )
        if footer is None and not allow_partial:
            raise TraceFormatError(
                f"{manifest}: no footer — the run was interrupted mid-write; "
                "pass allow_partial=True to read the intact prefix"
            )
        self.run_id: str = str(header.get("run_id", ""))
        self.shard_events: int = int(header["shard_events"])
        self.partial: bool = footer is None
        self.meta: dict[str, Any] = dict((footer or {}).get("meta", {}))
        for rec in shards:
            path = self.directory / rec.file
            if not path.exists():
                raise TraceFormatError(f"{self.directory}: missing shard file {rec.file}")
            size = path.stat().st_size
            if size != rec.nbytes:
                raise TraceFormatError(
                    f"{self.directory}/{rec.file}: {size} bytes on disk, "
                    f"manifest says {rec.nbytes} (truncated or corrupt shard)"
                )
        self._by_rank: dict[int, list[ShardRecord]] = {}
        for rec in sorted(shards, key=lambda r: r.seq):
            self._by_rank.setdefault(rec.rank, []).append(rec)
        for recs in self._by_rank.values():
            recs.sort(key=lambda r: r.start)
            pos = 0
            for rec in recs:
                if rec.start != pos:
                    raise TraceFormatError(
                        f"{self.directory}: rank {rec.rank} shard {rec.seq} starts at "
                        f"{rec.start}, expected {pos} (missing shard record)"
                    )
                pos = rec.stop
        if footer is not None:
            self._ranks = [int(r) for r in footer["ranks"]]
            totals = {int(r): int(n) for r, n in footer.get("events", {}).items()}
            for rank in self._ranks:
                have = sum(rec.events for rec in self._by_rank.get(rank, ()))
                if have != totals.get(rank, have):
                    raise TraceFormatError(
                        f"{self.directory}: rank {rank} has {have} events in shards, "
                        f"footer says {totals[rank]}"
                    )
        else:
            self._ranks = sorted(self._by_rank)
        if verify_digests:
            for rank in self._ranks:
                for rec in self._by_rank.get(rank, ()):
                    self.verify_shard(rec)

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        return list(self._ranks)

    def rank_events(self, rank: int) -> int:
        recs = self._by_rank.get(rank, ())
        return recs[-1].stop if recs else 0

    def total_events(self) -> int:
        return sum(self.rank_events(r) for r in self._ranks)

    def rank_shards(self, rank: int) -> list[ShardRecord]:
        """This rank's shard records in event order."""
        return list(self._by_rank.get(rank, ()))

    def shard_count(self) -> int:
        return sum(len(v) for v in self._by_rank.values())

    def shard_index(self, rank: int, event_index: int) -> int:
        """Ordinal of the shard holding ``event_index`` of ``rank``."""
        starts = [rec.start for rec in self._by_rank.get(rank, ())]
        return bisect_right(starts, event_index) - 1

    # ------------------------------------------------------------------
    def load_shard(self, rec: ShardRecord) -> tuple[np.ndarray, ...]:
        """Memory-mapped ``(ts, et, a, b, c, d)`` columns of one shard."""
        path = self.directory / rec.file
        cols = []
        offset = 0
        for _, dt in _STORE_COLUMNS:
            dtype = np.dtype(dt)
            cols.append(
                np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=(rec.events,))
            )
            offset += dtype.itemsize * rec.events
        return tuple(cols)

    def verify_shard(self, rec: ShardRecord) -> None:
        """Check one shard's content digest against the manifest."""
        digest = hashlib.sha256((self.directory / rec.file).read_bytes()).hexdigest()
        if digest != rec.sha256:
            raise TraceFormatError(
                f"{self.directory}/{rec.file}: content digest mismatch "
                f"({digest[:12]}… != manifest {rec.sha256[:12]}…)"
            )

    def read_log(self, rank: int) -> EventLog:
        """Materialize one rank's full :class:`EventLog` (copies)."""
        recs = self._by_rank.get(rank, ())
        if not recs:
            return EventLog().freeze()
        parts = [self.load_shard(rec) for rec in recs]
        return EventLog.from_arrays(
            *(np.concatenate([p[i] for p in parts]) for i in range(6))
        )

    def read_trace(self) -> Trace:
        """Materialize the whole run as an in-memory :class:`Trace`."""
        logs = {rank: self.read_log(rank) for rank in self._ranks}
        return Trace(logs, meta=dict(self.meta))


class ChunkedTrace:
    """Bounded-memory facade over a :class:`ShardedTraceReader`.

    Satisfies the read-only :class:`~repro.tracing.trace.Trace` surface
    that reporting needs (``ranks``, ``total_events``, ``event_counts``,
    ``message_event_fraction``, ``meta``) without materializing the
    trace; the streaming kernels in :mod:`repro.sync.streaming` consume
    it shard-by-shard via :meth:`iter_shards`.
    """

    def __init__(self, reader: Union[ShardedTraceReader, str, Path]) -> None:
        if not isinstance(reader, ShardedTraceReader):
            reader = ShardedTraceReader(reader)
        self.reader = reader
        self.meta: dict[str, Any] = dict(reader.meta)

    @property
    def ranks(self) -> list[int]:
        return self.reader.ranks

    @property
    def nranks(self) -> int:
        return len(self.reader.ranks)

    def total_events(self) -> int:
        return self.reader.total_events()

    def iter_shards(
        self, rank: int
    ) -> Iterator[tuple[ShardRecord, tuple[np.ndarray, ...]]]:
        """Yield ``(record, (ts, et, a, b, c, d))`` for one rank, in order."""
        for rec in self.reader.rank_shards(rank):
            yield rec, self.reader.load_shard(rec)

    def event_counts(self) -> dict[EventType, int]:
        """Number of events per type across all ranks (one shard resident)."""
        counts: dict[EventType, int] = {}
        for rank in self.ranks:
            for _, cols in self.iter_shards(rank):
                types, n = np.unique(cols[1], return_counts=True)
                for t, k in zip(types, n):
                    et = EventType(int(t))
                    counts[et] = counts.get(et, 0) + int(k)
        return counts

    def message_event_fraction(self) -> float:
        """Fraction of message-transfer events (manifest counters only)."""
        total = self.total_events()
        if total == 0:
            return 0.0
        msg = sum(
            rec.sends + rec.recvs
            for rank in self.ranks
            for rec in self.reader.rank_shards(rank)
        )
        return msg / total

    def materialize(self) -> Trace:
        """The full in-memory :class:`Trace` (for oracles and small runs)."""
        return self.reader.read_trace()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedTrace(ranks={self.nranks}, events={self.total_events()}, "
            f"shards={self.reader.shard_count()})"
        )


class SpillingTraceBuffer(TraceBuffer):
    """A :class:`TraceBuffer` that spills full shards to a sharded writer.

    Timing behaviour (record/flush costs, the ``flushes`` counter) is
    inherited unchanged so simulations are bit-identical with or without
    a spill sink; the only difference is that the in-memory log is
    handed to ``sink`` and replaced whenever it reaches the sink's
    shard size, so generation never holds more than one shard per rank.
    """

    __slots__ = ("sink", "rank", "events_recorded")

    def __init__(
        self,
        sink: ShardedTraceWriter,
        rank: int,
        capacity: int = 0,
        record_cost: float = 3.0e-8,
        flush_cost: float = 5.0e-3,
    ) -> None:
        super().__init__(capacity=capacity, record_cost=record_cost, flush_cost=flush_cost)
        self.sink = sink
        self.rank = rank
        self.events_recorded = 0
        sink.register_rank(rank)

    def _spill(self) -> None:
        log = self.log.freeze()
        self.sink.append_batch(
            self.rank, log.timestamps, log.etypes, log.a, log.b, log.c, log.d
        )
        self.log = EventLog()

    def append(self, timestamp, etype, a=0, b=0, c=0, d=0) -> float:
        cost = super().append(timestamp, etype, a, b, c, d)
        self.events_recorded += 1
        if len(self.log) >= self.sink.shard_events:
            self._spill()
        return cost

    def append_batch(self, timestamps, etypes, a, b, c, d) -> float:
        cost = super().append_batch(timestamps, etypes, a, b, c, d)
        self.events_recorded += len(timestamps)
        if len(self.log) >= self.sink.shard_events:
            self._spill()
        return cost

    def drain(self) -> None:
        """Spill whatever remains (call once at end of run)."""
        if len(self.log):
            self._spill()
