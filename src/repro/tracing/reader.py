"""Trace deserialization (counterpart of :mod:`repro.tracing.writer`)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.tracing.events import EventLog, EventType
from repro.tracing.trace import Trace
from repro.tracing.writer import FORMAT_VERSION

__all__ = ["read_trace", "read_trace_dir", "trace_from_jsonl"]


def read_trace_dir(directory: Union[str, Path], ranks=None) -> Trace:
    """Load a per-rank trace directory written by ``write_trace_dir``.

    ``ranks`` selects a subset (e.g. one node's ranks) — the point of
    the per-rank layout: postmortem analyses need not touch every file.
    """
    directory = Path(directory)
    anchor_path = directory / "anchor.json"
    if not anchor_path.exists():
        if (directory / "manifest.jsonl").exists():
            raise TraceFormatError(
                f"{directory} has no anchor.json but has a manifest.jsonl — "
                "it is a sharded trace directory; open it with "
                "repro.tracing.store.ShardedTraceReader"
            )
        raise TraceFormatError(f"{directory} has no anchor.json (not a trace directory)")
    anchor = json.loads(anchor_path.read_text(encoding="utf-8"))
    _check_version(anchor, anchor_path)
    available = [int(r) for r in anchor["ranks"]]
    selected = available if ranks is None else [int(r) for r in ranks]
    unknown = set(selected) - set(available)
    if unknown:
        raise TraceFormatError(f"{directory}: ranks {sorted(unknown)} not in anchor")
    logs = {}
    for rank in selected:
        path = directory / f"rank_{rank}.npz"
        if not path.exists():
            raise TraceFormatError(f"{directory}: missing {path.name}")
        with np.load(path) as archive:
            logs[rank] = EventLog.from_arrays(
                archive["ts"], archive["et"], archive["a"],
                archive["b"], archive["c"], archive["d"],
            )
    return Trace(logs, meta=anchor.get("meta", {}))


def read_trace(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`repro.tracing.writer.write_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file {path} does not exist")
    if path.suffix == ".npz":
        return _read_npz(path)
    if path.suffix == ".jsonl":
        return _read_jsonl(path)
    if path.is_dir() and (path / "manifest.jsonl").exists():
        raise TraceFormatError(
            f"{path} is a sharded trace directory; open it with "
            "repro.tracing.store.ShardedTraceReader"
        )
    raise TraceFormatError(f"unknown trace extension {path.suffix!r} (use .npz or .jsonl)")


def _read_npz(path: Path) -> Trace:
    with np.load(path) as archive:
        if "__header__" not in archive:
            raise TraceFormatError(f"{path} is not a repro trace (missing header)")
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        _check_version(header, path)
        logs = {}
        for rank in header["ranks"]:
            try:
                logs[int(rank)] = EventLog.from_arrays(
                    archive[f"r{rank}_ts"],
                    archive[f"r{rank}_et"],
                    archive[f"r{rank}_a"],
                    archive[f"r{rank}_b"],
                    archive[f"r{rank}_c"],
                    archive[f"r{rank}_d"],
                )
            except KeyError as exc:
                raise TraceFormatError(f"{path}: missing column for rank {rank}") from exc
    return Trace(logs, meta=header.get("meta", {}))


def trace_from_jsonl(text: str, label: str = "<jsonl>") -> Trace:
    """Parse ``.jsonl`` trace *text* (the inverse of ``trace_to_jsonl``).

    ``label`` names the source in error messages (a path for files, a
    request id for service payloads).
    """
    return _parse_jsonl_lines(text.splitlines(), Path(label))


def _read_jsonl(path: Path) -> Trace:
    with path.open("r", encoding="utf-8") as fh:
        return _parse_jsonl_lines(fh, path)


def _parse_jsonl_lines(lines, path: Path) -> Trace:
    logs_raw: dict[int, list[dict]] = {}
    header = None
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}:{lineno}: invalid JSON") from exc
        kind = obj.get("kind")
        if kind == "header":
            header = obj
        elif kind == "event":
            logs_raw.setdefault(int(obj["rank"]), []).append(obj)
        else:
            raise TraceFormatError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if header is None:
        raise TraceFormatError(f"{path}: missing header line")
    _check_version(header, path)
    logs = {}
    for rank in header["ranks"]:
        rank = int(rank)
        events = logs_raw.get(rank, [])
        log = EventLog()
        for ev in events:
            try:
                etype = EventType[ev["type"]]
            except KeyError as exc:
                raise TraceFormatError(f"{path}: unknown event type {ev['type']!r}") from exc
            log.append(ev["ts"], etype, ev["a"], ev["b"], ev["c"], ev["d"])
        logs[rank] = log.freeze()
    return Trace(logs, meta=header.get("meta", {}))


def _check_version(header: dict, path: Path) -> None:
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: format version {version} unsupported (expected "
            f"{FORMAT_VERSION}; sharded trace directories carry their own "
            "version in manifest.jsonl and are read by "
            "repro.tracing.store.ShardedTraceReader)"
        )
