"""Event-trace model, buffers, I/O, and instrumentation.

Mirrors the structure of real tracing back-ends (EPILOG/OTF as used by
Scalasca/VAMPIR): each process appends fixed-layout event records —
timestamped with its *local* clock — to a memory buffer that is
eventually flushed; postmortem, per-rank logs are combined into a
:class:`~repro.tracing.trace.Trace` on which synchronization and
analysis operate.
"""

from repro.tracing.events import (
    CollectiveOp,
    Event,
    EventLog,
    EventType,
    COLLECTIVE_FLAVORS,
    CollectiveFlavor,
)
from repro.tracing.trace import MessageRecord, CollectiveRecord, Trace
from repro.tracing.buffer import TraceBuffer
from repro.tracing.writer import write_trace, write_trace_dir
from repro.tracing.reader import read_trace, read_trace_dir
from repro.tracing.store import (
    ChunkedTrace,
    ShardedTraceReader,
    ShardedTraceWriter,
    SpillingTraceBuffer,
    is_sharded_trace_dir,
    write_sharded_trace,
)

__all__ = [
    "EventType",
    "CollectiveOp",
    "CollectiveFlavor",
    "COLLECTIVE_FLAVORS",
    "Event",
    "EventLog",
    "Trace",
    "MessageRecord",
    "CollectiveRecord",
    "TraceBuffer",
    "write_trace",
    "write_trace_dir",
    "read_trace",
    "read_trace_dir",
    "ChunkedTrace",
    "ShardedTraceReader",
    "ShardedTraceWriter",
    "SpillingTraceBuffer",
    "is_sharded_trace_dir",
    "write_sharded_trace",
]
