"""The in-memory trace buffer and its timing behaviour.

Section III: *"Whenever the running application generates an event, the
tracing library takes the current time and writes an event record to a
memory buffer.  After program termination or if necessary already
earlier while the program is still running, the buffer contents is
flushed to disk."*

For the study, what matters about the buffer is not the bytes but the
*intrusion*: every record costs a little CPU time, and a capacity flush
stalls the process noticeably (which perturbs the application — one of
the reasons tools avoid mid-run offset measurements).  :class:`TraceBuffer`
accounts for both and reports the cost of each append so the simulated
instrumentation can charge it as compute time.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tracing.events import EventLog, EventType

__all__ = ["TraceBuffer"]


class TraceBuffer:
    """Appendable event storage with record/flush timing.

    Parameters
    ----------
    capacity:
        Records per flush window; reaching it triggers a flush.
        ``0`` means unbounded (never flush mid-run).
    record_cost:
        CPU seconds to format and store one record.
    flush_cost:
        CPU seconds one capacity flush stalls the process.
    """

    __slots__ = ("log", "capacity", "record_cost", "flush_cost", "_since_flush", "flushes")

    def __init__(
        self,
        capacity: int = 0,
        record_cost: float = 3.0e-8,
        flush_cost: float = 5.0e-3,
    ) -> None:
        if capacity < 0 or record_cost < 0 or flush_cost < 0:
            raise ConfigurationError("buffer parameters must be non-negative")
        self.log = EventLog()
        self.capacity = capacity
        self.record_cost = record_cost
        self.flush_cost = flush_cost
        self._since_flush = 0
        self.flushes = 0

    def append(
        self, timestamp: float, etype: EventType, a: int = 0, b: int = 0, c: int = 0, d: int = 0
    ) -> float:
        """Record one event; return the CPU time the append cost."""
        self.log.append(timestamp, etype, a, b, c, d)
        cost = self.record_cost
        self._since_flush += 1
        if self.capacity and self._since_flush >= self.capacity:
            self._since_flush = 0
            self.flushes += 1
            cost += self.flush_cost
        return cost

    def append_batch(self, timestamps, etypes, a, b, c, d) -> float:
        """Record N events at once; return the total CPU time charged.

        Costs match N scalar :meth:`append` calls exactly: every record
        charges ``record_cost`` and every capacity boundary crossed
        mid-batch charges one ``flush_cost`` (and increments
        :attr:`flushes`), starting from the current fill level.
        """
        n = len(timestamps)
        self.log.extend(timestamps, etypes, a, b, c, d)
        cost = n * self.record_cost
        if self.capacity:
            flushed = (self._since_flush + n) // self.capacity
            self._since_flush = (self._since_flush + n) % self.capacity
            self.flushes += flushed
            cost += flushed * self.flush_cost
        else:
            self._since_flush += n
        return cost

    def __len__(self) -> int:
        return len(self.log)
