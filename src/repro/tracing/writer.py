"""Trace serialization.

Two formats, both self-describing and round-trip safe:

* ``.npz`` (default) — one compressed numpy archive holding the six
  columns of every rank plus JSON-encoded metadata; compact and fast,
  the moral equivalent of a binary OTF trace;
* ``.jsonl`` — one JSON object per line (header, then events); slow but
  greppable, for debugging and interchange.

The format is chosen by file extension in :func:`write_trace` /
:func:`repro.tracing.reader.read_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.tracing.events import EventType
from repro.tracing.trace import Trace

__all__ = ["write_trace", "write_trace_dir", "trace_to_jsonl", "FORMAT_VERSION"]

#: Bumped on any incompatible layout change; checked by the reader.
FORMAT_VERSION = 1


def write_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Serialize ``trace`` to ``path`` (.npz or .jsonl by extension)."""
    path = Path(path)
    if path.suffix == ".npz":
        _write_npz(trace, path)
    elif path.suffix == ".jsonl":
        _write_jsonl(trace, path)
    else:
        raise TraceFormatError(
            f"unknown trace extension {path.suffix!r} (use .npz or .jsonl; "
            "for an out-of-core shard directory use "
            "repro.tracing.store.write_sharded_trace)"
        )
    return path


def _write_npz(trace: Trace, path: Path) -> None:
    payload: dict[str, np.ndarray] = {}
    header = {
        "version": FORMAT_VERSION,
        "ranks": trace.ranks,
        "meta": _jsonable_meta(trace.meta),
    }
    payload["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    for rank in trace.ranks:
        log = trace.logs[rank]
        payload[f"r{rank}_ts"] = log.timestamps
        payload[f"r{rank}_et"] = log.etypes
        payload[f"r{rank}_a"] = log.a
        payload[f"r{rank}_b"] = log.b
        payload[f"r{rank}_c"] = log.c
        payload[f"r{rank}_d"] = log.d
    np.savez_compressed(path, **payload)


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize ``trace`` to the ``.jsonl`` format as one string.

    The encoding is canonical: the same trace always yields the same
    bytes (floats round-trip exactly through ``repr``), which is what
    lets the correction service hand a corrected trace over HTTP
    byte-identical to the CLI writing the same trace to disk.
    """
    lines = [
        json.dumps(
            {
                "kind": "header",
                "version": FORMAT_VERSION,
                "ranks": trace.ranks,
                "meta": _jsonable_meta(trace.meta),
            }
        )
    ]
    for rank in trace.ranks:
        log = trace.logs[rank]
        ts, et = log.timestamps, log.etypes
        a, b, c, d = log.a, log.b, log.c, log.d
        for i in range(len(log)):
            lines.append(
                json.dumps(
                    {
                        "kind": "event",
                        "rank": rank,
                        "ts": float(ts[i]),
                        "type": EventType(int(et[i])).name,
                        "a": int(a[i]),
                        "b": int(b[i]),
                        "c": int(c[i]),
                        "d": int(d[i]),
                    }
                )
            )
    return "\n".join(lines) + "\n"


def _write_jsonl(trace: Trace, path: Path) -> None:
    path.write_text(trace_to_jsonl(trace), encoding="utf-8")


def write_trace_dir(trace: Trace, directory: Union[str, Path]) -> Path:
    """Serialize one file per rank plus an anchor, OTF-style.

    Real tracing back-ends write each rank's stream to its own file so
    ranks can flush independently and analyses can read subsets; this
    mirrors that layout::

        <dir>/anchor.json          # version, ranks, metadata
        <dir>/rank_<r>.npz         # that rank's six columns

    Counterpart: :func:`repro.tracing.reader.read_trace_dir`, which can
    also load a *subset* of ranks.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    anchor = {
        "version": FORMAT_VERSION,
        "ranks": trace.ranks,
        "meta": _jsonable_meta(trace.meta),
    }
    (directory / "anchor.json").write_text(json.dumps(anchor, indent=1), encoding="utf-8")
    for rank in trace.ranks:
        log = trace.logs[rank]
        np.savez_compressed(
            directory / f"rank_{rank}.npz",
            ts=log.timestamps, et=log.etypes,
            a=log.a, b=log.b, c=log.c, d=log.d,
        )
    return directory


def _jsonable_meta(meta: dict) -> dict:
    """Best-effort conversion of metadata values to JSON-encodable form."""
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
            out[key] = value
        except TypeError:
            if isinstance(value, np.ndarray):
                out[key] = value.tolist()
            elif isinstance(value, (list, tuple)):
                out[key] = [getattr(v, "__dict__", str(v)) if not _is_plain(v) else v for v in value]
            else:
                out[key] = str(value)
    return out


def _is_plain(v) -> bool:
    return isinstance(v, (str, int, float, bool, type(None)))
