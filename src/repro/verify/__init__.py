"""Differential verification: adversarial fuzzing against named oracles.

The subsystem has four layers, designed to be used independently:

* :mod:`repro.verify.cases` — deterministic builders turning pure-data
  :class:`~repro.verify.cases.CaseSpec` scenarios into traces with
  ground truth;
* :mod:`repro.verify.strategies` — composable hypothesis strategies
  over specs (drift-jump clocks, NTP step storms, zero-latency edges,
  degenerate collectives, mixed MPI+POMP streams), exported for reuse
  by the test suite;
* :mod:`repro.verify.oracles` — the invariant catalog: every global
  guarantee of the library as a named, machine-checkable oracle;
* :mod:`repro.verify.campaigns` / :mod:`repro.verify.corpus` — fuzz
  campaigns that shrink failures to minimal specs and serialize them
  into a replayed-forever corpus (``tests/corpus/``).

CLI: ``python -m repro.cli verify --campaign smoke``.
"""

from repro.verify.campaigns import CAMPAIGNS, Campaign, CampaignResult, run_campaign
from repro.verify.cases import BUILDERS, CaseSpec, TraceCase, build_case
from repro.verify.corpus import CorpusEntry, iter_corpus, replay_corpus, save_failure
from repro.verify.oracles import ORACLES, Oracle, OracleViolation, check_case
from repro.verify.strategies import STRATEGIES, adversarial_specs

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "run_campaign",
    "BUILDERS",
    "CaseSpec",
    "TraceCase",
    "build_case",
    "CorpusEntry",
    "iter_corpus",
    "replay_corpus",
    "save_failure",
    "ORACLES",
    "Oracle",
    "OracleViolation",
    "check_case",
    "STRATEGIES",
    "adversarial_specs",
]
