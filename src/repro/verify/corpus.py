"""The shrunken-failure corpus: serialized minimal cases replayed forever.

When a fuzz campaign finds an invariant violation, hypothesis shrinks it
to a minimal :class:`~repro.verify.cases.CaseSpec`; this module writes
that spec (plus the built trace, as a golden ``.npz`` sidecar) into a
corpus directory.  ``tests/corpus/`` is the committed instance: tier-1
replays every entry on every run, so a once-found bug can never silently
return — the regression test *is* the minimal reproducing input.

Entry layout::

    <oracle>__<digest12>.json        # {"schema": 1, "oracle", "spec", ...}
    <oracle>__<digest12>.trace.npz   # golden trace (trace kinds only)

Replay rebuilds the case from the spec (builders are deterministic),
re-runs the recorded oracle, and — when a golden trace is present —
asserts the rebuilt trace still matches it bit for bit, so accidental
builder drift is caught too.  Intentional builder changes require
regenerating the affected goldens (see docs/testing.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.tracing.reader import read_trace
from repro.tracing.writer import write_trace
from repro.verify.cases import CaseSpec, build_case

__all__ = [
    "CorpusEntry",
    "save_failure",
    "iter_corpus",
    "replay_entry",
    "replay_corpus",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One serialized minimal failure."""

    path: Path
    oracle: str
    spec: CaseSpec
    message: str = ""
    trace_path: Optional[Path] = None

    @property
    def name(self) -> str:
        return self.path.stem


def _digest(oracle: str, spec: CaseSpec) -> str:
    payload = f"{oracle}:{spec.to_json()}".encode()
    return hashlib.sha256(payload).hexdigest()[:12]


def save_failure(
    corpus_dir: Union[str, Path],
    oracle: str,
    spec: CaseSpec,
    message: str = "",
) -> CorpusEntry:
    """Serialize one shrunken failure into ``corpus_dir``; idempotent."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{oracle}__{_digest(oracle, spec)}"
    path = corpus_dir / f"{stem}.json"
    trace_path: Optional[Path] = None

    case = build_case(spec)
    if case.trace is not None:
        trace_path = corpus_dir / f"{stem}.trace.npz"
        write_trace(case.trace, trace_path)

    payload = {
        "schema": SCHEMA_VERSION,
        "oracle": oracle,
        "spec": {"kind": spec.kind, "params": spec.params},
        "message": message.splitlines()[0][:500] if message else "",
        "trace": trace_path.name if trace_path else None,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return CorpusEntry(path=path, oracle=oracle, spec=spec,
                       message=payload["message"], trace_path=trace_path)


def iter_corpus(corpus_dir: Union[str, Path]) -> list[CorpusEntry]:
    """Load every entry of a corpus directory (sorted by file name)."""
    corpus_dir = Path(corpus_dir)
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported corpus schema {payload.get('schema')!r}"
            )
        trace_name = payload.get("trace")
        trace_path = corpus_dir / trace_name if trace_name else None
        entries.append(CorpusEntry(
            path=path,
            oracle=payload["oracle"],
            spec=CaseSpec(kind=payload["spec"]["kind"], params=payload["spec"]["params"]),
            message=payload.get("message", ""),
            trace_path=trace_path,
        ))
    return entries


def replay_entry(entry: CorpusEntry) -> None:
    """Rebuild the case and re-check its oracle; raises on violation."""
    from repro.verify.oracles import ORACLES, OracleViolation

    case = build_case(entry.spec)
    if entry.trace_path is not None and entry.trace_path.exists():
        golden = read_trace(entry.trace_path)
        if case.trace is None:
            raise OracleViolation(f"{entry.name}: golden trace but kind has none")
        for rank in golden.ranks:
            a = case.trace.logs[rank].timestamps
            b = golden.logs[rank].timestamps
            if not np.array_equal(a, b):
                raise OracleViolation(
                    f"{entry.name}: rebuilt trace diverged from the golden "
                    f"(rank {rank}); builder changed — regenerate the corpus "
                    "entry if intentional"
                )
    try:
        oracle = ORACLES[entry.oracle]
    except KeyError:
        raise ConfigurationError(
            f"{entry.path}: unknown oracle {entry.oracle!r}"
        ) from None
    oracle.check(case)


def replay_corpus(corpus_dir: Union[str, Path]) -> list[tuple[CorpusEntry, Optional[str]]]:
    """Replay every entry; returns (entry, error-message-or-None) pairs."""
    results = []
    for entry in iter_corpus(corpus_dir):
        try:
            replay_entry(entry)
            results.append((entry, None))
        except AssertionError as exc:
            results.append((entry, str(exc)))
    return results
