"""Deterministic adversarial test-case builders for the verify subsystem.

A :class:`CaseSpec` is a *pure-data* description of one adversarial
scenario — a kind tag plus JSON-able parameters.  Builders turn a spec
into a concrete :class:`TraceCase` (an event trace plus the ground
truth it was generated from) with **no randomness**: the same spec
always produces bit-identical arrays.  That determinism is what makes
shrunken fuzz failures replayable forever from `tests/corpus/`.

The clock model per rank is the paper's error taxonomy in miniature:

* a start offset and a constant drift rate (Section III.a);
* *drift jumps* — rate changes at given true times (temperature
  excursions, Fig. 3's non-constant drifts);
* *NTP-style steps* — instantaneous offset changes, possibly negative,
  which make recorded timestamps non-monotone (the "time adjustments"
  the paper's Section III.c warns about).

Trace kinds compose point-to-point messages, every collective flavor
(including degenerate single-member instances and zero-skew "identical
timestamp" instances), and POMP parallel regions into one stream; true
event times always respect causality (a receive never truly precedes
its send), so the happened-before graph is acyclic by construction and
every clock-condition violation in the *recorded* timestamps is
attributable to the injected clock errors — exactly the situation the
synchronization algorithms exist to repair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.tracing.events import CollectiveOp, EventLog, EventType
from repro.tracing.trace import Trace

__all__ = [
    "CaseSpec",
    "TraceCase",
    "BUILDERS",
    "BATCH_WORKLOADS",
    "build_case",
    "clock_error",
    "grid_probe_job",
]

#: Instance ids of POMP regions start here so they never collide with
#: collective instance ids inside one builder (cosmetic; the event
#: types already disambiguate them).
_POMP_INSTANCE_BASE = 10_000


@dataclass(frozen=True)
class CaseSpec:
    """One adversarial scenario as pure data (JSON round-trippable)."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"kind": self.kind, "params": self.params}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CaseSpec":
        payload = json.loads(text)
        return cls(kind=payload["kind"], params=payload["params"])


@dataclass
class TraceCase:
    """A built scenario: the trace plus the ground truth behind it.

    Attributes
    ----------
    spec:
        The spec this case was built from.
    trace:
        The event trace (``None`` for unit kinds like quantization).
    true_times:
        Per-rank true event times aligned with each log, when the kind
        has a trace.
    lmin:
        The minimum-latency floor the scenario was generated under.
    tags:
        Capability tags oracles match their preconditions against
        (e.g. ``trace``, ``truth``, ``monotone``, ``affine``, ``pomp``).
    """

    spec: CaseSpec
    trace: Optional[Trace] = None
    true_times: Optional[dict[int, np.ndarray]] = None
    lmin: float = 0.0
    tags: frozenset[str] = frozenset()


# ----------------------------------------------------------------------
# Clock error model
# ----------------------------------------------------------------------
def clock_error(profile: dict[str, Any], t: np.ndarray) -> np.ndarray:
    """Accumulated clock error of one rank at true times ``t``.

    ``profile`` holds ``offset``, ``rate``, ``jumps`` (list of
    ``[t, d_rate]`` drift-rate changes) and ``steps`` (list of
    ``[t, d_offset]`` instantaneous NTP-style steps, sign free).
    """
    t = np.asarray(t, dtype=np.float64)
    err = float(profile.get("offset", 0.0)) + float(profile.get("rate", 0.0)) * t
    for tj, d_rate in profile.get("jumps", []):
        err = err + float(d_rate) * np.maximum(t - float(tj), 0.0)
    for ts_, d_off in profile.get("steps", []):
        err = err + float(d_off) * (t >= float(ts_))
    return err


def _profile_is_affine(profile: dict[str, Any]) -> bool:
    return not profile.get("jumps") and not profile.get("steps")


# ----------------------------------------------------------------------
# Event-stream assembly
# ----------------------------------------------------------------------
class _Stream:
    """Accumulates (true_time, seq, event) tuples per rank.

    The global ``seq`` counter breaks true-time ties deterministically
    and — because constraint sources (sends, collective enters, forks,
    barrier enters) are always appended before the events they
    constrain — guarantees the happened-before graph is acyclic even
    when true latencies are exactly zero.
    """

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ConfigurationError("a trace case needs at least one rank")
        self.events: dict[int, list[tuple[float, int, int, int, int, int, int]]] = {
            r: [] for r in range(nranks)
        }
        self.nranks = nranks
        self._seq = 0

    def add(self, rank: int, t: float, etype: EventType, a=0, b=0, c=0, d=0) -> None:
        rank = int(rank) % self.nranks
        self.events[rank].append(
            (float(t), self._seq, int(etype), int(a), int(b), int(c), int(d))
        )
        self._seq += 1

    def messages(self, messages: list) -> None:
        for mid, entry in enumerate(messages):
            src, dst, t_send, latency = entry
            src = int(src) % self.nranks
            dst = int(dst) % self.nranks
            if src == dst:
                dst = (dst + 1) % self.nranks
            t_send = float(t_send)
            latency = max(float(latency), 0.0)  # true time respects causality
            self.add(src, t_send, EventType.SEND, a=dst, b=0, c=64, d=mid)
            self.add(dst, t_send + latency, EventType.RECV, a=src, b=0, c=64, d=mid)

    def collectives(self, collectives: list) -> None:
        for instance, coll in enumerate(collectives):
            op = int(coll["op"]) % len(CollectiveOp)
            members = sorted({int(m) % self.nranks for m in coll["members"]})
            if not members:
                continue
            root = members[int(coll.get("root", 0)) % len(members)]
            enters = [float(x) for x in coll.get("enters", [])]
            exits = [float(x) for x in coll.get("exits", [])]
            # Pad/truncate per-member times to the member count.
            base = enters[0] if enters else 0.0
            enters = (enters + [base] * len(members))[: len(members)]
            exits = (exits + [base] * len(members))[: len(members)]
            # True exits never precede the last true enter: the
            # operation completes only after everyone arrived.
            floor = max(enters)
            size = len(members)
            for rank, t in zip(members, enters):
                self.add(rank, t, EventType.COLL_ENTER, a=op, b=root, c=size, d=instance)
            for rank, t in zip(members, exits):
                self.add(rank, max(t, floor), EventType.COLL_EXIT,
                         a=op, b=root, c=size, d=instance)

    def pomp_regions(self, regions: list) -> None:
        for idx, region in enumerate(regions):
            instance = _POMP_INSTANCE_BASE + idx
            master = int(region["master"]) % self.nranks
            threads = sorted({int(r) % self.nranks for r in region.get("threads", [])} | {master})
            t0 = float(region["t0"])
            span = max(float(region.get("t1", t0)) - t0, 1e-6)
            skews = [float(s) for s in region.get("skews", [])]
            skews = (skews + [0.0] * len(threads))[: len(threads)]

            def stage(base: float, width: float, salt: int) -> list[float]:
                # Deterministic per-thread placement inside a stage
                # window; skew 0 collapses a stage to identical times.
                return [
                    t0 + span * (base + width * ((s * (salt + 1)) % 1.0))
                    for s in skews
                ]

            region_id, team = idx, len(threads)
            self.add(master, t0, EventType.OMP_FORK, a=region_id, b=team, d=instance)
            for rank, t in zip(threads, stage(0.05, 0.20, 0)):
                self.add(rank, t, EventType.OMP_PAR_ENTER, a=region_id, b=team, d=instance)
            if region.get("barrier", True):
                for rank, t in zip(threads, stage(0.30, 0.20, 1)):
                    self.add(rank, t, EventType.OMP_BARRIER_ENTER,
                             a=region_id, b=team, d=instance)
                # Barrier exits start at 0.55*span > every enter
                # (<= 0.50*span): true execution overlaps, Fig. 2c.
                for rank, t in zip(threads, stage(0.55, 0.15, 2)):
                    self.add(rank, t, EventType.OMP_BARRIER_EXIT,
                             a=region_id, b=team, d=instance)
            for rank, t in zip(threads, stage(0.75, 0.15, 3)):
                self.add(rank, t, EventType.OMP_PAR_EXIT, a=region_id, b=team, d=instance)
            self.add(master, t0 + span, EventType.OMP_JOIN, a=region_id, b=team, d=instance)

    def locals_(self, entries: list) -> None:
        for rank, t in entries:
            self.add(rank, t, EventType.ENTER, a=1)


def _assemble(spec: CaseSpec, stream: _Stream, profiles: list, lmin: float,
              base_tags: set[str]) -> TraceCase:
    logs: dict[int, EventLog] = {}
    true_times: dict[int, np.ndarray] = {}
    monotone = True
    for rank in range(stream.nranks):
        rows = sorted(stream.events[rank])  # (true_time, seq) order
        t_true = np.array([r[0] for r in rows], dtype=np.float64)
        profile = profiles[rank % len(profiles)] if profiles else {}
        recorded = t_true + clock_error(profile, t_true)
        cols = np.array([r[2:] for r in rows], dtype=np.int64).reshape(len(rows), 5)
        logs[rank] = EventLog.from_arrays(
            recorded, cols[:, 0], cols[:, 1], cols[:, 2], cols[:, 3], cols[:, 4]
        )
        true_times[rank] = t_true
        if recorded.size > 1 and np.any(np.diff(recorded) < 0):
            monotone = False
    tags = set(base_tags) | {"trace", "truth"}
    if monotone:
        tags.add("monotone")
    if all(_profile_is_affine(p) for p in profiles):
        tags.add("affine")
    return TraceCase(
        spec=spec,
        trace=Trace(logs, meta={"verify_case": spec.kind}),
        true_times=true_times,
        lmin=float(lmin),
        tags=frozenset(tags),
    )


# ----------------------------------------------------------------------
# Builders (one per spec kind)
# ----------------------------------------------------------------------
def _build_stream_case(spec: CaseSpec) -> TraceCase:
    p = spec.params
    nranks = int(p.get("nranks", 2))
    profiles = p.get("profiles") or [{} for _ in range(nranks)]
    stream = _Stream(nranks)
    stream.messages(p.get("messages", []))
    stream.collectives(p.get("collectives", []))
    stream.pomp_regions(p.get("pomp", []))
    stream.locals_(p.get("locals", []))
    tags = {spec.kind}
    if p.get("messages"):
        tags.add("messages")
    if p.get("collectives"):
        tags.add("collectives")
    if p.get("pomp"):
        tags.add("pomp")
    return _assemble(spec, stream, profiles, float(p.get("lmin", 0.0)), tags)


def _build_streaming_case(spec: CaseSpec) -> TraceCase:
    """Stream-content case; optionally strips match ids (FIFO matching)."""
    case = _build_stream_case(spec)
    if spec.params.get("strip_ids"):
        logs = {}
        for rank, log in case.trace.logs.items():
            d = log.d.copy()
            message = (log.etypes == int(EventType.SEND)) | (
                log.etypes == int(EventType.RECV)
            )
            d[message] = -1
            logs[rank] = EventLog.from_arrays(
                log.timestamps, log.etypes, log.a, log.b, log.c, d
            )
        case.trace = Trace(logs, dict(case.trace.meta))
    return case


def _build_clock_quantization(spec: CaseSpec) -> TraceCase:
    p = spec.params
    if float(p.get("resolution", 0.0)) < 0:
        raise ConfigurationError("resolution must be non-negative")
    return TraceCase(spec=spec, tags=frozenset({"clock", "unit"}))


def _build_module_hints(spec: CaseSpec) -> TraceCase:
    if "module" not in spec.params or "qualname" not in spec.params:
        raise ConfigurationError("module_hints needs 'module' and 'qualname'")
    return TraceCase(spec=spec, tags=frozenset({"hints", "unit"}))


def _build_grid(spec: CaseSpec) -> TraceCase:
    return TraceCase(spec=spec, tags=frozenset({"grid", "unit"}))


def _build_grid_ws(spec: CaseSpec) -> TraceCase:
    p = spec.params
    if not p.get("seeds"):
        raise ConfigurationError("grid_ws cases need at least one seed")
    if int(p.get("batch_size", 1)) < 1:
        raise ConfigurationError("grid_ws batch_size must be >= 1")
    return TraceCase(spec=spec, tags=frozenset({"grid_ws", "unit"}))


def _build_stats_coverage(spec: CaseSpec) -> TraceCase:
    p = spec.params
    if int(p.get("n", 0)) < 2:
        raise ConfigurationError("stats_coverage needs n >= 2 (t CI is undefined)")
    if int(p.get("trials", 0)) < 1:
        raise ConfigurationError("stats_coverage needs at least one trial")
    if not 0.0 < float(p.get("level", 0.95)) < 1.0:
        raise ConfigurationError("confidence level must be in (0, 1)")
    return TraceCase(spec=spec, tags=frozenset({"stats", "coverage", "unit"}))


def _build_stats_bootstrap(spec: CaseSpec) -> TraceCase:
    p = spec.params
    if not p.get("values"):
        raise ConfigurationError("stats_bootstrap needs at least one value")
    if not 0.0 < float(p.get("level", 0.95)) < 1.0:
        raise ConfigurationError("confidence level must be in (0, 1)")
    return TraceCase(spec=spec, tags=frozenset({"stats", "bootstrap", "unit"}))


#: Workloads the batch fast path knows how to plan (kept in sync with
#: the ``batch_plan`` attachments in :mod:`repro.workloads`).
BATCH_WORKLOADS = (
    "sparse", "pingpong", "collective_timing", "pop", "smg2000", "sweep3d",
)


def _build_batch(spec: CaseSpec) -> TraceCase:
    p = spec.params
    if p.get("workload") not in BATCH_WORKLOADS:
        raise ConfigurationError(
            f"batch case needs a workload in {BATCH_WORKLOADS}; "
            f"got {p.get('workload')!r}"
        )
    if int(p.get("nranks", 2)) < 2:
        raise ConfigurationError("batch cases need at least two ranks")
    return TraceCase(spec=spec, tags=frozenset({"batch", "unit"}))


def grid_probe_job(seed: int, n: int) -> list[float]:
    """Module-level job for run_grid identity checks (picklable)."""
    from repro.rng import RngFabric

    gen = RngFabric(seed=int(seed)).generator("verify-grid")
    return [float(x) for x in gen.standard_normal(int(n))]


#: Spec kind -> builder.  ``p2p``/``collectives``/``pomp``/``mixed``
#: share one stream builder; the kind tag records the generator family.
BUILDERS: dict[str, Callable[[CaseSpec], TraceCase]] = {
    "p2p": _build_stream_case,
    "collectives": _build_stream_case,
    "pomp": _build_stream_case,
    "mixed": _build_stream_case,
    "streaming": _build_streaming_case,
    "clock_quantization": _build_clock_quantization,
    "module_hints": _build_module_hints,
    "grid": _build_grid,
    "grid_ws": _build_grid_ws,
    "stats_coverage": _build_stats_coverage,
    "stats_bootstrap": _build_stats_bootstrap,
    "batch": _build_batch,
}


def build_case(spec: CaseSpec) -> TraceCase:
    """Deterministically build the :class:`TraceCase` for ``spec``."""
    try:
        builder = BUILDERS[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown case kind {spec.kind!r}; known: {sorted(BUILDERS)}"
        ) from None
    return builder(spec)
