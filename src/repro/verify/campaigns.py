"""Fuzz campaigns: strategies x oracles, with shrinking and serialization.

A :class:`Campaign` is a named bundle of probes; each probe pairs one
spec strategy with one oracle.  :func:`run_campaign` fuzzes every probe
independently (so a failure is attributed to exactly one invariant),
lets hypothesis shrink any counterexample to a minimal spec, and
serializes the shrunken failure into the corpus directory for permanent
replay.  Campaigns are deterministic for a given seed — no example
database is used, so CI and local runs see the same cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import hypothesis
from hypothesis import HealthCheck, Phase, given
from hypothesis import settings as hyp_settings

from repro.errors import ConfigurationError
from repro.verify import strategies as _strategies
from repro.verify.cases import CaseSpec, build_case
from repro.verify.corpus import save_failure
from repro.verify.oracles import ORACLES

__all__ = [
    "Campaign",
    "CAMPAIGNS",
    "CampaignResult",
    "ProbeFailure",
    "run_campaign",
]

#: (strategy name, oracle name) — one fuzz loop per pair.
Probe = tuple[str, str]


@dataclass(frozen=True)
class Campaign:
    """A named bundle of fuzz probes."""

    name: str
    description: str
    probes: tuple[Probe, ...]
    #: Per-probe ceiling on examples regardless of --max-examples
    #: (process-spawning probes like run_grid stay cheap).
    example_cap: int = 1_000_000


def _cross(strategy: str, oracles: tuple[str, ...]) -> tuple[Probe, ...]:
    return tuple((strategy, oracle) for oracle in oracles)


_TRACE_CORE = (
    "clock_condition_post_clc",
    "happened_before_preserved",
    "kernel_reference_identity",
    "trace_roundtrip",
)

CAMPAIGNS: dict[str, Campaign] = {}


def _campaign(name: str, description: str, probes: tuple[Probe, ...],
              example_cap: int = 1_000_000) -> None:
    CAMPAIGNS[name] = Campaign(name, description, probes, example_cap)


_campaign(
    "smoke",
    "quick cross-section: one probe per invariant family",
    _cross("adversarial", _TRACE_CORE) + (("quantization", "clock_quantization"),),
)
_campaign(
    "clc",
    "deep CLC invariants: condition, ordering, idempotence, kernels",
    _cross("adversarial", _TRACE_CORE + ("correction_idempotence",))
    + _cross("mixed", ("custom_dependency_identity",)),
)
_campaign(
    "interpolation",
    "interpolation exactness and error bounds against ground truth",
    _cross("p2p", ("interpolation_affine_exact", "interpolation_residual_bound",
                   "interpolation_dense_knots_exact")),
)
_campaign(
    "pomp",
    "POMP regions: post-correction semantics and the extension point",
    _cross("pomp", ("pomp_post_clc", "custom_dependency_identity",
                    "clock_condition_post_clc", "kernel_reference_identity")),
)
_campaign(
    "io",
    "trace serialization round-trips across all three formats",
    _cross("adversarial", ("trace_roundtrip",)),
)
_campaign(
    "clock",
    "timer quantization grid semantics",
    (("quantization", "clock_quantization"),),
)
_campaign(
    "batch",
    "batch trace generator vs the discrete-event engine, bit for bit",
    (("batch", "batch_matches_engine"),),
    # Every example is two full simulator runs; keep the default cheap.
    example_cap=25,
)
_campaign(
    "telemetry",
    "telemetry inertness: recording on vs off is bit-identical",
    (("batch", "telemetry_is_inert"),),
    # Two full simulator runs per example, like the batch campaign.
    example_cap=25,
)
_campaign(
    "streaming",
    "out-of-core sharded-trace kernels vs the in-memory kernels, bit "
    "for bit, plus shard-store round-trips",
    (("streaming", "streamed_matches_inmemory"),
     ("streaming", "sharded_roundtrip")),
    # Each example runs the CLC four times (two configs x two paths);
    # keep the default commensurate with the batch campaign.
    example_cap=50,
)
_campaign(
    "runner",
    "serial == parallel run_grid identity and typing resolution",
    (("unit", "run_grid_identity"), ("unit", "module_type_hints")),
    example_cap=5,
)
_campaign(
    "stats",
    "repro.stats guarantees: t-CI coverage at the nominal rate, seeded "
    "bootstrap determinism, and work-stealing run_grid identity",
    (("stats", "ci_contains_truth_at_nominal_rate"),
     ("stats", "bootstrap_deterministic_under_seed"),
     ("grid_ws", "grid_identity_under_work_stealing")),
    # Coverage probes run a few hundred Monte-Carlo trials each and the
    # grid probes spawn worker processes; keep the default modest.
    example_cap=10,
)
_campaign(
    "mutation",
    "probes used by benchmarks/check_oracles.py to catch injected mutants",
    _cross("p2p", ("clock_condition_post_clc", "kernel_reference_identity"))
    + _cross("mixed", ("kernel_reference_identity",))
    + (("quantization", "clock_quantization"),),
)
_campaign(
    "full",
    "everything: all trace, interpolation, io, clock, runner and stats "
    "probes",
    CAMPAIGNS["clc"].probes
    + CAMPAIGNS["interpolation"].probes
    + CAMPAIGNS["pomp"].probes
    + (("quantization", "clock_quantization"),)
    + CAMPAIGNS["runner"].probes
    + CAMPAIGNS["stats"].probes,
    example_cap=1_000_000,
)


@dataclass
class ProbeFailure:
    """One invariant violation, shrunk to its minimal spec."""

    campaign: str
    strategy: str
    oracle: str
    spec: CaseSpec
    message: str
    corpus_path: Optional[str] = None


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    name: str
    probes_run: int = 0
    examples: int = 0
    checks: int = 0
    failures: list[ProbeFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        state = "PASS" if self.passed else f"FAIL ({len(self.failures)} probes)"
        return (
            f"campaign {self.name}: {state} — {self.probes_run} probes, "
            f"{self.examples} examples, {self.checks} oracle checks"
        )


def _fuzz_probe(strategy_name: str, oracle_name: str, max_examples: int,
                seed: int, counters: CampaignResult) -> Optional[tuple[CaseSpec, str]]:
    """Run one (strategy, oracle) fuzz loop; returns the shrunk failure."""
    strategy = _strategies.STRATEGIES[strategy_name]()
    oracle = ORACLES[oracle_name]
    # Hypothesis replays the minimal example last before raising, so the
    # holder ends up with exactly the shrunken spec.
    last: dict[str, CaseSpec] = {}

    @hyp_settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=False,
        print_blob=False,
        report_multiple_bugs=False,
        phases=(Phase.generate, Phase.shrink),
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
            HealthCheck.data_too_large,
            HealthCheck.large_base_example,
        ],
    )
    @hypothesis.seed(seed)
    @given(spec=strategy)
    def probe(spec: CaseSpec) -> None:
        counters.examples += 1
        last["spec"] = spec
        case = build_case(spec)
        if oracle.run(case):
            counters.checks += 1

    try:
        probe()
    except Exception as exc:
        # Library crashes count as failures too; only a failure of the
        # strategy itself (no spec drawn yet) propagates.
        if "spec" not in last:
            raise
        return last["spec"], f"{type(exc).__name__}: {exc}"
    return None


def run_campaign(
    name: str,
    max_examples: int = 50,
    corpus_dir: Union[str, None] = None,
    seed: int = 0,
    telemetry=None,
) -> CampaignResult:
    """Fuzz every probe of campaign ``name``.

    Failures are shrunk by hypothesis and, when ``corpus_dir`` is given,
    serialized there for permanent replay.  A
    :class:`repro.telemetry.TelemetryRecorder` collects per-probe spans
    plus ``verify.examples`` / ``verify.checks`` / ``verify.failures``
    counters.
    """
    from repro.telemetry import ensure_telemetry

    tele = ensure_telemetry(telemetry)
    try:
        campaign = CAMPAIGNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign {name!r}; known: {', '.join(sorted(CAMPAIGNS))}"
        ) from None
    if max_examples < 1:
        raise ConfigurationError("max_examples must be >= 1")

    result = CampaignResult(name=name)
    examples = min(max_examples, campaign.example_cap)
    with tele.span("verify.campaign", name=name, probes=len(campaign.probes)):
        for index, (strategy_name, oracle_name) in enumerate(campaign.probes):
            result.probes_run += 1
            with tele.span("verify.probe", strategy=strategy_name, oracle=oracle_name):
                failure = _fuzz_probe(
                    strategy_name, oracle_name, examples, seed + index, result
                )
            if failure is None:
                continue
            spec, message = failure
            record = ProbeFailure(
                campaign=name, strategy=strategy_name, oracle=oracle_name,
                spec=spec, message=message,
            )
            if corpus_dir is not None:
                entry = save_failure(corpus_dir, oracle_name, spec, message)
                record.corpus_path = str(entry.path)
            result.failures.append(record)
    if tele.enabled:
        tele.count("verify.examples", result.examples)
        tele.count("verify.checks", result.checks)
        tele.count("verify.failures", len(result.failures))
    return result
