"""Composable hypothesis strategies over :class:`~repro.verify.cases.CaseSpec`.

Every strategy draws *pure data* (the spec), never a built trace: the
shrinker then minimizes over plain lists and floats, and whatever it
lands on serializes straight into ``tests/corpus/``.  The strategies are
exported for reuse by the test suite (``tests/test_verify.py`` runs the
same generators tier-1 that the CLI fuzz campaigns run at scale).

Adversarial ingredients, per the verification charter:

* ``clock_profiles`` — drift-jump clocks and NTP step storms (steps may
  be negative, producing non-monotone recorded timestamps);
* ``p2p_specs`` — zero-latency edges and latency below the claimed
  ``l_min`` floor;
* ``collective_specs`` — degenerate collectives: single members,
  zero-skew identical timestamps, barrier storms, every flavor;
* ``pomp_specs`` / ``mixed_specs`` — POMP parallel regions alone and
  interleaved with MPI traffic in one stream.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.tracing.events import CollectiveOp
from repro.verify.cases import CaseSpec

__all__ = [
    "clock_profiles",
    "p2p_specs",
    "collective_specs",
    "pomp_specs",
    "mixed_specs",
    "quantization_specs",
    "batch_specs",
    "streaming_specs",
    "unit_specs",
    "stats_specs",
    "grid_ws_specs",
    "adversarial_specs",
    "STRATEGIES",
]


def _finite(lo: float, hi: float) -> st.SearchStrategy[float]:
    return st.floats(min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False)


_TIMES = _finite(0.0, 2.0)
_LMINS = st.sampled_from([0.0, 1e-6, 5e-4])


@st.composite
def clock_profiles(draw, allow_jumps: bool = True, allow_steps: bool = True,
                   max_jumps: int = 2, max_steps: int = 4):
    """One rank's clock-error profile (offset, rate, jumps, steps)."""
    profile = {
        "offset": draw(_finite(-5e-3, 5e-3)),
        "rate": draw(_finite(-2e-4, 2e-4)),
        "jumps": [],
        "steps": [],
    }
    if allow_jumps:
        profile["jumps"] = draw(st.lists(
            st.tuples(_TIMES, _finite(-5e-4, 5e-4)).map(list), max_size=max_jumps))
    if allow_steps:
        # NTP-style steps, deliberately sign-free: a negative step makes
        # the recorded clock run backwards (step *storm* at max_size).
        profile["steps"] = draw(st.lists(
            st.tuples(_TIMES, _finite(-2e-3, 2e-3)).map(list), max_size=max_steps))
    return profile


def _profile_list(draw, nranks: int, affine_bias: bool):
    if affine_bias and draw(st.booleans()):
        return [draw(clock_profiles(allow_jumps=False, allow_steps=False))
                for _ in range(nranks)]
    return [draw(clock_profiles()) for _ in range(nranks)]


def _messages(draw, nranks: int, max_messages: int):
    entries = draw(st.lists(
        st.tuples(
            st.integers(0, nranks - 1),          # src
            st.integers(1, max(nranks - 1, 1)),  # dst offset (never self)
            _TIMES,                              # true send time
            st.one_of(st.just(0.0), _finite(0.0, 1e-3)),  # true latency
        ),
        max_size=max_messages,
    ))
    return [[s, (s + k) % nranks, t, lat] for s, k, t, lat in entries]


def _locals(draw, nranks: int):
    return [[r, t] for r, t in draw(st.lists(
        st.tuples(st.integers(0, nranks - 1), _TIMES), max_size=4))]


@st.composite
def p2p_specs(draw, max_ranks: int = 4, max_messages: int = 10):
    """Point-to-point traffic under adversarial clocks."""
    nranks = draw(st.integers(2, max_ranks))
    return CaseSpec("p2p", {
        "nranks": nranks,
        "profiles": _profile_list(draw, nranks, affine_bias=True),
        "messages": _messages(draw, nranks, max_messages),
        "locals": _locals(draw, nranks),
        "lmin": draw(_LMINS),
    })


def _collective_entries(draw, nranks: int, max_collectives: int):
    @st.composite
    def one(idraw):
        op = idraw(st.sampled_from(sorted(int(o) for o in CollectiveOp)))
        # min_size=1 keeps degenerate single-member instances in play.
        members = idraw(st.lists(st.integers(0, nranks - 1),
                                 min_size=1, max_size=nranks, unique=True))
        t0 = idraw(_TIMES)
        # skew 0.0 -> every member enters/exits at the identical instant.
        skew = idraw(st.sampled_from([0.0, 1e-5, 2e-3]))
        enters = [t0 + skew * i for i in range(len(members))]
        exits = [t0 + skew * (len(members) + i) for i in range(len(members))]
        return {"op": op, "root": idraw(st.integers(0, nranks - 1)),
                "members": members, "enters": enters, "exits": exits}
    return draw(st.lists(one(), max_size=max_collectives))


@st.composite
def collective_specs(draw, max_ranks: int = 5, max_collectives: int = 6):
    """Collective storms: every flavor, degenerate shapes included."""
    nranks = draw(st.integers(2, max_ranks))
    return CaseSpec("collectives", {
        "nranks": nranks,
        "profiles": _profile_list(draw, nranks, affine_bias=False),
        "collectives": _collective_entries(draw, nranks, max_collectives),
        "messages": _messages(draw, nranks, 4),
        "lmin": draw(_LMINS),
    })


def _pomp_entries(draw, nranks: int, max_regions: int):
    @st.composite
    def one(idraw):
        master = idraw(st.integers(0, nranks - 1))
        threads = idraw(st.lists(st.integers(0, nranks - 1),
                                 min_size=1, max_size=nranks, unique=True))
        t0 = idraw(_TIMES)
        return {
            "master": master,
            "threads": threads,
            "t0": t0,
            "t1": t0 + idraw(_finite(1e-4, 0.5)),
            "skews": idraw(st.lists(_finite(0.0, 1.0), max_size=nranks)),
            "barrier": idraw(st.booleans()),
        }
    return draw(st.lists(one(), max_size=max_regions))


@st.composite
def pomp_specs(draw, max_ranks: int = 4, max_regions: int = 3):
    """POMP parallel regions (fork/join, implicit barriers)."""
    nranks = draw(st.integers(2, max_ranks))
    return CaseSpec("pomp", {
        "nranks": nranks,
        "profiles": _profile_list(draw, nranks, affine_bias=True),
        "pomp": _pomp_entries(draw, nranks, max_regions),
        "locals": _locals(draw, nranks),
        "lmin": draw(st.sampled_from([0.0, 1e-7])),
    })


@st.composite
def mixed_specs(draw, max_ranks: int = 4):
    """MPI messages + collectives + POMP regions in one event stream."""
    nranks = draw(st.integers(2, max_ranks))
    return CaseSpec("mixed", {
        "nranks": nranks,
        "profiles": _profile_list(draw, nranks, affine_bias=False),
        "messages": _messages(draw, nranks, 6),
        "collectives": _collective_entries(draw, nranks, 3),
        "pomp": _pomp_entries(draw, nranks, 2),
        "locals": _locals(draw, nranks),
        "lmin": draw(_LMINS),
    })


@st.composite
def quantization_specs(draw):
    """Timer-resolution grids, including reads near grid boundaries."""
    values = draw(st.lists(
        st.one_of(
            _finite(0.0, 2000.0),
            st.integers(0, 2000).map(float),
        ),
        min_size=1, max_size=12,
    ))
    if draw(st.booleans()):
        # The floor-overshoot regime: a nanosecond grid with
        # integer-valued reads whose ``value / resolution`` rounds up
        # across a cell boundary (15.0 / 1e-9 is the historical case).
        # Random reals essentially never land there, so half the
        # examples pin it explicitly.
        resolution, offset = 1e-9, 0.0
        values += draw(st.lists(
            st.sampled_from([15.0, 29.0, 30.0, 59.0, 61.0, 115.0]),
            min_size=1, max_size=3,
        ))
    else:
        resolution = draw(st.sampled_from([1e-9, 1e-6, 1e-3, 0.5]))
        offset = draw(_finite(-1e-3, 1e-3))
    return CaseSpec("clock_quantization", {
        "resolution": resolution,
        "offset": offset,
        "values": sorted(values),
    })


@st.composite
def batch_specs(draw):
    """Full-run engine-equivalence probes for the batch fast path.

    Draws a built-in workload, a timer technology, a placement and the
    run options that shape the event stream (tracing, offset
    measurement, trace-buffer flushes, MPI-region events).  The oracle
    runs the scenario under both engines and demands bit-identity;
    specs with initial offset measurement additionally expect the fast
    path to *engage* (the Cristian exchanges stagger the ranks, so none
    of the tie-based fallbacks can fire).
    """
    from repro.verify.cases import BATCH_WORKLOADS

    workload = draw(st.sampled_from(sorted(BATCH_WORKLOADS)))
    pinning = draw(st.sampled_from(["inter_node", "inter_chip", "inter_core"]))
    # Placement bounds come from the Xeon preset: 2 chips/node, 4
    # cores/chip, plenty of nodes.
    nranks = draw(st.integers(2, {"inter_chip": 2}.get(pinning, 4)))
    if workload == "sparse":
        shape = {
            "rounds": draw(st.integers(1, 5)),
            "density": draw(st.sampled_from([0.0, 0.25, 0.6])),
            "collective_every": draw(st.sampled_from([0, 2])),
        }
    elif workload in ("pingpong", "collective_timing"):
        shape = {
            "repeats": draw(st.integers(1, 6)),
            "nbytes": draw(st.sampled_from([0, 8, 1024])),
            "warmup": draw(st.integers(0, 2)),
        }
    elif workload == "pop":
        steps = draw(st.integers(1, 4))
        window = draw(st.one_of(st.none(), st.just([0, steps])))
        shape = {
            "steps": steps,
            "window": window,
            "reductions_per_step": draw(st.integers(0, 2)),
            "fast_forward": draw(st.booleans()),
        }
    elif workload == "smg2000":
        shape = {
            "cycles": draw(st.integers(1, 3)),
            "levels": draw(st.one_of(st.none(), st.integers(1, 2))),
            "pre_sleep": draw(st.sampled_from([0.0, 0.01])),
            "post_sleep": draw(st.sampled_from([0.0, 0.01])),
        }
    else:  # sweep3d
        shape = {"iterations": draw(st.integers(1, 3))}
    measure_offsets = draw(st.booleans())
    return CaseSpec("batch", {
        "workload": workload,
        "nranks": nranks,
        "pinning": pinning,
        "timer": draw(st.sampled_from([
            "tsc", "timebase", "rtc", "gettimeofday", "mpi_wtime", "cycle",
            "global",
        ])),
        "seed": draw(st.integers(0, 2**16)),
        "workload_seed": draw(st.integers(0, 2**16)),
        "tracing": draw(st.booleans()),
        "measure_offsets": measure_offsets,
        "sync_repeats": draw(st.integers(1, 4)),
        "mpi_regions": draw(st.booleans()),
        "trace_buffer_capacity": draw(st.sampled_from([0, 4])),
        # Piggybacked periodic synchronization (fires on the workloads
        # that issue collectives) and congestion-coupled latency — both
        # run batched end-to-end and must stay bit-identical.
        "periodic_sync_every": draw(st.sampled_from([0, 1, 2, 3])),
        "periodic_sync_repeats": draw(st.integers(1, 3)),
        "congestion_alpha": draw(st.sampled_from([0.0, 0.25, 1.0])),
        "congestion_capacity": draw(st.sampled_from([1, 4, 16])),
        "shape": shape,
        "expect_engaged": measure_offsets,
    })


@st.composite
def streaming_specs(draw, max_ranks: int = 4):
    """Sharded-trace equivalence probes for the out-of-core kernels.

    Draws mixed MPI traffic (messages + collectives + local events)
    under adversarial clocks, a shard size covering the degenerate
    grain (1), the smallest even/odd grains (2, 7) and the
    single-shard case (100000 > any drawn trace), and whether to strip
    match ids (forcing the FIFO matching path).  The oracle streams the
    CLC and the violation scan over the sharded store and demands
    bit-identity with the in-memory kernels.
    """
    nranks = draw(st.integers(2, max_ranks))
    return CaseSpec("streaming", {
        "nranks": nranks,
        "profiles": _profile_list(draw, nranks, affine_bias=False),
        "messages": _messages(draw, nranks, 8),
        "collectives": _collective_entries(draw, nranks, 3),
        "locals": _locals(draw, nranks),
        "lmin": draw(_LMINS),
        "shard_events": draw(st.sampled_from([1, 2, 7, 100_000])),
        "strip_ids": draw(st.booleans()),
    })


@st.composite
def unit_specs(draw):
    """Non-trace kinds: run_grid identity probes and typing resolution."""
    which = draw(st.sampled_from(["grid", "hints"]))
    if which == "grid":
        return CaseSpec("grid", {
            "seeds": draw(st.lists(st.integers(0, 2**16), min_size=1, max_size=4)),
            "n": draw(st.integers(1, 16)),
        })
    return CaseSpec("module_hints", {
        "module": draw(st.sampled_from([
            "repro.sim.engine", "repro.sync.clc", "repro.tracing.trace",
        ])),
        "qualname": "",
    })


@st.composite
def stats_specs(draw):
    """Probes for :mod:`repro.stats`: CI coverage and bootstrap identity.

    ``stats_coverage`` draws a Gaussian population (true mean known) and
    a Monte-Carlo trial count; the oracle checks that t-intervals cover
    the truth at no less than the nominal rate minus binomial slack.
    ``stats_bootstrap`` draws an explicit sample (ties and negative
    values included) and checks seeded-bootstrap determinism.
    """
    if draw(st.booleans()):
        return CaseSpec("stats_coverage", {
            "mu": draw(_finite(-10.0, 10.0)),
            "sigma": draw(st.sampled_from([0.1, 1.0, 25.0])),
            "n": draw(st.integers(2, 12)),
            "trials": draw(st.sampled_from([100, 200])),
            "level": draw(st.sampled_from([0.8, 0.9, 0.95])),
            "seed": draw(st.integers(0, 2**16)),
        })
    return CaseSpec("stats_bootstrap", {
        "values": draw(st.lists(
            st.one_of(_finite(-50.0, 50.0), st.sampled_from([0.0, 1.0, -1.0])),
            min_size=1, max_size=16,
        )),
        "level": draw(st.sampled_from([0.8, 0.9, 0.95, 0.99])),
        "resamples": draw(st.sampled_from([1, 50, 400])),
        "seed": draw(st.integers(0, 2**16)),
    })


@st.composite
def grid_ws_specs(draw):
    """Work-stealing ``run_grid`` identity probes.

    Unlike the plain ``grid`` kind, these pin the batched parallel path:
    enough jobs to fill several batches, an explicit ``batch_size`` that
    forces multi-job futures, and 2-3 workers so the stealing deques are
    actually contended.
    """
    njobs = draw(st.integers(1, 24))
    return CaseSpec("grid_ws", {
        "seeds": draw(st.lists(st.integers(0, 2**16),
                               min_size=njobs, max_size=njobs)),
        "n": draw(st.integers(1, 8)),
        "jobs": draw(st.sampled_from([2, 3])),
        "batch_size": draw(st.sampled_from([1, 2, 4])),
    })


def adversarial_specs() -> st.SearchStrategy[CaseSpec]:
    """The kitchen sink: any trace kind plus quantization probes."""
    return st.one_of(
        p2p_specs(), collective_specs(), pomp_specs(), mixed_specs(),
        quantization_specs(),
    )


#: Campaign-addressable strategy factories (no-arg callables).
STRATEGIES: dict[str, object] = {
    "p2p": p2p_specs,
    "collectives": collective_specs,
    "pomp": pomp_specs,
    "mixed": mixed_specs,
    "quantization": quantization_specs,
    "batch": batch_specs,
    "streaming": streaming_specs,
    "unit": unit_specs,
    "stats": stats_specs,
    "grid_ws": grid_ws_specs,
    "adversarial": adversarial_specs,
}
