"""The invariant catalog: every global guarantee as a named oracle.

Each :class:`Oracle` states one machine-checkable invariant of the
library — the paper's clock condition after CLC correction, preservation
of happened-before, correction idempotence, interpolation error bounds,
bit-identity between array kernels and their ``*_reference`` scalar
formulations, serial ≡ parallel ``run_grid`` identity, and trace I/O
round-trips.  Oracles declare the capability tags they *require* of a
:class:`~repro.verify.cases.TraceCase` (``trace``, ``truth``,
``monotone``, ...) and are skipped on cases that lack them, so one fuzz
stream exercises the whole catalog.

The ``assert_*`` helpers are exported for direct reuse by the test
suite: ``tests/test_schedule.py`` and
``tests/test_scalar_vector_consistency.py`` call the same code the fuzz
campaigns run, so an invariant is stated exactly once.
"""

from __future__ import annotations

import importlib
import inspect
import math
import tempfile
import typing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.clocks.base import Clock
from repro.clocks.drift import ConstantDrift
from repro.openmp.correction import pomp_clc, pomp_dependencies
from repro.sync.clc import (
    ClcResult,
    ControlledLogicalClock,
    naive_shift_correct,
    naive_shift_correct_reference,
)
from repro.sync.interpolation import ClockCorrection, linear_interpolation
from repro.sync.lamport import lamport_clocks, lamport_clocks_reference
from repro.sync.offset import OffsetMeasurement
from repro.sync.order import build_dependencies, replay_schedule
from repro.sync.replay import replay_correct
from repro.sync.vector import vector_clocks, vector_clocks_reference
from repro.sync.violations import scan_collectives, scan_messages, scan_pomp, scan_trace
from repro.tracing.reader import read_trace, read_trace_dir
from repro.tracing.trace import Trace
from repro.tracing.writer import write_trace, write_trace_dir
from repro.verify.cases import TraceCase, grid_probe_job

__all__ = [
    "Oracle",
    "OracleViolation",
    "ORACLES",
    "check_case",
    "assert_traces_identical",
    "assert_clc_matches_reference",
    "assert_naive_matches_reference",
    "assert_dependency_clc_matches_reference",
    "assert_logical_clocks_match_reference",
    "assert_topo_matches_replay",
    "assert_replay_matches_direct",
    "assert_scalar_matches_vector",
    "assert_batch_matches_engine",
    "assert_streamed_matches_inmemory",
]


class OracleViolation(AssertionError):
    """An invariant failed; the message names the oracle and the scene."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise OracleViolation(message)


@dataclass(frozen=True)
class Oracle:
    """One named invariant with its applicability preconditions."""

    name: str
    description: str
    requires: frozenset[str]
    check: Callable[[TraceCase], None]

    def applies(self, case: TraceCase) -> bool:
        return self.requires <= case.tags

    def run(self, case: TraceCase) -> bool:
        """Check the invariant; returns False when skipped (tags)."""
        if not self.applies(case):
            return False
        self.check(case)
        return True


ORACLES: dict[str, Oracle] = {}


def oracle(name: str, description: str, requires: set[str]):
    def register(fn: Callable[[TraceCase], None]) -> Callable[[TraceCase], None]:
        ORACLES[name] = Oracle(name, description, frozenset(requires), fn)
        return fn
    return register


def check_case(case: TraceCase, names=None) -> list[str]:
    """Run every applicable oracle (or the named subset); returns those run."""
    ran = []
    for name in (names if names is not None else sorted(ORACLES)):
        if ORACLES[name].run(case):
            ran.append(name)
    return ran


# ----------------------------------------------------------------------
# Shared differential assertions (reused by the test suite)
# ----------------------------------------------------------------------
def assert_traces_identical(a: ClcResult, b: ClcResult, context: str = "",
                            check_stats: bool = True) -> None:
    """Two correction results must agree bit-for-bit (arrays and stats)."""
    _require(a.trace.logs.keys() == b.trace.logs.keys(), f"{context}: rank sets differ")
    for rank in a.trace.ranks:
        ta = a.trace.logs[rank].timestamps
        tb = b.trace.logs[rank].timestamps
        if not np.array_equal(ta, tb):
            detail = (
                f"{np.abs(ta - tb).max():g}s" if ta.shape == tb.shape else "shape"
            )
            raise OracleViolation(
                f"{context}: rank {rank} timestamps differ by {detail}"
            )
    if check_stats:
        for field_ in ("jumps", "max_jump", "max_shift", "corrected_events",
                       "interval_distortion", "max_interval_growth"):
            _require(
                getattr(a, field_) == getattr(b, field_),
                f"{context}: stat {field_} differs "
                f"({getattr(a, field_)} vs {getattr(b, field_)})",
            )


def assert_clc_matches_reference(trace: Trace, lmin=0.0, gamma: float = 0.99,
                                 window=None, include_collectives: bool = True) -> None:
    """CLC array kernel must be bit-identical to the scalar reference."""
    clc = ControlledLogicalClock(
        gamma=gamma, amortization_window=window, include_collectives=include_collectives
    )
    a = clc.correct(trace, lmin=lmin)
    b = clc.correct_reference(trace, lmin=lmin)
    assert_traces_identical(a, b, context=f"clc(gamma={gamma}, window={window})")
    _require(a.trace.meta["clc"] == b.trace.meta["clc"], "clc meta differs")


def assert_naive_matches_reference(trace: Trace, lmin=0.0) -> None:
    a = naive_shift_correct(trace, lmin=lmin)
    b = naive_shift_correct_reference(trace, lmin=lmin)
    assert_traces_identical(a, b, context="naive_shift")
    _require(a.trace.meta["clc"] == b.trace.meta["clc"], "naive meta differs")


def assert_dependency_clc_matches_reference(trace: Trace, deps, lmin=0.0) -> None:
    """Explicit-dependency CLC (the POMP extension point) kernel == scalar."""
    clc = ControlledLogicalClock()
    a = clc.correct_with_dependencies(trace, deps, lmin=lmin)
    b = clc.correct_with_dependencies_reference(trace, deps, lmin=lmin)
    assert_traces_identical(a, b, context="clc(custom deps)")


def assert_logical_clocks_match_reference(trace: Trace) -> None:
    """Lamport and vector kernels == scalar references, both flavors."""
    for include_collectives in (True, False):
        for label, kernel, reference in (
            ("lamport", lamport_clocks, lamport_clocks_reference),
            ("vector", vector_clocks, vector_clocks_reference),
        ):
            a = kernel(trace, include_collectives)
            b = reference(trace, include_collectives)
            _require(a.keys() == b.keys(), f"{label}: rank sets differ")
            for rank in a:
                _require(
                    np.array_equal(a[rank], b[rank]),
                    f"{label}(collectives={include_collectives}): rank {rank} differs",
                )
                _require(
                    a[rank].dtype == np.int64,
                    f"{label}: rank {rank} clock dtype is {a[rank].dtype}, not int64",
                )


def assert_topo_matches_replay(trace: Trace) -> None:
    """Compiled topological order == the dict-based replay generator."""
    deps = build_dependencies(trace)
    schedule = trace.compiled_schedule(True)
    _require(
        schedule.topo_refs() == list(replay_schedule(trace, deps)),
        "compiled topological order diverges from replay_schedule",
    )


def assert_replay_matches_direct(trace: Trace, lmin=0.0) -> None:
    """BSP replay correction == the sequential CLC, bit for bit."""
    result = replay_correct(trace, lmin=lmin)
    direct = ControlledLogicalClock().correct(trace, lmin=lmin)
    assert_traces_identical(result.clc, direct, context="replay", check_stats=False)


def assert_scalar_matches_vector(model, t: float, rel: float = 1e-12,
                                 abs_tol: float = 1e-18) -> None:
    """A drift model's scalar fast path must agree with its vector path."""
    for attr in ("offset_at", "rate_at"):
        fn = getattr(model, attr)
        scalar = float(fn(t))
        vector = float(np.asarray(fn(np.array([t])))[0])
        _require(
            math.isclose(scalar, vector, rel_tol=rel, abs_tol=abs_tol),
            f"{type(model).__name__}.{attr}({t}): scalar {scalar!r} != vector {vector!r}",
        )


# ----------------------------------------------------------------------
# Trace-level invariants
# ----------------------------------------------------------------------
@oracle(
    "clock_condition_post_clc",
    "After CLC (and naive shift) correction, every p2p and logical "
    "collective message satisfies recv >= send + l_min (Eq. 1).",
    {"trace"},
)
def _clock_condition_post_clc(case: TraceCase) -> None:
    for label, result in (
        ("clc", ControlledLogicalClock().correct(case.trace, lmin=case.lmin)),
        ("naive", naive_shift_correct(case.trace, lmin=case.lmin)),
    ):
        corrected = result.trace
        rep = scan_messages(corrected.messages(strict=False), case.lmin)
        _require(rep.violated == 0,
                 f"{label}: {rep.violated} p2p violations remain (worst {rep.worst:g}s)")
        crep, _ = scan_collectives(corrected, case.lmin)
        _require(crep.violated == 0,
                 f"{label}: {crep.violated} collective violations remain")


@oracle(
    "happened_before_preserved",
    "Correction never reorders happened-before: every dependency edge "
    "stays satisfied, events never move backward, and per-rank order "
    "is preserved on monotone inputs.",
    {"trace"},
)
def _happened_before_preserved(case: TraceCase) -> None:
    trace, lmin = case.trace, case.lmin
    schedule = trace.compiled_schedule(True)
    result = ControlledLogicalClock().correct(trace, lmin=lmin)
    corr = {r: result.trace.logs[r].timestamps for r in trace.ranks}
    flat = schedule.flatten(corr)
    if schedule.n_edges:
        edge_lmin = schedule.edge_lmin(lmin)
        slack = flat[schedule.e_dst] - (flat[schedule.e_src] + edge_lmin)
        _require(float(slack.min()) >= 0.0,
                 f"dependency edge violated after CLC by {-float(slack.min()):g}s")
    # The forward pass alone never moves an event backward on any input;
    # with backward amortization the guarantee needs monotone inputs.
    forward = ControlledLogicalClock(amortization_window=0.0).correct(trace, lmin=lmin)
    for rank in trace.ranks:
        orig = trace.logs[rank].timestamps
        fwd = forward.trace.logs[rank].timestamps
        _require(bool(np.all(fwd >= orig)),
                 f"rank {rank}: forward pass moved an event backward")
        if "monotone" in case.tags:
            _require(bool(np.all(corr[rank] >= orig)),
                     f"rank {rank}: CLC moved an event backward")
            if corr[rank].size > 1:
                _require(bool(np.all(np.diff(corr[rank]) >= 0)),
                         f"rank {rank}: corrected timestamps lost per-rank order")


@oracle(
    "correction_idempotence",
    "Correcting an already-corrected trace is a no-op: zero jumps and "
    "timestamps unchanged to 1e-12 (gamma=1, no backward window).",
    {"trace"},
)
def _correction_idempotence(case: TraceCase) -> None:
    clc = ControlledLogicalClock(gamma=1.0, amortization_window=0.0)
    first = clc.correct(case.trace, lmin=case.lmin)
    second = clc.correct(first.trace, lmin=case.lmin)
    _require(second.jumps == 0, f"re-correction produced {second.jumps} jumps")
    for rank in case.trace.ranks:
        a = first.trace.logs[rank].timestamps
        b = second.trace.logs[rank].timestamps
        if a.size and not np.allclose(a, b, rtol=0.0, atol=1e-12):
            _require(False,
                     f"rank {rank}: re-correction moved events by "
                     f"{float(np.abs(a - b).max()):g}s")


@oracle(
    "kernel_reference_identity",
    "Every array kernel (CLC forward+backward, naive shift, Lamport, "
    "vector, compiled topo order, BSP replay) is bit-identical to its "
    "scalar *_reference formulation.",
    {"trace"},
)
def _kernel_reference_identity(case: TraceCase) -> None:
    trace, lmin = case.trace, case.lmin
    assert_clc_matches_reference(trace, lmin, gamma=0.99, window=None)
    assert_clc_matches_reference(trace, lmin, gamma=1.0, window=0.5)
    assert_naive_matches_reference(trace, lmin)
    assert_logical_clocks_match_reference(trace)
    assert_topo_matches_replay(trace)
    assert_replay_matches_direct(trace, lmin)


@oracle(
    "custom_dependency_identity",
    "The explicit-dependency CLC entry point (POMP extension) matches "
    "its scalar reference on merged MPI+POMP constraint sets.",
    {"trace", "pomp"},
)
def _custom_dependency_identity(case: TraceCase) -> None:
    deps = build_dependencies(case.trace, include_collectives=True)
    for ref, sources in pomp_dependencies(case.trace).items():
        deps.setdefault(ref, []).extend(sources)
    assert_dependency_clc_matches_reference(case.trace, deps, lmin=case.lmin)


@oracle(
    "pomp_post_clc",
    "After pomp_clc, every POMP region satisfies fork-first, join-last "
    "and barrier-overlap semantics.",
    {"trace", "pomp", "monotone"},
)
def _pomp_post_clc(case: TraceCase) -> None:
    result = pomp_clc(case.trace, sync_lmin=case.lmin)
    report = scan_pomp(result.trace, case.lmin)
    _require(
        report.any_violations == 0,
        f"{report.any_violations}/{report.regions} regions still violated "
        f"(entry {report.entry_violations}, exit {report.exit_violations}, "
        f"barrier {report.barrier_violations})",
    )


# ----------------------------------------------------------------------
# Interpolation error bounds (need ground truth)
# ----------------------------------------------------------------------
_VIRTUAL_MASTER = -1  # no real rank is mapped identically


def _endpoint_measurements(case: TraceCase, min_span: float = 1e-6):
    """Per-rank first/last offset measurements onto the *true* timeline."""
    init, final = {}, {}
    for rank in case.trace.ranks:
        w = case.trace.logs[rank].timestamps
        t = case.true_times[rank]
        if w.size < 2:
            continue
        i0, i1 = int(np.argmin(w)), int(np.argmax(w))
        if w[i1] - w[i0] < min_span:
            continue
        init[rank] = OffsetMeasurement(rank, float(w[i0]), float(t[i0] - w[i0]), 0.0, 1)
        final[rank] = OffsetMeasurement(rank, float(w[i1]), float(t[i1] - w[i1]), 0.0, 1)
    return init, final


@oracle(
    "interpolation_affine_exact",
    "Two-point linear interpolation (Eq. 3) with exact measurements "
    "recovers the true timeline exactly for affine clock errors.",
    {"trace", "truth", "affine"},
)
def _interpolation_affine_exact(case: TraceCase) -> None:
    init, final = _endpoint_measurements(case)
    if not init:
        return
    correction = linear_interpolation(init, final, master=_VIRTUAL_MASTER)
    for rank in init:
        corrected = correction.apply_rank(rank, case.trace.logs[rank].timestamps)
        residual = float(np.abs(corrected - case.true_times[rank]).max())
        _require(residual <= 1e-9,
                 f"rank {rank}: affine interpolation residual {residual:g}s")


@oracle(
    "interpolation_residual_bound",
    "Two-point interpolation residual never exceeds the clock error's "
    "maximum deviation from the chord between the measurement points.",
    {"trace", "truth"},
)
def _interpolation_residual_bound(case: TraceCase) -> None:
    init, final = _endpoint_measurements(case)
    if not init:
        return
    correction = linear_interpolation(init, final, master=_VIRTUAL_MASTER)
    for rank in init:
        w = case.trace.logs[rank].timestamps
        t = case.true_times[rank]
        offsets = t - w  # true master-minus-worker offset at each event
        m1, m2 = init[rank], final[rank]
        slope = (m2.offset - m1.offset) / (m2.worker_time - m1.worker_time)
        chord = m1.offset + slope * (w - m1.worker_time)
        max_dev = float(np.abs(offsets - chord).max())
        corrected = correction.apply_rank(rank, w)
        residual = float(np.abs(corrected - t).max())
        _require(residual <= max_dev + 1e-9,
                 f"rank {rank}: residual {residual:g}s exceeds chord "
                 f"deviation bound {max_dev:g}s")


@oracle(
    "interpolation_dense_knots_exact",
    "Piecewise interpolation with a knot at every event recovers the "
    "true timeline exactly at the knots, for any drift shape.",
    {"trace", "truth", "monotone"},
)
def _interpolation_dense_knots_exact(case: TraceCase) -> None:
    knots = {}
    kept: dict[int, np.ndarray] = {}
    for rank in case.trace.ranks:
        w = case.trace.logs[rank].timestamps
        t = case.true_times[rank]
        if w.size == 0:
            continue
        keep = np.ones(w.size, dtype=bool)
        keep[1:] = np.diff(w) > 0  # drop ties: knots must strictly increase
        knots[rank] = (w[keep], t[keep] - w[keep])
        kept[rank] = keep
    if not knots:
        return
    correction = ClockCorrection(knots, master=_VIRTUAL_MASTER)
    for rank, keep in kept.items():
        w = case.trace.logs[rank].timestamps[keep]
        t = case.true_times[rank][keep]
        corrected = correction.apply_rank(rank, w)
        residual = float(np.abs(corrected - t).max())
        _require(residual <= 1e-9,
                 f"rank {rank}: dense-knot interpolation residual {residual:g}s")


# ----------------------------------------------------------------------
# I/O, clock front-end, runner, typing
# ----------------------------------------------------------------------
def _assert_traces_equal_bitwise(a: Trace, b: Trace, context: str) -> None:
    _require(set(a.ranks) == set(b.ranks), f"{context}: rank sets differ")
    for rank in a.ranks:
        la, lb = a.logs[rank], b.logs[rank]
        for col in ("timestamps", "etypes", "a", "b", "c", "d"):
            _require(
                np.array_equal(getattr(la, col), getattr(lb, col)),
                f"{context}: rank {rank} column {col} changed across round-trip",
            )
    _require(
        len(a.messages(strict=False)) == len(b.messages(strict=False)),
        f"{context}: message table size changed",
    )
    _require(
        len(a.collectives()) == len(b.collectives()),
        f"{context}: collective table size changed",
    )


@oracle(
    "trace_roundtrip",
    "write_trace/read_trace (.npz and .jsonl) and the per-rank "
    "directory format reproduce every event column bit for bit.",
    {"trace"},
)
def _trace_roundtrip(case: TraceCase) -> None:
    trace = case.trace
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as td:
        root = Path(td)
        for name in ("roundtrip.npz", "roundtrip.jsonl"):
            path = write_trace(trace, root / name)
            _assert_traces_equal_bitwise(trace, read_trace(path), context=name)
        directory = write_trace_dir(trace, root / "trace_dir")
        _assert_traces_equal_bitwise(
            trace, read_trace_dir(directory), context="trace_dir"
        )


def assert_streamed_matches_inmemory(
    trace: Trace, shard_events: int, lmin=0.0, gamma: float = 0.99, window=None
) -> None:
    """Out-of-core kernels over a sharded store == in-memory, bit for bit.

    Writes ``trace`` into a shard directory at the given grain, then
    demands the streaming CLC reproduce the in-memory correction
    (timestamps, every statistic, the ``clc`` meta record) and the
    streaming violation scan reproduce :func:`scan_trace` (checked /
    violated counts, violation indices in message-table order, worst
    magnitude).
    """
    import dataclasses

    from repro.sync.streaming import streaming_clc_correct, streaming_scan_trace
    from repro.tracing.store import write_sharded_trace

    with tempfile.TemporaryDirectory(prefix="repro-verify-") as td:
        src = Path(td) / "shards"
        out = Path(td) / "clc"
        write_sharded_trace(trace, src, shard_events=shard_events)
        clc = ControlledLogicalClock(gamma=gamma, amortization_window=window)
        ref = clc.correct(trace, lmin=lmin)
        got = streaming_clc_correct(
            src, out, gamma=gamma, amortization_window=window, lmin=lmin
        )
        materialized = got.trace.materialize()
        assert_traces_identical(
            ref,
            dataclasses.replace(got, trace=materialized),
            context=f"streaming-clc(shard_events={shard_events})",
        )
        _require(
            materialized.meta.get("clc") == ref.trace.meta.get("clc"),
            f"streaming clc meta differs: {materialized.meta.get('clc')} "
            f"vs {ref.trace.meta.get('clc')}",
        )
        ref_scan = scan_trace(trace, lmin=lmin)
        got_scan = streaming_scan_trace(src, lmin=lmin)
        _require(
            sorted(ref_scan) == sorted(got_scan),
            f"streaming scan kinds differ: {sorted(got_scan)} vs {sorted(ref_scan)}",
        )
        for kind in ref_scan:
            a, b = ref_scan[kind], got_scan[kind]
            for field_ in ("checked", "violated", "worst"):
                _require(
                    getattr(a, field_) == getattr(b, field_),
                    f"streaming scan[{kind}].{field_}: "
                    f"{getattr(b, field_)!r} vs in-memory {getattr(a, field_)!r}",
                )
            _require(
                np.array_equal(a.indices, b.indices),
                f"streaming scan[{kind}] violation indices differ",
            )


@oracle(
    "streamed_matches_inmemory",
    "The out-of-core streaming CLC and violation scan over a sharded "
    "trace store are bit-identical to the in-memory kernels: same "
    "corrected timestamps, statistics, violation counts and indices.",
    {"trace", "streaming"},
)
def _streamed_matches_inmemory(case: TraceCase) -> None:
    shard_events = int(case.spec.params.get("shard_events", 2))
    assert_streamed_matches_inmemory(case.trace, shard_events, lmin=case.lmin)
    # A fixed window exercises the backward pass even when the auto
    # window would be zero; gamma=1.0 exercises pure preservation.
    assert_streamed_matches_inmemory(
        case.trace, shard_events, lmin=case.lmin, gamma=1.0, window=0.5
    )


@oracle(
    "sharded_roundtrip",
    "write_sharded_trace -> ShardedTraceReader reproduces every event "
    "column and the run metadata bit for bit, at any shard grain, with "
    "content digests verifying.",
    {"trace"},
)
def _sharded_roundtrip(case: TraceCase) -> None:
    from repro.tracing.store import ShardedTraceReader, write_sharded_trace

    trace = case.trace
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as td:
        for shard_events in (3, 10_000):
            directory = Path(td) / f"shards{shard_events}"
            write_sharded_trace(trace, directory, shard_events=shard_events)
            reader = ShardedTraceReader(directory, verify_digests=True)
            back = reader.read_trace()
            _assert_traces_equal_bitwise(
                trace, back, context=f"sharded(shard_events={shard_events})"
            )
            _require(
                back.meta == trace.meta,
                f"sharded(shard_events={shard_events}): meta changed across "
                "round-trip",
            )


@oracle(
    "clock_quantization",
    "Quantized clock readings never exceed the ideal reading, stay "
    "within one grid step below it, remain monotone, and read() == "
    "read_array() bitwise.",
    {"clock"},
)
def _clock_quantization(case: TraceCase) -> None:
    p = case.spec.params
    resolution = float(p["resolution"])
    offset = float(p.get("offset", 0.0))
    values = [float(v) for v in p["values"]]

    clock = Clock(ConstantDrift(0.0, offset), resolution=resolution)
    scalar = np.array([clock.read(v) for v in values])
    vector = Clock(ConstantDrift(0.0, offset), resolution=resolution).read_array(
        np.asarray(values)
    )
    _require(np.array_equal(scalar, vector),
             "scalar read() and vectorized read_array() disagree")
    ideal = np.asarray(values) + offset
    over = scalar - ideal
    _require(float(over.max(initial=0.0)) <= 0.0,
             f"quantized reading exceeds the ideal reading by {float(over.max()):g}s "
             "(floor overshoot)")
    under = ideal - scalar
    # An exactly-floored reading sits < resolution below the ideal in
    # real arithmetic; in floats the reading itself carries a few ulps
    # of representation error (e.g. 17.0 at 1e-9 resolution), so the
    # bound must leave ulp-scale slack at the magnitude of the reading.
    slack = 4.0 * float(np.spacing(np.abs(ideal).max(initial=1.0)))
    _require(float(under.max(initial=0.0)) <= resolution * (1.0 + 1e-9) + slack,
             f"quantized reading more than one grid step low "
             f"({float(under.max()):g}s at resolution {resolution:g})")
    if scalar.size > 1:
        _require(bool(np.all(np.diff(scalar) >= 0)), "readings are not monotone")


@oracle(
    "module_type_hints",
    "typing.get_type_hints resolves on the annotated callables of the "
    "target module (guards against missing imports in annotations).",
    {"hints"},
)
def _module_type_hints(case: TraceCase) -> None:
    p = case.spec.params
    module = importlib.import_module(p["module"])
    qualname = p.get("qualname") or ""
    if qualname:
        target = module
        for part in qualname.split("."):
            target = getattr(target, part)
        targets = [target]
    else:
        targets = [
            obj for _, obj in inspect.getmembers(module, inspect.isclass)
            if obj.__module__ == module.__name__
        ]
    for cls in targets:
        try:
            typing.get_type_hints(cls.__init__)
        except Exception as exc:
            raise OracleViolation(
                f"get_type_hints failed on {module.__name__}.{cls.__qualname__}: {exc}"
            ) from exc


@oracle(
    "run_grid_identity",
    "run_grid returns bit-identical results for serial and parallel "
    "execution of the same grid.",
    {"grid"},
)
def _run_grid_identity(case: TraceCase) -> None:
    from repro.analysis.runner import run_grid

    p = case.spec.params
    grid = [{"seed": int(s), "n": int(p["n"])} for s in p["seeds"]]
    serial = run_grid(grid_probe_job, grid, jobs=None)
    parallel = run_grid(grid_probe_job, grid, jobs=2)
    _require(serial == parallel,
             "parallel run_grid results differ from the serial run")


@oracle(
    "grid_identity_under_work_stealing",
    "run_grid under the work-stealing scheduler (multiple workers, "
    "explicit batching) returns bit-identical results, in grid order, "
    "to the serial path, and the telemetry job accounting adds up.",
    {"grid_ws"},
)
def _grid_identity_under_work_stealing(case: TraceCase) -> None:
    from repro.analysis.runner import run_grid
    from repro.telemetry import TelemetryRecorder

    p = case.spec.params
    grid = [{"seed": int(s), "n": int(p["n"])} for s in p["seeds"]]
    serial = run_grid(grid_probe_job, grid, jobs=None)
    recorder = TelemetryRecorder()
    stolen = run_grid(
        grid_probe_job, grid, jobs=int(p.get("jobs", 2)),
        batch_size=int(p.get("batch_size", 1)), telemetry=recorder,
    )
    _require(serial == stolen,
             "work-stealing run_grid results differ from the serial run")
    executed = recorder.counters.get("runner.jobs_executed", 0)
    cached = recorder.counters.get("runner.jobs_from_cache", 0)
    _require(executed + cached == len(grid),
             f"telemetry accounts for {executed}+{cached} jobs, "
             f"grid had {len(grid)}")


# ----------------------------------------------------------------------
# repro.stats: confidence intervals and the seeded bootstrap
# ----------------------------------------------------------------------
@oracle(
    "ci_contains_truth_at_nominal_rate",
    "Student t confidence intervals on Gaussian samples cover the true "
    "mean at no less than the nominal level minus binomial slack, in a "
    "Monte-Carlo trial that is deterministic per seed.",
    {"stats", "coverage"},
)
def _ci_contains_truth_at_nominal_rate(case: TraceCase) -> None:
    from repro.stats import summarize

    p = case.spec.params
    mu, sigma = float(p["mu"]), float(p["sigma"])
    n, trials, level = int(p["n"]), int(p["trials"]), float(p["level"])
    rng = np.random.default_rng(int(p["seed"]))
    hits = 0
    for _ in range(trials):
        summary = summarize(rng.normal(mu, sigma, size=n), level=level)
        _require(summary.ci_lower <= summary.mean <= summary.ci_upper,
                 "CI does not bracket its own sample mean")
        hits += int(summary.ci_lower <= mu <= summary.ci_upper)
    coverage = hits / trials
    # The t interval is exact for Gaussian data, so observed coverage is
    # Binomial(trials, level)/trials; four standard deviations plus one
    # point of fixed slack keeps the false-alarm rate negligible while
    # still catching an interval built with z (or wrong-df) quantiles.
    slack = 4.0 * math.sqrt(level * (1.0 - level) / trials) + 0.01
    _require(
        coverage >= level - slack,
        f"coverage {coverage:.3f} below nominal {level:.2f} - {slack:.3f} "
        f"({hits}/{trials} intervals contained the true mean)",
    )


@oracle(
    "bootstrap_deterministic_under_seed",
    "Seeded percentile-bootstrap CIs are bit-identical across repeated "
    "calls, ordered, bounded by the sample extremes, and identical "
    "whether reached via bootstrap_ci or summarize.",
    {"stats", "bootstrap"},
)
def _bootstrap_deterministic_under_seed(case: TraceCase) -> None:
    from repro.stats import bootstrap_ci, summarize

    p = case.spec.params
    samples = np.asarray(p["values"], dtype=np.float64)
    level = float(p["level"])
    resamples, seed = int(p["resamples"]), int(p["seed"])
    first = bootstrap_ci(samples, level=level, resamples=resamples, seed=seed)
    second = bootstrap_ci(samples, level=level, resamples=resamples, seed=seed)
    _require(first == second,
             f"same seed produced different bootstrap bounds: "
             f"{first} vs {second}")
    lo, hi = first
    _require(lo <= hi, f"bootstrap bounds are inverted: [{lo}, {hi}]")
    _require(
        float(samples.min()) <= lo and hi <= float(samples.max()),
        "bootstrap bounds escape the sample range (resampled means "
        "cannot exceed the sample extremes)",
    )
    summary = summarize(samples, level=level, bootstrap=resamples, seed=seed)
    _require(
        (summary.bootstrap_lower, summary.bootstrap_upper) == first,
        "summarize() bootstrap bounds differ from bootstrap_ci() under "
        "the same seed",
    )


# ----------------------------------------------------------------------
# Batch fast path vs the discrete-event engine
# ----------------------------------------------------------------------
def _batch_world(params: dict):
    """Build the :class:`MpiWorld` a batch equivalence spec describes."""
    from repro.cluster import inter_chip, inter_core, inter_node, xeon_cluster
    from repro.mpi.runtime import MpiWorld

    preset = xeon_cluster()
    nranks = int(params.get("nranks", 2))
    pin = {"inter_node": inter_node, "inter_chip": inter_chip,
           "inter_core": inter_core}[params.get("pinning", "inter_node")]
    return MpiWorld(
        preset,
        pin(preset.machine, nranks),
        timer=params.get("timer", "tsc"),
        seed=int(params.get("seed", 0)),
        duration_hint=float(params.get("duration_hint", 60.0)),
        trace_buffer_capacity=int(params.get("trace_buffer_capacity", 0)),
        mpi_regions=bool(params.get("mpi_regions", False)),
        periodic_sync_every=int(params.get("periodic_sync_every", 0)),
        periodic_sync_repeats=int(params.get("periodic_sync_repeats", 3)),
        congestion_alpha=float(params.get("congestion_alpha", 0.0)),
        congestion_capacity=int(params.get("congestion_capacity", 16)),
    )


def _batch_worker(params: dict):
    """Build the workload worker a batch equivalence spec describes."""
    kind = params.get("workload", "sparse")
    nranks = int(params.get("nranks", 2))
    seed = int(params.get("workload_seed", 0))
    shape = params.get("shape") or {}
    if kind == "sparse":
        from repro.workloads.sparse import SparseConfig, sparse_worker
        return sparse_worker(SparseConfig(
            rounds=int(shape.get("rounds", 4)),
            density=float(shape.get("density", 0.3)),
            collective_every=int(shape.get("collective_every", 2)),
        ), seed=seed)
    if kind == "pingpong":
        from repro.workloads.pingpong import pingpong_worker
        return pingpong_worker(
            repeats=int(shape.get("repeats", 4)),
            nbytes=int(shape.get("nbytes", 64)),
            warmup=int(shape.get("warmup", 1)),
        )
    if kind == "collective_timing":
        from repro.workloads.pingpong import collective_timing_worker
        return collective_timing_worker(
            repeats=int(shape.get("repeats", 3)),
            nbytes=int(shape.get("nbytes", 8)),
            warmup=int(shape.get("warmup", 1)),
        )
    if kind == "pop":
        from repro.workloads.pop import PopConfig, pop_worker
        steps = int(shape.get("steps", 3))
        window = shape.get("window")
        return pop_worker(PopConfig(
            steps=steps,
            step_time=float(shape.get("step_time", 1e-3)),
            trace_window=tuple(window) if window else None,
            grid=(nranks, 1),
            halo_bytes=int(shape.get("halo_bytes", 256)),
            reductions_per_step=int(shape.get("reductions_per_step", 1)),
            fast_forward=bool(shape.get("fast_forward", True)),
        ), seed=seed)
    if kind == "smg2000":
        from repro.workloads.smg2000 import Smg2000Config, smg2000_worker
        return smg2000_worker(Smg2000Config(
            cycles=int(shape.get("cycles", 2)),
            levels=shape.get("levels"),
            smooth_time=float(shape.get("smooth_time", 1e-3)),
            msg_bytes=int(shape.get("msg_bytes", 256)),
            pre_sleep=float(shape.get("pre_sleep", 0.01)),
            post_sleep=float(shape.get("post_sleep", 0.01)),
        ), seed=seed)
    if kind == "sweep3d":
        from repro.workloads.sweep3d import Sweep3dConfig, sweep3d_worker
        return sweep3d_worker(Sweep3dConfig(
            iterations=int(shape.get("iterations", 2)),
            grid=(nranks, 1),
            cell_time=float(shape.get("cell_time", 1e-4)),
            msg_bytes=int(shape.get("msg_bytes", 128)),
        ), seed=seed)
    raise OracleViolation(f"unknown batch workload {kind!r}")


def _require_equal_offsets(a, b, label: str) -> None:
    if a is None or b is None:
        _require(a is None and b is None, f"{label} offsets present on one path only")
        return
    _require(set(a) == set(b), f"{label} offsets: worker sets differ")
    for rank in a:
        _require(a[rank] == b[rank],
                 f"{label} offsets: worker {rank} differs ({a[rank]} vs {b[rank]})")


def _require_equal_results(a: dict, b: dict) -> None:
    _require(set(a) == set(b), "worker result rank sets differ")
    for rank in a:
        va, vb = a[rank], b[rank]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            same = (isinstance(va, np.ndarray) and isinstance(vb, np.ndarray)
                    and np.array_equal(va, vb))
            _require(same, f"rank {rank}: result arrays differ")
        else:
            _require(va == vb, f"rank {rank}: results differ ({va!r} vs {vb!r})")


def assert_batch_matches_engine(params: dict) -> str:
    """Run one scenario under both engines and demand bit-identity.

    Builds two independent worlds from ``params`` (so no RNG state
    leaks between the runs), executes the reference discrete-event
    engine and the batch fast path, and compares every observable:
    trace columns, worker results, offset measurements, duration,
    ``events_processed``, and the post-run RNG stream positions (the
    proof that the fast path consumed every random stream exactly as
    far as the engine did).  Returns the path the batch run actually
    took (``"batch"``, or ``"reference"`` after a fallback).
    """
    from repro.options import RunOptions

    kwargs = dict(
        tracing=bool(params.get("tracing", True)),
        measure_offsets=bool(params.get("measure_offsets", True)),
        sync_repeats=int(params.get("sync_repeats", 3)),
        tracing_initially=bool(params.get("tracing_initially", True)),
    )
    ref = _batch_world(params).run(
        _batch_worker(params), options=RunOptions(engine="reference"), **kwargs
    )
    bat = _batch_world(params).run(
        _batch_worker(params), options=RunOptions(engine="batch"), **kwargs
    )

    _require_runs_identical(ref, bat, context="batch-vs-engine")
    if bat.engine == "batch":
        _require(bat.fallback_reason is None,
                 f"engaged fast path carries fallback_reason {bat.fallback_reason!r}")
    else:
        _require(isinstance(bat.fallback_reason, str) and bat.fallback_reason,
                 "fallback produced no machine-readable reason code")
    return bat.engine


def _require_runs_identical(ref, other, context: str) -> None:
    """Demand two :class:`RunResult`\\ s are observably bit-identical."""
    _require(other.events_processed == ref.events_processed,
             f"events_processed: {other.events_processed} vs {ref.events_processed}")
    _require(other.duration == ref.duration,
             f"duration differs by {abs(other.duration - ref.duration):g}s")
    if ref.trace is None or other.trace is None:
        _require(ref.trace is None and other.trace is None,
                 "trace present on one path only")
    else:
        _assert_traces_equal_bitwise(ref.trace, other.trace, context=context)
        _require(ref.trace.meta == other.trace.meta, "trace meta differs")
    _require_equal_results(ref.results, other.results)
    _require_equal_offsets(ref.init_offsets, other.init_offsets, "init")
    _require_equal_offsets(ref.final_offsets, other.final_offsets, "final")
    _require(ref.periodic_offsets == other.periodic_offsets,
             "periodic offset sets differ")
    _require(ref.rng_states == other.rng_states,
             "post-run RNG stream positions differ (stream consumption mismatch)")


@oracle(
    "batch_matches_engine",
    "The vectorized batch trace generator produces bit-identical runs "
    "to the discrete-event engine: same trace columns, results, offset "
    "measurements, duration, event count, and RNG stream positions.",
    {"batch"},
)
def _batch_matches_engine(case: TraceCase) -> None:
    taken = assert_batch_matches_engine(case.spec.params)
    if case.spec.params.get("expect_engaged"):
        _require(taken == "batch",
                 "batch fast path fell back to the reference engine on a "
                 "spec expected to engage it")


def assert_telemetry_inert(params: dict, engine=None) -> None:
    """Run one scenario with telemetry off and on; demand bit-identity.

    Telemetry may observe a run but never influence it: traces, worker
    results, offsets, duration, event counts, the execution path taken,
    and the post-run RNG stream positions must all be byte-for-byte what
    the un-instrumented run produced.  Checks both engines unless
    ``engine`` (or ``params["engine"]``) picks one.  Also demands the
    recorder actually captured something, so a silently disconnected
    instrumentation layer cannot pass as "inert".
    """
    from repro.options import RunOptions
    from repro.telemetry import TelemetryRecorder

    chosen = engine or params.get("engine")
    engines = (chosen,) if chosen else ("reference", "batch")
    kwargs = dict(
        tracing=bool(params.get("tracing", True)),
        measure_offsets=bool(params.get("measure_offsets", True)),
        sync_repeats=int(params.get("sync_repeats", 3)),
        tracing_initially=bool(params.get("tracing_initially", True)),
    )
    for eng in engines:
        plain = _batch_world(params).run(
            _batch_worker(params), options=RunOptions(engine=eng), **kwargs
        )
        recorder = TelemetryRecorder()
        recorded = _batch_world(params).run(
            _batch_worker(params),
            options=RunOptions(engine=eng, telemetry=recorder),
            **kwargs,
        )
        _require_runs_identical(plain, recorded, context=f"telemetry-inert[{eng}]")
        _require(recorded.engine == plain.engine,
                 f"execution path changed under telemetry "
                 f"({recorded.engine} vs {plain.engine})")
        _require(recorded.fallback_reason == plain.fallback_reason,
                 f"fallback reason changed under telemetry "
                 f"({recorded.fallback_reason!r} vs {plain.fallback_reason!r})")
        _require(bool(recorder.spans) and bool(recorder.counters),
                 "recorder captured nothing — instrumentation disconnected")


@oracle(
    "telemetry_is_inert",
    "Telemetry recording is provably inert: traces, results, offsets, "
    "duration, event counts, execution path, and RNG stream positions "
    "are bit-identical with a recorder attached vs detached, on both "
    "engines.",
    {"batch"},
)
def _telemetry_is_inert(case: TraceCase) -> None:
    assert_telemetry_inert(case.spec.params)
