"""OpenMP thread-team simulation emitting POMP events.

The benchmark mirrors the paper's: *"a simple OpenMP benchmark program
that executes a loop whose body contains a single parallel-for
construct"*, run with 4..16 threads on an Itanium SMP node with 4 chips
of 4 cores, events recorded per the POMP model, **no** offset alignment
or interpolation applied (Fig. 8's setup).

Per region instance the team produces, in true-time order:

1. master records ``OMP_FORK`` and wakes the workers through a binary
   signal tree (shared-memory latency per hop);
2. every thread records ``OMP_PAR_ENTER`` when it starts the body;
3. body compute (per-thread jittered chunk);
4. ``OMP_BARRIER_ENTER`` / tree barrier (gather + release) /
   ``OMP_BARRIER_EXIT``;
5. every thread records ``OMP_PAR_EXIT``; workers signal completion up
   the tree; the master records ``OMP_JOIN`` last.

Violations arise *only* from clock disagreement: in true time the order
is correct by construction, exactly like the paper's real system where
the hardware enforced it.

Shared-memory synchronization uses its own latency table
(:func:`shm_latency`) well below the machine's MPI latencies — cache-
line transfer costs, the "low latency of shared-memory synchronization"
the paper blames for the high violation rates at small thread counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clocks.factory import ClockEnsemble, timer_spec
from repro.cluster.jitter import OsJitterModel
from repro.cluster.machines import ClusterPreset, itanium_node
from repro.cluster.network import HierarchicalLatency, LatencySample
from repro.cluster.topology import Location
from repro.errors import ConfigurationError
from repro.rng import RngFabric
from repro.sim.engine import Engine, Transport
from repro.sim.primitives import Compute, ReadClock, Recv, Send
from repro.tracing.buffer import TraceBuffer
from repro.tracing.events import EventType
from repro.tracing.instrument import Tracer
from repro.tracing.trace import Trace
from repro.units import USEC

__all__ = ["OmpTeamConfig", "run_parallel_for_benchmark", "shm_latency"]

WAKE_TAG = 1
BARRIER_TAG = 2
DONE_TAG = 3
SYNC_TAG = 4
REGION_ID = 501


def shm_latency(
    inter_chip: float = 0.05 * USEC,
    intra_chip: float = 0.02 * USEC,
    jitter_fraction: float = 0.4,
    contention: float = 1.0,
) -> HierarchicalLatency:
    """Cache-line-transfer latencies for shared-memory synchronization.

    An order of magnitude below MPI message latencies (Table II), per
    the paper's emphasis that OpenMP synchronizes much faster than the
    clocks agree.  ``contention`` scales both classes: with more threads
    hammering the same synchronization lines, each transfer queues
    behind the others on the front-side bus — the mechanism behind
    "OpenMP synchronization latencies rising with an increasing number
    of threads" (the paper's explanation for Fig. 8's falloff).
    """
    inter_chip *= contention
    intra_chip *= contention
    return HierarchicalLatency(
        inter_node=LatencySample(base=10 * inter_chip, bandwidth=1e9, jitter=0.0),
        same_node=LatencySample(
            base=inter_chip, bandwidth=8e9, jitter=jitter_fraction * inter_chip
        ),
        same_chip=LatencySample(
            base=intra_chip, bandwidth=16e9, jitter=jitter_fraction * intra_chip
        ),
    )


@dataclass(frozen=True)
class OmpTeamConfig:
    """Shape of the parallel-for benchmark.

    Attributes
    ----------
    threads:
        Team size (paper: 4, 8, 12, 16).
    regions:
        Parallel-for region instances executed (loop iterations).
    body_time:
        Nominal per-thread body compute, seconds.
    imbalance:
        Relative std-dev of the per-thread body time.
    timer:
        Timer technology ("tsc" means the Itanium ITC here).
    contention_per_thread:
        Relative growth of every shared-memory transfer per extra
        thread: hop cost scales with ``1 + c * (threads - 1)``.
    """

    threads: int = 4
    regions: int = 200
    body_time: float = 5.0e-5
    imbalance: float = 0.05
    timer: str = "tsc"
    contention_per_thread: float = 0.6

    def __post_init__(self) -> None:
        if self.threads < 2:
            raise ConfigurationError("a team needs at least 2 threads")
        if self.regions <= 0 or self.body_time <= 0:
            raise ConfigurationError("regions and body_time must be positive")


def _spread_placement(machine, threads: int) -> list[Location]:
    """OS-default thread placement: round-robin across chips.

    The paper *"did not support the pinning of individual OpenMP threads
    to specific cores"*; schedulers of the era spread runnable threads
    over idle chips first, which maximizes inter-chip clock exposure.
    """
    if threads > machine.cores_per_node:
        raise ConfigurationError(
            f"{threads} threads exceed the node's {machine.cores_per_node} cores"
        )
    locs = []
    per_chip = [0] * machine.chips_per_node
    for t in range(threads):
        chip = t % machine.chips_per_node
        core = per_chip[chip]
        per_chip[chip] += 1
        locs.append(Location(0, chip, core))
    return locs


def run_parallel_for_benchmark(
    config: OmpTeamConfig,
    seed: int = 0,
    preset: ClusterPreset | None = None,
    jitter: OsJitterModel | None = None,
    measure_offsets: bool = False,
    sync_repeats: int = 10,
) -> Trace:
    """Run the benchmark; returns the POMP trace (thread id = trace rank).

    With ``measure_offsets=True``, the master thread additionally runs a
    Cristian exchange (through shared memory) with every worker before
    and after the region loop; the measurements land in
    ``trace.meta["init_offsets"]`` / ``["final_offsets"]`` as
    ``{thread: (thread_time, offset)}`` — the inputs the paper's open
    question ("whether offset alignment or interpolation can alleviate
    the errors remains to be evaluated") needs.  See
    :func:`repro.openmp.correction.thread_corrections`.
    """
    preset = preset or itanium_node()
    jitter = jitter if jitter is not None else OsJitterModel(rate=20.0, mean_delay=2e-6)
    fabric = RngFabric(seed)
    n = config.threads
    placement = _spread_placement(preset.machine, n)

    spec = timer_spec(config.timer, preset.kind)
    duration_hint = config.regions * (config.body_time + 20e-6) * 4 + 1.0
    ensemble = ClockEnsemble(preset.machine, spec, fabric, duration_hint)

    engine = Engine(
        Transport(
            shm_latency(contention=1.0 + config.contention_per_thread * (n - 1)),
            fabric.generator("shm"),
            send_overhead=1.0e-8,
            recv_overhead=1.0e-8,
        )
    )
    tracers = {tid: Tracer(TraceBuffer(record_cost=2.0e-8)) for tid in range(n)}

    measurements: dict[str, dict[int, tuple[float, float]]] = {"init": {}, "final": {}}
    for tid in range(n):
        engine.add_process(
            tid,
            _thread(
                tid, n, config, tracers[tid], jitter, fabric.generator("omp", tid),
                measurements if measure_offsets else None, sync_repeats,
            ),
            placement[tid],
            ensemble.clock_for(placement[tid]),
        )
    engine.run()

    meta = {
        "machine": preset.machine.name,
        "timer": spec.name,
        "threads": n,
        "regions": config.regions,
        "locations": [(loc.node, loc.chip, loc.core) for loc in placement],
        "model": "pomp",
    }
    if measure_offsets:
        meta["init_offsets"] = {str(t): m for t, m in measurements["init"].items()}
        meta["final_offsets"] = {str(t): m for t, m in measurements["final"].items()}
    return Trace({tid: t.log for tid, t in tracers.items()}, meta=meta)


# ----------------------------------------------------------------------
# Thread body
# ----------------------------------------------------------------------
def _children(tid: int, n: int) -> list[int]:
    """Binary signal tree rooted at thread 0."""
    kids = []
    for c in (2 * tid + 1, 2 * tid + 2):
        if c < n:
            kids.append(c)
    return kids


def _parent(tid: int) -> int:
    return (tid - 1) // 2


def _record(tracer: Tracer, etype: EventType, inst: int, team: int):
    """Read the clock and append one POMP event (generator)."""
    ts = yield ReadClock()
    cost = tracer.record(ts, etype, REGION_ID, team, 0, inst)
    if cost > 0:
        yield Compute(cost)


def _measure_offsets(tid: int, n: int, store: dict, repeats: int):
    """Cristian exchange between master thread and each worker (raw).

    Same estimator as the MPI-side protocol, but through shared memory:
    the best-of-N round trip bounds the offset error by half the
    (sub-microsecond) cache-transfer asymmetry.
    """
    if tid == 0:
        for worker in range(1, n):
            best_rtt = float("inf")
            best = (0.0, 0.0)
            for _ in range(repeats):
                t1 = yield ReadClock()
                yield Send(worker, tag=SYNC_TAG)
                msg = yield Recv(src=worker, tag=SYNC_TAG)
                t2 = yield ReadClock()
                if t2 - t1 < best_rtt:
                    best_rtt = t2 - t1
                    best = (msg.payload, t1 + (t2 - t1) / 2.0 - msg.payload)
            store[worker] = best
    else:
        for _ in range(repeats):
            yield Recv(src=0, tag=SYNC_TAG)
            t0 = yield ReadClock()
            yield Send(0, tag=SYNC_TAG, payload=t0)


def _thread(
    tid: int,
    n: int,
    config: OmpTeamConfig,
    tracer: Tracer,
    jitter,
    rng,
    measurements: dict | None = None,
    sync_repeats: int = 10,
):
    if measurements is not None:
        yield from _measure_offsets(tid, n, measurements["init"], sync_repeats)
    for inst in range(config.regions):
        # ---- fork -----------------------------------------------------
        if tid == 0:
            yield from _record(tracer, EventType.OMP_FORK, inst, n)
            for child in _children(0, n):
                yield Send(child, tag=WAKE_TAG)
        else:
            yield Recv(src=_parent(tid), tag=WAKE_TAG)
            for child in _children(tid, n):
                yield Send(child, tag=WAKE_TAG)
            # Worker wakeup cost: the thread was idling and must be
            # rescheduled before it reaches the region body.  This makes
            # the fork -> enter margin systematically wider than the
            # exit -> join margin, biasing violations toward the region
            # exit — the asymmetry the paper observed most frequently.
            yield Compute(float(rng.exponential(8.0e-8)))
        yield from _record(tracer, EventType.OMP_PAR_ENTER, inst, n)

        # ---- body -----------------------------------------------------
        body = config.body_time * float(rng.normal(1.0, config.imbalance))
        body = jitter.perturb(max(body, 0.0), rng)
        if body > 0:
            yield Compute(body)

        # ---- implicit barrier (gather to 0, release broadcast) --------
        yield from _record(tracer, EventType.OMP_BARRIER_ENTER, inst, n)
        for child in _children(tid, n):
            yield Recv(src=child, tag=BARRIER_TAG)
        if tid != 0:
            yield Send(_parent(tid), tag=BARRIER_TAG)
            yield Recv(src=_parent(tid), tag=WAKE_TAG + 10)
        for child in _children(tid, n):
            yield Send(child, tag=WAKE_TAG + 10)
        yield from _record(tracer, EventType.OMP_BARRIER_EXIT, inst, n)

        # ---- region exit / join ---------------------------------------
        # Completion gathers up the tree: a thread reports only after all
        # of its children reported, so the master's JOIN truly follows
        # every thread's PAR_EXIT — any recorded inversion is the clocks'.
        yield from _record(tracer, EventType.OMP_PAR_EXIT, inst, n)
        for child in _children(tid, n):
            yield Recv(src=child, tag=DONE_TAG)
        if tid != 0:
            yield Send(_parent(tid), tag=DONE_TAG)
        else:
            yield from _record(tracer, EventType.OMP_JOIN, inst, n)
    if measurements is not None:
        yield from _measure_offsets(tid, n, measurements["final"], sync_repeats)
