"""Timestamp correction for OpenMP (POMP) traces.

The paper's conclusion lists this as *open*: the CLC's "current
limitations ... include the non-observance of shared-memory clock
conditions related to OpenMP constructs", and for the Fig. 8 benchmark
"whether offset alignment or interpolation can alleviate the errors
remains to be evaluated".

This module evaluates it within the model:

* :func:`thread_corrections` turns the shared-memory offset
  measurements taken by
  :func:`repro.openmp.team.run_parallel_for_benchmark` (with
  ``measure_offsets=True``) into the standard
  :class:`~repro.sync.interpolation.ClockCorrection` objects —
  alignment-only or two-point linear, per thread instead of per rank;
* :func:`pomp_clc` extends the controlled logical clock to POMP
  semantics by expressing them as the same kind of happened-before
  constraints the MPI variant uses: fork -> every region event, every
  region event -> join, and every barrier enter -> every other member's
  barrier exit.

Since thread-to-core mappings are assumed stable for the run (the
paper's caveat), per-thread corrections are exactly per-chip-clock
corrections.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import SynchronizationError
from repro.sync.clc import ClcResult, ControlledLogicalClock
from repro.sync.interpolation import ClockCorrection, align_offsets, linear_interpolation
from repro.sync.offset import OffsetMeasurement
from repro.sync.order import EventRef
from repro.tracing.events import EventType
from repro.tracing.trace import Trace

__all__ = ["thread_corrections", "pomp_clc", "pomp_dependencies"]


def _measurements_from_meta(trace: Trace, key: str) -> dict[int, OffsetMeasurement]:
    raw = trace.meta.get(key)
    if raw is None:
        raise SynchronizationError(
            f"trace has no {key!r}; run the benchmark with measure_offsets=True"
        )
    return {
        int(tid): OffsetMeasurement(
            worker=int(tid), worker_time=float(w), offset=float(o), rtt=0.0, repeats=0
        )
        for tid, (w, o) in raw.items()
    }


def thread_corrections(
    trace: Trace, scheme: Literal["align", "linear"] = "align"
) -> ClockCorrection:
    """Build a per-thread clock correction from the trace's measurements.

    ``scheme="align"`` uses only the initial measurements (constant
    offsets — adequate when, as on the Itanium node, inter-chip *drift*
    over a benchmark run is negligible next to the static offsets);
    ``scheme="linear"`` interpolates between initial and final.
    """
    init = _measurements_from_meta(trace, "init_offsets")
    if scheme == "align":
        return align_offsets(init)
    if scheme == "linear":
        final = _measurements_from_meta(trace, "final_offsets")
        return linear_interpolation(init, final)
    raise SynchronizationError(f"unknown scheme {scheme!r} (use 'align' or 'linear')")


# ----------------------------------------------------------------------
# CLC over POMP semantics
# ----------------------------------------------------------------------
def pomp_dependencies(trace: Trace) -> dict[EventRef, list[EventRef]]:
    """Happened-before constraints implied by the POMP event model.

    Per region instance:

    * the master's ``OMP_FORK`` precedes every thread's
      ``OMP_PAR_ENTER`` (threads start only after being woken);
    * every thread's ``OMP_PAR_EXIT`` precedes the master's
      ``OMP_JOIN`` (the master joins last);
    * every thread's ``OMP_BARRIER_ENTER`` precedes every *other*
      thread's ``OMP_BARRIER_EXIT`` (barrier overlap, Fig. 2c).
    """
    per_instance: dict[int, dict[str, list[tuple[int, int]]]] = {}
    for rank in trace.ranks:
        log = trace.logs[rank]
        et, d = log.etypes, log.d
        for i in range(len(log)):
            kind = int(et[i])
            inst = int(d[i])
            bucket = per_instance.setdefault(
                inst,
                {"fork": [], "join": [], "enter": [], "exit": [], "bin": [], "bout": []},
            )
            if kind == int(EventType.OMP_FORK):
                bucket["fork"].append((rank, i))
            elif kind == int(EventType.OMP_JOIN):
                bucket["join"].append((rank, i))
            elif kind == int(EventType.OMP_PAR_ENTER):
                bucket["enter"].append((rank, i))
            elif kind == int(EventType.OMP_PAR_EXIT):
                bucket["exit"].append((rank, i))
            elif kind == int(EventType.OMP_BARRIER_ENTER):
                bucket["bin"].append((rank, i))
            elif kind == int(EventType.OMP_BARRIER_EXIT):
                bucket["bout"].append((rank, i))

    deps: dict[EventRef, list[EventRef]] = {}
    for bucket in per_instance.values():
        forks = bucket["fork"]
        if forks:
            fork = forks[0]
            for ref in bucket["enter"]:
                if ref[0] != fork[0]:
                    deps.setdefault(ref, []).append(fork)
        joins = bucket["join"]
        if joins:
            join = joins[0]
            deps.setdefault(join, []).extend(
                ref for ref in bucket["exit"] if ref[0] != join[0]
            )
        for out_ref in bucket["bout"]:
            deps.setdefault(out_ref, []).extend(
                in_ref for in_ref in bucket["bin"] if in_ref[0] != out_ref[0]
            )
    return deps


def pomp_clc(
    trace: Trace,
    sync_lmin: float = 0.0,
    gamma: float = 0.99,
    amortization_window: float | None = None,
) -> ClcResult:
    """Controlled logical clock over POMP constraints.

    Addresses the conclusion's first listed limitation of the CLC (the
    "non-observance of shared-memory clock conditions related to OpenMP
    constructs") by feeding the same forward/backward machinery the
    POMP dependencies instead of message matches.  ``sync_lmin`` is the
    shared-memory synchronization floor (conservatively 0).
    """
    corrector = ControlledLogicalClock(
        gamma=gamma, amortization_window=amortization_window, include_collectives=False
    )
    deps = pomp_dependencies(trace)
    return corrector.correct_with_dependencies(trace, deps, lmin=sync_lmin)
