"""Simulated OpenMP thread teams and the POMP event model.

Reproduces the paper's Itanium SMP experiments (Fig. 3 and Fig. 8): a
team of threads repeatedly executes a parallel-for region — fork, body,
implicit barrier, join — with every POMP event timestamped by the clock
of the chip the thread landed on.  Because shared-memory synchronization
latencies are far below network latencies while inter-chip clock
disagreement is not, region semantics are easily violated in the
recorded timestamps.
"""

from repro.openmp.team import OmpTeamConfig, run_parallel_for_benchmark, shm_latency

__all__ = ["OmpTeamConfig", "run_parallel_for_benchmark", "shm_latency"]
