"""Deterministic random-number fabric.

Every stochastic component of the simulator (drift wander, network jitter,
OS noise, workload imbalance) draws from its own :class:`numpy.random.Generator`
derived from a single root seed through *named* children.  Naming, rather
than positional spawning, guarantees that adding a new consumer does not
reshuffle the streams of existing ones — experiments stay bit-reproducible
across library versions as long as the component names are stable.

Usage
-----
>>> fabric = RngFabric(seed=42)
>>> net = fabric.generator("network", "node3")
>>> clk = fabric.generator("clock", 7)
>>> float(net.random()) != float(clk.random())
True

The same ``(seed, *names)`` always yields the same stream:

>>> a = RngFabric(7).generator("x").random()
>>> b = RngFabric(7).generator("x").random()
>>> a == b
True
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

__all__ = ["RngFabric", "stable_hash32"]

Nameable = Union[str, int, tuple]


def stable_hash32(*parts: Nameable) -> int:
    """Hash a tuple of names/ints to a stable 32-bit integer.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot be used for reproducible stream derivation.  We use CRC32 over
    a canonical textual encoding instead: stable across processes,
    platforms, and Python versions.
    """
    text = "\x1f".join(_canon(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def _canon(part: Nameable) -> str:
    if isinstance(part, tuple):
        return "(" + ",".join(_canon(p) for p in part) + ")"
    if isinstance(part, (int, np.integer)):
        return f"i{int(part)}"
    if isinstance(part, str):
        return "s" + part
    raise TypeError(f"unhashable stream name component: {part!r}")


class RngFabric:
    """Root of a tree of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  Two fabrics with equal seeds produce
        identical streams for identical names.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generator(self, *names: Nameable) -> np.random.Generator:
        """Return the generator for the stream identified by ``names``.

        Repeated calls with the same names return *fresh* generators
        positioned at the start of the same stream (they do not share
        state), which keeps components independent of each other's
        consumption order.
        """
        ss = np.random.SeedSequence([self.seed, stable_hash32(*names)])
        return np.random.Generator(np.random.PCG64(ss))

    def child(self, *names: Nameable) -> "RngFabric":
        """Derive a sub-fabric, e.g. one per simulated run or repetition."""
        return RngFabric(seed=stable_hash32(("fabric", self.seed), *names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFabric(seed={self.seed})"
