"""Fig. 4 — clock deviations of three timers after initial offset alignment.

Xeon cluster, 4 processes on distinct SMP nodes, repeated Cristian
probes; deviations re-zeroed at the first probe ("initial alignment"):

  (a) MPI_Wtime,    300 s — ">200 us after a relatively short period",
      roughly constant drift with an abrupt slope change (NTP);
  (b) gettimeofday, 1800 s — same pattern, "a little bit more curvy";
  (c) Intel TSC,    3600 s — approximately constant drift throughout.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.experiments import FIG4_PANELS, fig4_timer_deviation
from repro.analysis.reports import format_series
from repro.units import USEC


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig4_panel(benchmark, panel):
    result = benchmark.pedantic(
        fig4_timer_deviation, kwargs=dict(panel=panel, seed=1), rounds=1, iterations=1
    )
    timer, duration = FIG4_PANELS[panel]
    emit("")
    emit(
        f"Fig. 4{panel} — {timer}, {duration:.0f} s run, deviations after "
        "initial offset alignment:"
    )
    for worker, s in sorted(result.series.items()):
        emit("  " + format_series(f"worker {worker}", s.times, s.aligned()))
    emit(f"  worst |deviation|: {result.max_residual('aligned') * 1e6:.1f} us")

    if panel == "a":
        # ">200 us already after a relatively short period".
        assert result.max_residual("aligned") > 200 * USEC
    if panel == "c":
        # TSC: near-linear growth — a straight-line fit explains almost
        # all of the deviation of every drifting worker.
        for s in result.series.values():
            resid = s.aligned()
            span = float(np.abs(resid).max())
            if span < 50 * USEC:
                continue
            fit = np.polyval(np.polyfit(s.times, resid, 1), s.times)
            assert float(np.sqrt(np.mean((resid - fit) ** 2))) < 0.1 * span
    if panel in ("a", "b"):
        # NTP timers: drift is NOT constant — a line fit leaves a
        # substantially larger relative residual than for the TSC.
        worst = max(result.series.values(), key=lambda s: s.max_abs("aligned"))
        resid = worst.aligned()
        fit = np.polyval(np.polyfit(worst.times, resid, 1), worst.times)
        rel = float(np.sqrt(np.mean((resid - fit) ** 2))) / float(np.abs(resid).max())
        assert rel > 0.02
