"""Ablation — error-estimation alternatives (Section V).

The paper reviews postmortem synchronization by *error estimation*
(Duda's regression and convex-hull methods, Hofmann's min/max
simplification, Jezequel's spanning-tree composition) as the classical
alternative to offset measurement.  This bench pits all three
estimators, composed over a maximum-support spanning tree, against the
Scalasca-style linear interpolation on the same badly-drifting trace
(NTP-disciplined MPI_Wtime clocks), counting the reversed messages each
one leaves.
"""

from conftest import emit

from repro.analysis.reports import ascii_table
from repro.cluster import inter_node, xeon_cluster
from repro.mpi import MpiWorld
from repro.sync.error_estimation import synchronize_by_spanning_tree
from repro.sync.interpolation import linear_interpolation
from repro.sync.violations import scan_messages
from repro.workloads import SparseConfig, sparse_worker


def test_error_estimation_ablation(benchmark):
    preset = xeon_cluster()
    world = MpiWorld(
        preset, inter_node(preset.machine, 6), timer="mpi_wtime", seed=5,
        duration_hint=120.0,
    )
    run = world.run(
        sparse_worker(SparseConfig(rounds=60, density=0.5, collective_every=0), seed=5)
    )
    trace = run.trace
    lmin = 1e-6

    def evaluate():
        rows = {}
        rows["raw (uncorrected)"] = scan_messages(
            trace.messages(strict=False), 0.0
        ).violated
        scalasca = linear_interpolation(run.init_offsets, run.final_offsets)
        rows["linear interpolation (Eq. 3)"] = scan_messages(
            scalasca.apply(trace).messages(refresh=True), 0.0
        ).violated
        for method, label in (
            ("regression", "Duda regression + MST"),
            ("hull", "Duda convex hull (LP) + MST"),
            ("minmax", "Hofmann min/max + MST"),
        ):
            corr = synchronize_by_spanning_tree(trace, lmin=lmin, method=method)
            rows[label] = scan_messages(
                corr.apply(trace).messages(refresh=True), 0.0
            ).violated
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    checked = len(trace.messages(strict=False))
    emit("")
    emit(
        ascii_table(
            ["correction", "reversed messages", "of"],
            [(label, count, checked) for label, count in rows.items()],
            title="Error-estimation ablation (MPI_Wtime clocks, 6 ranks, 60 rounds)",
        )
    )

    raw = rows["raw (uncorrected)"]
    assert raw > 0
    # The delay-aware estimators (hull leans on minimal delays; min/max
    # anchors at them) recover the offsets and remove the violations —
    # competitive with explicit offset measurement.
    baseline = rows["linear interpolation (Eq. 3)"]
    assert rows["Duda convex hull (LP) + MST"] <= max(baseline, raw // 10)
    assert rows["Hofmann min/max + MST"] <= max(baseline, raw // 10)
    # The plain regression, by contrast, is biased by the right-skewed
    # (queueing-dominated) delay distribution — Section V's caveat that
    # "jitter in message latency ... limit[s] the usefulness of error
    # estimation approaches", and the reason Duda proposed the convex
    # hull in the first place.  It need not improve at all:
    emit(
        "note: plain regression is delay-bias-limited "
        f"({rows['Duda regression + MST']} vs {raw} raw) — the hull/minmax "
        "variants exist precisely to fix this."
    )
