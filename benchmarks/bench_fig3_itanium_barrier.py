"""Fig. 3 — an observed OpenMP barrier violation on the Itanium SMP node.

The paper's figure is a VAMPIR screenshot in which thread 1:2 appears to
leave a barrier before thread 1:3 entered it.  This bench runs the same
benchmark (4 threads, parallel-for loop, POMP events, Intel timestamp
counter, no correction) on the simulated Itanium node, finds such a
region, and renders its barrier timeline.
"""

from conftest import emit

from repro.analysis.experiments import fig3_barrier_violation


def test_fig3_barrier_violation(benchmark):
    result = benchmark.pedantic(
        fig3_barrier_violation, kwargs=dict(seed=1, threads=4, regions=200),
        rounds=1, iterations=1,
    )
    assert result.found, "no barrier violation found — inter-chip offsets too small?"

    emit("")
    emit("Fig. 3 — violation of OpenMP barrier semantics (Itanium SMP node):")
    emit(f"  region instance {result.instance}; barrier enter/exit per thread:")
    t0 = min(e for e, _ in result.timeline.values())
    for tid, (enter, exit_) in sorted(result.timeline.items()):
        tag = (
            " <- leaves 'before'"
            if tid == result.offender
            else (" <- enters 'after'" if tid == result.victim else "")
        )
        emit(
            f"    thread {tid}: enter {1e6 * (enter - t0):8.3f} us   "
            f"exit {1e6 * (exit_ - t0):8.3f} us{tag}"
        )
    emit(
        f"  recorded gap: thread {result.offender} exits "
        f"{result.overlap_gap * 1e6:.3f} us before thread {result.victim} enters "
        "(impossible in true time — a pure clock artifact)"
    )

    # The violation is an artifact: offender exit precedes victim enter.
    assert result.timeline[result.offender][1] < result.timeline[result.victim][0]
