"""Infrastructure scaling benches for the parallel runner + hot scans.

Not a paper figure.  Two questions, answered with numbers in
``results/latest.{txt,json}``:

* does :func:`repro.analysis.runner.run_grid` actually buy wall-clock on
  a figure-sized grid (and stay bit-for-bit identical to serial)?
* does the work-stealing scheduler keep a deliberately skewed
  2000-config sweep balanced (steals observed, ``configs_per_second``
  tracked, results still bit-identical to serial)?
* did the ``violations_by_pair`` vectorization (one
  ``np.unique``/``np.bincount`` pass instead of a boolean mask per rank
  pair) deliver against the original formulation on the 200k-message
  scan table?

The parallel-speedup assertion is gated on the machine actually having
cores to scale onto; the determinism assertion always runs.
"""

import os
import time

import numpy as np
import pytest
from conftest import emit, record_metric

from repro.analysis.experiments import _fig7_one_run, fig7_app_violations
from repro.analysis.runner import run_grid
from repro.sync.violations import resolve_lmin, violations_by_pair
from repro.tracing.trace import MessageTable

# ----------------------------------------------------------------------
# violations_by_pair: vectorized vs. per-pair masking (the old code)
# ----------------------------------------------------------------------
N_MESSAGES = 200_000
N_RANKS = 16


def make_table(n=N_MESSAGES, nranks=N_RANKS, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, nranks, n)
    dst = (src + 1 + rng.integers(0, nranks - 1, n)) % nranks
    send = np.sort(rng.uniform(0, 100, n))
    recv = send + rng.normal(5e-6, 3e-6, n)
    z = np.zeros(n, dtype=np.int64)
    return MessageTable(src, dst, z, z, send, recv, z, z)


def by_pair_masking_reference(messages, lmin=0.0):
    """The pre-vectorization implementation, kept as the yardstick."""
    out = {}
    floors = resolve_lmin(lmin, messages.src, messages.dst)
    bad = messages.recv_ts - (messages.send_ts + floors) < 0
    pairs = messages.src * (int(messages.dst.max()) + 1) + messages.dst
    for key in np.unique(pairs):
        mask = pairs == key
        out[(int(messages.src[mask][0]), int(messages.dst[mask][0]))] = (
            int(bad[mask].sum()),
            int(mask.sum()),
        )
    return out


def test_by_pair_scan_rate(benchmark):
    table = make_table()
    result = benchmark(violations_by_pair, table, 1e-6)

    t0 = time.perf_counter()
    reference = by_pair_masking_reference(table, 1e-6)
    reference_s = time.perf_counter() - t0

    assert result == reference  # same dict, same counts
    speedup = reference_s / benchmark.stats["mean"]
    emit("")
    emit(
        f"violations_by_pair: {N_MESSAGES} messages / "
        f"{len(result)} pairs in {benchmark.stats['mean'] * 1e3:.2f} ms "
        f"(masking-loop reference {reference_s * 1e3:.1f} ms, {speedup:.1f}x)"
    )
    record_metric(
        "test_by_pair_scan_rate",
        messages=N_MESSAGES,
        pairs=len(result),
        reference_mean_s=reference_s,
        speedup_vs_masking_loop=speedup,
    )
    assert speedup >= 5.0


# ----------------------------------------------------------------------
# run_grid: fig7-sized grid, serial vs jobs=4
# ----------------------------------------------------------------------
FIG7_GRID = [
    dict(app="pop", rep_seed=1000 + rep, nprocs=16, scale=0.05, timer="tsc")
    for rep in range(4)
]


def test_runner_scaling(benchmark):
    t0 = time.perf_counter()
    serial = run_grid(_fig7_one_run, FIG7_GRID, jobs=None)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        return run_grid(_fig7_one_run, FIG7_GRID, jobs=4)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats["mean"]

    # Bit-for-bit determinism: the dataclasses compare exact floats.
    assert parallel == serial

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    emit("")
    emit(
        f"run_grid fig7-sized grid ({len(FIG7_GRID)} jobs): "
        f"serial {serial_s:.2f} s, jobs=4 {parallel_s:.2f} s "
        f"({speedup:.2f}x on {cores} cores) — results identical"
    )
    record_metric(
        "test_runner_scaling",
        grid_jobs=len(FIG7_GRID),
        serial_s=serial_s,
        parallel_s=parallel_s,
        speedup=speedup,
        cores=cores,
    )
    if cores >= 4:
        assert speedup >= 2.0
    else:  # nothing to scale onto; determinism was still verified
        emit(f"  (speedup assertion skipped: only {cores} core(s) available)")


# ----------------------------------------------------------------------
# work stealing: 2000-config sweep with deliberately front-loaded cost
# ----------------------------------------------------------------------
SWEEP_CONFIGS = 2_000
SWEEP_HEAVY = 120  # the first configs cost ~40x the rest


def synthetic_sweep_job(idx, seed):
    """Cheap seeded job whose cost is front-loaded in grid order.

    All the heavy configs sit in the contiguous slice lane 0 owns, so a
    static fan-out would leave the other workers idle for the back half
    of the run — exactly the imbalance stealing exists to fix.
    """
    rng = np.random.default_rng(seed)
    size = 60_000 if idx < SWEEP_HEAVY else 1_500
    values = rng.standard_normal(size)
    return float(np.partition(values, size // 2)[size // 2])


SWEEP_GRID = [dict(idx=i, seed=10_000 + i) for i in range(SWEEP_CONFIGS)]


def test_work_stealing_sweep(benchmark):
    from repro.telemetry import TelemetryRecorder

    t0 = time.perf_counter()
    serial = run_grid(synthetic_sweep_job, SWEEP_GRID, jobs=None)
    serial_s = time.perf_counter() - t0

    recorder = TelemetryRecorder()

    def stolen_run():
        return run_grid(
            synthetic_sweep_job, SWEEP_GRID, jobs=4, telemetry=recorder
        )

    stolen = benchmark.pedantic(stolen_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats["mean"]

    # The documented contract: identical results for any jobs value,
    # work stealing reorders execution only.
    assert stolen == serial

    steals = int(recorder.counters.get("runner.steals", 0))
    batches = int(recorder.counters["runner.batches"])
    assert steals > 0  # the skew guarantees the idle lanes must steal
    assert int(recorder.counters["runner.jobs_executed"]) == SWEEP_CONFIGS

    configs_per_second = SWEEP_CONFIGS / parallel_s
    steal_rate = steals / batches
    emit("")
    emit(
        f"work-stealing sweep: {SWEEP_CONFIGS} configs "
        f"({SWEEP_HEAVY} heavy, front-loaded) in {parallel_s:.2f} s "
        f"jobs=4 ({configs_per_second:.0f} configs/s, serial "
        f"{serial_s:.2f} s) — {steals} steals over {batches} batches "
        f"({steal_rate:.1%}), results identical"
    )
    record_metric(
        "test_work_stealing_sweep",
        configs=SWEEP_CONFIGS,
        serial_s=serial_s,
        parallel_s=parallel_s,
        configs_per_second=configs_per_second,
        steals=steals,
        batches=batches,
        steal_rate=steal_rate,
    )


def test_runner_cache_warm_rerun(benchmark, tmp_path):
    from repro.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    t0 = time.perf_counter()
    cold = fig7_app_violations(
        app="smg2000", seed=2, runs=3, nprocs=8, scale=0.2, cache=cache
    )
    cold_s = time.perf_counter() - t0

    def warm():
        return fig7_app_violations(
            app="smg2000", seed=2, runs=3, nprocs=8, scale=0.2,
            cache=ResultCache(tmp_path / "cache"),
        )

    result = benchmark.pedantic(warm, rounds=1, iterations=1)
    warm_s = benchmark.stats["mean"]
    assert result.runs == cold.runs
    emit(
        f"result cache: cold fig7 grid {cold_s:.2f} s, warm re-run "
        f"{warm_s * 1e3:.1f} ms ({cold_s / warm_s:.0f}x)"
    )
    record_metric(
        "test_runner_cache_warm_rerun",
        cold_s=cold_s,
        warm_s=warm_s,
        speedup=cold_s / warm_s,
    )
    assert warm_s < cold_s / 5.0
