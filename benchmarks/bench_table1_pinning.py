"""Table I — Xeon cluster process pinnings.

Regenerates the three deliberate placements (inter-node / inter-chip /
inter-core) and prints them in Table I's terms, plus the dominant
distance class each one exposes (which selects the l_min that governs
its clock condition).
"""

from conftest import emit

from repro.analysis.experiments import table1_pinnings
from repro.analysis.reports import ascii_table


def test_table1_pinnings(benchmark):
    result = benchmark.pedantic(table1_pinnings, rounds=1, iterations=1)
    rows = []
    for name, pin in result.pinnings.items():
        nodes = len({loc.node for loc in pin})
        chips = len({(loc.node, loc.chip) for loc in pin})
        rows.append(
            (
                name,
                f"{nodes} node(s)",
                f"{chips} chip(s)",
                f"{pin.nranks} processes",
                pin.dominant_distance().value,
            )
        )
    emit("")
    emit(
        ascii_table(
            ["placement", "nodes", "chips", "processes", "dominant distance"],
            rows,
            title="Table I — Xeon cluster: process pinning for measurements",
        )
    )
    assert {name for name, *_ in rows} == {"inter node", "inter chip", "inter core"}
