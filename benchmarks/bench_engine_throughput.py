"""Infrastructure throughput (true pytest-benchmark timings).

Not a paper figure — these benches track the substrate's performance so
full-scale regenerations stay tractable: discrete-event engine rate,
postmortem message matching, violation scan, and CLC throughput.
"""

import numpy as np
import pytest
from conftest import emit, record_metric

from repro.cluster import inter_node, xeon_cluster
from repro.mpi import MpiWorld
from repro.options import RunOptions
from repro.sync.clc import ControlledLogicalClock
from repro.sync.violations import scan_messages
from repro.telemetry import TelemetryRecorder
from repro.workloads import (
    PopConfig,
    Smg2000Config,
    SparseConfig,
    pop_worker,
    smg2000_worker,
    sparse_worker,
)


def make_run(rounds=40, nprocs=8, seed=3):
    preset = xeon_cluster()
    world = MpiWorld(
        preset, inter_node(preset.machine, nprocs), timer="tsc", seed=seed,
        duration_hint=60.0,
    )
    return world.run(sparse_worker(SparseConfig(rounds=rounds, density=0.4), seed=seed))


def test_engine_event_rate(benchmark):
    def run():
        return make_run()

    result = benchmark(run)
    rate = result.events_processed / benchmark.stats["mean"]
    emit("")
    emit(
        f"engine throughput: {result.events_processed} engine events per run, "
        f"~{rate / 1e3:.0f}k events/s"
    )
    record_metric(
        "test_engine_event_rate",
        events_per_run=int(result.events_processed),
        events_per_second=rate,
    )
    assert result.events_processed > 1000


# ----------------------------------------------------------------------
# Trace generation: reference engine vs the vectorized batch fast path.
# Same workload, same seed, bit-identical traces (the `batch` verify
# campaign enforces that); these benches track the throughput of each
# path so check_regression.py catches the fast path losing its edge.
# ----------------------------------------------------------------------
TRACE_GENERATION_CASES = {
    "sparse": lambda seed: sparse_worker(
        SparseConfig(rounds=40, density=0.4), seed=seed
    ),
    "pop": lambda seed: pop_worker(
        PopConfig(steps=60, step_time=1e-3, trace_window=None, grid=(4, 2)),
        seed=seed,
    ),
    "smg2000": lambda seed: smg2000_worker(
        Smg2000Config(cycles=4, pre_sleep=0.01, post_sleep=0.01), seed=seed
    ),
}

#: (workload, engine) -> measured events/s, for the speedup summary.
_TRACE_RATES: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("engine", ["reference", "batch"])
@pytest.mark.parametrize("workload", sorted(TRACE_GENERATION_CASES))
def test_trace_generation(benchmark, request, workload, engine):
    make_worker = TRACE_GENERATION_CASES[workload]

    def run():
        preset = xeon_cluster()
        world = MpiWorld(
            preset, inter_node(preset.machine, 8), timer="tsc", seed=3,
            duration_hint=120.0,
        )
        return world.run(
            make_worker(3), tracing=True, options=RunOptions(engine=engine)
        )

    result = benchmark(run)
    assert result.engine == engine, f"{workload} fell back to {result.engine}"
    rate = result.events_processed / benchmark.stats["mean"]
    _TRACE_RATES[(workload, engine)] = rate
    emit(
        f"trace generation [{workload}/{engine}]: "
        f"{result.events_processed} events in "
        f"{benchmark.stats['mean'] * 1e3:.2f} ms/run, ~{rate / 1e3:.0f}k events/s"
    )
    metrics = dict(
        events_per_run=int(result.events_processed), events_per_second=rate
    )
    reference_rate = _TRACE_RATES.get((workload, "reference"))
    if engine == "batch" and reference_rate:
        metrics["speedup_vs_reference"] = rate / reference_rate
        emit(
            f"  batch speedup on {workload}: "
            f"{rate / reference_rate:.2f}x over the reference engine"
        )
    record_metric(request.node.name, **metrics)
    assert result.events_processed > 1000


# Realistic-options runs: the piggybacked periodic sync protocol
# (Figs. 4-6) and congestion-coupled latency (Fig. 7) used to be the
# dominant batch fallbacks — these benches pin that they now run
# batched end-to-end (the engine assertion below) and keep their edge.
FEATURE_CASES = {
    "periodic_sync": dict(periodic_sync_every=4, periodic_sync_repeats=3),
    "congestion": dict(congestion_alpha=0.5, congestion_capacity=16),
}

#: (workload, feature, engine) -> measured events/s.
_FEATURE_RATES: dict[tuple[str, str, str], float] = {}


@pytest.mark.parametrize("engine", ["reference", "batch"])
@pytest.mark.parametrize("feature", sorted(FEATURE_CASES))
@pytest.mark.parametrize("workload", sorted(TRACE_GENERATION_CASES))
def test_trace_generation_features(benchmark, request, workload, feature, engine):
    make_worker = TRACE_GENERATION_CASES[workload]
    world_kw = FEATURE_CASES[feature]

    def run():
        preset = xeon_cluster()
        world = MpiWorld(
            preset, inter_node(preset.machine, 8), timer="tsc", seed=3,
            duration_hint=120.0, **world_kw,
        )
        return world.run(
            make_worker(3), tracing=True, options=RunOptions(engine=engine)
        )

    result = benchmark(run)
    assert result.engine == engine, (
        f"{workload}/{feature} fell back: {result.fallback_reason}"
    )
    rate = result.events_processed / benchmark.stats["mean"]
    _FEATURE_RATES[(workload, feature, engine)] = rate
    emit(
        f"trace generation [{workload}+{feature}/{engine}]: "
        f"{result.events_processed} events in "
        f"{benchmark.stats['mean'] * 1e3:.2f} ms/run, ~{rate / 1e3:.0f}k events/s"
    )
    metrics = dict(
        events_per_run=int(result.events_processed), events_per_second=rate
    )
    reference_rate = _FEATURE_RATES.get((workload, feature, "reference"))
    if engine == "batch" and reference_rate:
        metrics["speedup_vs_reference"] = rate / reference_rate
        emit(
            f"  batch speedup on {workload}+{feature}: "
            f"{rate / reference_rate:.2f}x over the reference engine"
        )
    record_metric(request.node.name, **metrics)
    assert result.events_processed > 1000


def test_telemetry_disabled_overhead(benchmark):
    """Engine throughput with the telemetry plumbing in place but off.

    The disabled mode's contract is zero overhead: instrumented call
    sites reduce to one attribute check (``tele.enabled``), so this
    gated ``events_per_second`` metric should track
    ``test_engine_event_rate`` within noise.  The enabled-mode ratio is
    recorded informationally (``enabled_overhead_pct``) and quoted in
    docs/observability.md.
    """

    def run_disabled():
        return make_run()

    result = benchmark(run_disabled)
    disabled_rate = result.events_processed / benchmark.stats["mean"]

    # One untimed instrumented run per mode for the informational ratio;
    # a single sample is noisy but cheap, and the gate is the disabled
    # rate above, not this number.
    import time

    t0 = time.perf_counter()
    preset = xeon_cluster()
    world = MpiWorld(
        preset, inter_node(preset.machine, 8), timer="tsc", seed=3,
        duration_hint=60.0,
    )
    enabled = world.run(
        sparse_worker(SparseConfig(rounds=40, density=0.4), seed=3),
        options=RunOptions(telemetry=TelemetryRecorder()),
    )
    enabled_elapsed = time.perf_counter() - t0
    enabled_rate = enabled.events_processed / enabled_elapsed
    overhead_pct = 100.0 * (disabled_rate / enabled_rate - 1.0)

    emit(
        f"telemetry off: ~{disabled_rate / 1e3:.0f}k events/s; "
        f"on: ~{enabled_rate / 1e3:.0f}k events/s "
        f"(~{overhead_pct:+.1f}% single-sample overhead)"
    )
    record_metric(
        "test_telemetry_disabled_overhead",
        events_per_run=int(result.events_processed),
        events_per_second=disabled_rate,
        enabled_overhead_pct=overhead_pct,
    )
    assert result.events_processed == enabled.events_processed


def test_message_matching_rate(benchmark):
    run = make_run(rounds=80)
    trace = run.trace

    def match():
        return trace.messages(refresh=True)

    msgs = benchmark(match)
    emit(f"matching: {len(msgs)} messages in {benchmark.stats['mean'] * 1e3:.2f} ms/pass")
    assert len(msgs) > 100


def test_violation_scan_rate(benchmark):
    rng = np.random.default_rng(0)
    n = 200_000
    from repro.tracing.trace import MessageTable

    z = np.zeros(n, dtype=np.int64)
    send = np.sort(rng.uniform(0, 100, n))
    recv = send + rng.normal(5e-6, 3e-6, n)
    table = MessageTable(
        rng.integers(0, 16, n), rng.integers(0, 16, n), z, z, send, recv, z, z
    )

    report = benchmark(scan_messages, table, 1e-6)
    emit(
        f"violation scan: {n} messages in {benchmark.stats['mean'] * 1e3:.2f} ms "
        f"({report.violated} violations found)"
    )
    record_metric(
        "test_violation_scan_rate",
        messages=n,
        messages_per_second=n / benchmark.stats["mean"],
    )
    assert report.checked == n


def test_clc_rate(benchmark):
    run = make_run(rounds=60, seed=9)
    trace = run.trace
    clc = ControlledLogicalClock()

    def correct():
        return clc.correct(trace, lmin=1e-6)

    result = benchmark(correct)
    emit(
        f"CLC: {result.total_events} events corrected in "
        f"{benchmark.stats['mean'] * 1e3:.1f} ms/pass ({result.jumps} jumps)"
    )
    record_metric(
        "test_clc_rate",
        events_per_run=int(result.total_events),
        events_per_second=result.total_events / benchmark.stats["mean"],
    )
    assert result.total_events == trace.total_events()
