"""Out-of-core streaming CLC vs the in-memory kernel (~2M events).

Not a paper figure — this bench tracks the tentpole promise of the
sharded trace store: the streaming CLC must stay bit-identical to the
in-memory corrector (asserted here on every run, and fuzzed by the
``streaming`` verify campaign) while holding at most ~one shard per
rank resident.  Both paths are timed on the same synthetic 2-rank
trace so ``check_regression.py`` catches either kernel losing its
throughput, and ``streaming_vs_inmemory`` (a ``speedup_*``-style
ratio) catches the streaming path falling behind the in-memory one.
"""

import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import emit, record_metric

from repro.sync.clc import ControlledLogicalClock
from repro.sync.streaming import streaming_clc_correct
from repro.telemetry import TelemetryRecorder
from repro.tracing.events import EventLog
from repro.tracing.store import write_sharded_trace
from repro.tracing.trace import Trace

#: ~2M events total across two ranks; every 16th event is a message.
EVENTS_PER_RANK = 1_000_000
MSG_EVERY = 16
VIOLATIONS = 50
SHARD_EVENTS = 65_536


def synthetic_trace(n_per_rank=EVENTS_PER_RANK, msg_every=MSG_EVERY,
                    violations=VIOLATIONS) -> Trace:
    """Two ranks exchanging id-matched messages, a few of them reversed.

    Rank 1's clock leads rank 0's by half a tick, so messages land in
    order except at ``violations`` evenly spaced receives pulled back
    far enough to precede their sends — enough CLC jumps to exercise
    forward control and backward amortization without making the jump
    count itself the workload.
    """
    nmsg = n_per_rank // msg_every
    idx = np.arange(nmsg) * msg_every + (msg_every // 2)
    mids = np.arange(nmsg, dtype=np.int64)

    def cols(rank):
        ts = np.arange(n_per_rank, dtype=np.float64) * 1e-6
        et = np.empty(n_per_rank, dtype=np.int32)
        et[::2] = 0  # ENTER
        et[1::2] = 1  # EXIT
        a = np.zeros(n_per_rank, dtype=np.int64)
        b = np.zeros(n_per_rank, dtype=np.int64)
        c = np.zeros(n_per_rank, dtype=np.int64)
        d = np.full(n_per_rank, -1, dtype=np.int64)
        if rank == 0:
            et[idx] = 2  # SEND
            a[idx] = 1
        else:
            ts += 5e-7
            et[idx] = 3  # RECV
            a[idx] = 0
            bad = idx[:: max(1, nmsg // violations)]
            ts[bad] -= 0.9e-6  # now precedes its send (still monotone)
        d[idx] = mids
        return ts, et, a, b, c, d

    return Trace({r: EventLog.from_arrays(*cols(r)) for r in (0, 1)}, meta={})


def test_streaming_clc_throughput(benchmark):
    trace = synthetic_trace()
    total = trace.total_events()

    t0 = time.perf_counter()
    ref = ControlledLogicalClock().correct(trace)
    inmemory_s = time.perf_counter() - t0
    inmemory_rate = total / inmemory_s

    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
        shards = write_sharded_trace(
            trace, Path(tmp) / "shards", shard_events=SHARD_EVENTS
        )
        recorder = TelemetryRecorder()
        out_seq = iter(range(1_000_000))

        def run():
            return streaming_clc_correct(
                shards, Path(tmp) / f"out{next(out_seq)}", telemetry=recorder
            )

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        streaming_s = benchmark.stats["mean"]
        streaming_rate = total / streaming_s
        peak = int(recorder.gauges["sync.clc.peak_resident_events"])

        # The whole point: same bits, bounded residency.
        got = result.trace.materialize()
        for rank in trace.ranks:
            np.testing.assert_array_equal(
                ref.trace.logs[rank].timestamps, got.logs[rank].timestamps
            )
        assert result.jumps == ref.jumps
        assert peak <= 2 * SHARD_EVENTS
        assert streaming_rate >= 0.5 * inmemory_rate

    emit("")
    emit(
        f"streaming CLC: {total} events, {result.jumps} jumps, "
        f"shard={SHARD_EVENTS} -> peak resident {peak} events "
        f"({peak / total * 100:.1f} % of trace)"
    )
    emit(
        f"  streaming  {streaming_s:8.3f} s  {streaming_rate / 1e3:7.0f}k events/s"
    )
    emit(
        f"  in-memory  {inmemory_s:8.3f} s  {inmemory_rate / 1e3:7.0f}k events/s"
    )
    record_metric(
        "test_streaming_clc_throughput",
        events=total,
        shard_events=SHARD_EVENTS,
        peak_resident_events=peak,
        streaming_events_per_second=streaming_rate,
        inmemory_events_per_second=inmemory_rate,
        speedup_streaming_vs_inmemory=streaming_rate / inmemory_rate,
    )
