"""Fig. 5 — residual deviations after linear offset interpolation (3600 s).

Three platforms, offsets forced to converge at both ends of the run
(the Eq. 3 correction):

  (a) Xeon / Intel TSC          — residuals of a few to tens of us;
  (b) PowerPC / IBM time base   — similar, somewhat larger;
  (c) Opteron / gettimeofday()  — the paper's worst case.

The paper's headline: "measured deviations exceeded the message latency
already after a few minutes or even earlier, rendering linear
interpolation alone insufficient."  Each panel's bench asserts exactly
that crossing.
"""

import pytest
from conftest import emit

from repro.analysis.experiments import FIG5_PANELS, fig5_interpolated_deviation
from repro.analysis.reports import format_series


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig5_panel(benchmark, panel):
    result = benchmark.pedantic(
        fig5_interpolated_deviation, kwargs=dict(panel=panel, seed=0),
        rounds=1, iterations=1,
    )
    emit("")
    emit(
        f"Fig. 5{panel} — {result.label}, 3600 s, residual deviations after "
        "linear offset interpolation:"
    )
    for worker, s in sorted(result.series.items()):
        emit("  " + format_series(f"worker {worker}", s.times, s.interpolated()))
    crossing = result.first_crossing("interpolated")
    emit(
        f"  worst residual {result.max_residual('interpolated') * 1e6:.1f} us; "
        f"l_min = {result.lmin * 1e6:.2f} us; residual first exceeds l_min/2 "
        + (f"after {crossing:.0f} s" if crossing is not None else "never")
    )

    # Interpolation helps (vs alignment) but is insufficient: the
    # residual crosses the accuracy requirement within the run.
    assert result.max_residual("interpolated") < result.max_residual("aligned")
    assert crossing is not None and crossing < 3600.0
    # Residual exceeds not just half, but the full latency (the paper's
    # stronger statement) at some point.
    assert result.max_residual("interpolated") > result.lmin


def test_fig5_opteron_is_worst(benchmark):
    def run():
        return {
            panel: fig5_interpolated_deviation(panel, seed=0).max_residual("interpolated")
            for panel in FIG5_PANELS
        }

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("")
    emit(
        "Fig. 5 cross-panel: worst residual per platform [us]: "
        + ", ".join(f"{p}={v * 1e6:.1f}" for p, v in worst.items())
    )
    # "...the highest occurring when using gettimeofday() on the Opteron".
    assert worst["c"] > worst["a"]
    assert worst["c"] > worst["b"]
