"""Section IV (text) — intra-node clock deviations are pure noise.

"We examined relative deviations of clocks co-located on the same SMP
node of the Xeon cluster ... In all cases, the deviations we measured
essentially constitute 'noise' oscillating around zero with a maximum
difference of roughly 0.1 us between any two clocks in our ensemble.
One conclusion is that on this system MPI message semantics can be
easily preserved without further postprocessing of timestamps."
"""

from conftest import emit

from repro.analysis.experiments import intranode_noise
from repro.units import USEC


def test_intranode_noise(benchmark):
    result = benchmark.pedantic(
        intranode_noise, kwargs=dict(seed=0, duration=300.0), rounds=1, iterations=1
    )
    emit("")
    emit("Intra-node deviations (Xeon, TSC, 300 s, after initial alignment):")
    emit(f"  between chips of one node: max |dev| = {result.inter_chip_max * 1e6:.3f} us")
    emit(f"  between cores of one chip: max |dev| = {result.inter_core_max * 1e6:.3f} us")
    emit("  (paper: noise around zero, max ~0.1 us)")

    # Noise scale, well below every intra-node message latency.
    assert result.inter_chip_max < 0.3 * USEC
    assert result.inter_core_max < 0.3 * USEC
    # And far below what the *inter-node* clocks do over the same span.
    from repro.analysis.experiments import fig6_short_run

    internode = fig6_short_run(seed=0).max_residual("aligned")
    assert internode > 3 * result.inter_chip_max
