"""Fig. 6 — short (300 s) Xeon/TSC run after linear interpolation.

"Since shorter runs also use a shorter interpolation interval, linear
interpolation may still be adequate in those cases, although our results
on the Xeon cluster suggest that even then violations may occur" — the
residual slightly exceeds the message latency within five minutes.
"""

from conftest import emit

from repro.analysis.experiments import fig6_short_run
from repro.analysis.reports import format_series


def test_fig6_short_run(benchmark):
    result = benchmark.pedantic(
        fig6_short_run, kwargs=dict(seed=0), rounds=1, iterations=1
    )
    emit("")
    emit("Fig. 6 — Xeon / Intel TSC, 300 s, residuals after linear interpolation:")
    for worker, s in sorted(result.series.items()):
        emit("  " + format_series(f"worker {worker}", s.times, s.interpolated()))
    peak = result.max_residual("interpolated")
    emit(
        f"  peak residual {peak * 1e6:.2f} us vs l_min {result.lmin * 1e6:.2f} us "
        f"(ratio {peak / result.lmin:.2f})"
    )

    # "The deviations slightly exceed the latency": above the half-l_min
    # accuracy requirement, same order of magnitude as l_min itself.
    assert peak > result.lmin / 2
    assert peak < 10 * result.lmin
