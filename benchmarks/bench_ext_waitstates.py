"""Extension — wait-state analysis accuracy under each correction.

The paper's motivation made quantitative via
:func:`repro.analysis.experiments.ext_waitstate_accuracy`: Scalasca-style
Late Sender analysis runs on the same imbalanced workload on ground
truth (a perfect global clock) and on MPI_Wtime timestamps raw, after
linear interpolation, and after the CLC.  The table reports the total
waiting time each variant *believes* it saw, its error against truth,
and the number of messages it misclassifies between Late Sender and
Late Receiver ("false conclusions during trace analysis ... when the
impact of certain behaviors is quantified").
"""

from conftest import emit

from repro.analysis.experiments import ext_waitstate_accuracy
from repro.analysis.reports import ascii_table


def test_waitstate_accuracy(benchmark):
    result = benchmark.pedantic(
        ext_waitstate_accuracy, kwargs=dict(seed=11), rounds=1, iterations=1
    )

    rows = [("ground truth (global clock)", f"{result.truth_total * 1e3:.3f}", "-", "-")]
    labels = {
        "raw": "raw MPI_Wtime timestamps",
        "linear": "after linear interpolation",
        "clc": "after interpolation + CLC",
    }
    for scheme, label in labels.items():
        rows.append(
            (
                label,
                f"{result.totals[scheme] * 1e3:.3f}",
                f"{result.error_pct(scheme):.2f}",
                result.sign_flips[scheme],
            )
        )
    emit("")
    emit(
        ascii_table(
            ["timestamps", "total Late Sender wait [ms]", "error vs truth [%]",
             "misclassified messages"],
            rows,
            title="Wait-state analysis accuracy (6 ranks, imbalanced ring)",
        )
    )

    assert result.truth_total > 0
    assert result.error_pct("linear") <= result.error_pct("raw")
    assert result.error_pct("clc") < 25.0
    assert result.sign_flips["linear"] <= result.sign_flips["raw"]
    assert result.sign_flips["clc"] <= result.sign_flips["raw"]
