"""Extension — answering the paper's OpenMP open questions.

The conclusion leaves two questions open:

1. *"Whether offset alignment or interpolation can alleviate the
   errors remains to be evaluated"* (for the Fig. 8 benchmark);
2. the CLC's *"non-observance of shared-memory clock conditions
   related to OpenMP constructs"*.

This bench evaluates both within the model via
:func:`repro.analysis.experiments.ext_openmp_correction`: per-thread
offset measurement through shared memory followed by alignment / linear
interpolation, and a POMP-constraint CLC that needs no measurements at
all.  Violation percentages per thread count, mean of 3 runs.
"""

from conftest import emit

from repro.analysis.experiments import ext_openmp_correction
from repro.analysis.reports import ascii_table


def test_openmp_correction(benchmark):
    result = benchmark.pedantic(
        ext_openmp_correction,
        kwargs=dict(threads=(4, 8, 12, 16), seed=2, runs=3, regions=120),
        rounds=1,
        iterations=1,
    )
    emit("")
    emit(
        ascii_table(
            ["threads", "raw any %", "after align %", "after linear %", "POMP-CLC %"],
            [
                (n, f"{r:.1f}", f"{a:.1f}", f"{l:.1f}", f"{c:.1f}")
                for n, r, a, l, c in result.rows()
            ],
            title=(
                "OpenMP POMP violations vs correction scheme "
                "(Itanium node, mean of 3 runs) — the paper's open question"
            ),
        )
    )
    emit(
        "answer (in this model): per-chip offsets dominate inter-chip drift\n"
        "on a benchmark-scale run, so alignment alone removes (nearly) all\n"
        "violations; the POMP-extended CLC removes all of them without any\n"
        "measurements, addressing the CLC limitation the conclusion lists."
    )

    assert result.raw[4] > 50.0
    assert result.aligned[4] < 10.0
    assert result.linear[4] < 10.0
    for n in (4, 8, 12, 16):
        assert result.clc[n] == 0.0  # CLC always complete
