"""Table II — Xeon cluster message and collective latencies.

Paper values (mean / std. dev., microseconds):

    Inter node message latency      4.29   9.80E-04
    Inter chip message latency      0.86   4.77E-05
    Inter core message latency      0.47   6.94E-06
    Inter node collective latency  12.86   1.68E-02

The simulated means include send/receive software overheads and clock
read costs on top of the Table II wire floors, exactly like a measured
number would; expect the same ordering and magnitudes, with the
collective landing at 2-3x the inter-node message latency.
"""

from conftest import emit

from repro.analysis.experiments import table2_latencies
from repro.analysis.reports import ascii_table, ci_cell

PAPER = {
    "Inter node message latency": (4.29, 9.80e-4),
    "Inter chip message latency": (0.86, 4.77e-5),
    "Inter core message latency": (0.47, 6.94e-6),
    "Inter node collective latency": (12.86, 1.68e-2),
}


def test_table2_latencies(benchmark):
    result = benchmark.pedantic(
        table2_latencies, kwargs=dict(seed=0, repeats=1000, coll_repeats=200),
        rounds=1, iterations=1,
    )
    rows = []
    for stats in result.rows:
        paper_mean, paper_std = PAPER[stats.label]
        rows.append(
            (
                stats.label,
                ci_cell(stats.summary),
                f"{stats.std_of_mean * 1e6:.2e}",
                f"{paper_mean:.2f}",
                f"{paper_std:.2e}",
                f"n={stats.summary.n}",
            )
        )
    emit("")
    emit(
        ascii_table(
            ["measurement", "mean ± 95% CI [us]", "std [us]", "paper mean",
             "paper std", "samples"],
            rows,
            title="Table II — Xeon cluster: measured message and collective latencies",
        )
    )

    by = result.by_label()
    node = by["Inter node message latency"].mean
    chip = by["Inter chip message latency"].mean
    core = by["Inter core message latency"].mean
    coll = by["Inter node collective latency"].mean
    # Shape: strict ordering and collective >> message, as in the paper.
    assert node > chip > core
    assert coll > 2 * node
    # Magnitudes: within ~30 % of Table II.
    assert abs(node * 1e6 - 4.29) / 4.29 < 0.3
    assert abs(coll * 1e6 - 12.86) / 12.86 < 0.4
