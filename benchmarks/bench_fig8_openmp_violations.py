"""Fig. 8 — OpenMP parallel regions with POMP violations vs. thread count.

Itanium SMP node (4 chips x 4 cores), parallel-for loop benchmark, POMP
events timestamped with the per-chip counter, **no** offset alignment or
interpolation; averaged over several runs like the paper's three
measurements.

Paper shape: at 4 threads 83 % of regions are affected (exit violations
most frequent); the fraction "drops sharply as the number of threads is
increased, with 12 threads causing only very few violations and 16
threads none at all."
"""

from conftest import emit

from repro.analysis.experiments import fig8_openmp_violations
from repro.analysis.reports import ascii_table

PAPER_ANY = {4: 83.0, 8: None, 12: "very few", 16: 0.0}


def test_fig8_openmp_violations(benchmark):
    result = benchmark.pedantic(
        fig8_openmp_violations,
        kwargs=dict(threads=(4, 8, 12, 16), seed=2, runs=5, regions=200),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            n,
            f"{any_:.1f}",
            f"{entry:.1f}",
            f"{exit_:.1f}",
            f"{barrier:.1f}",
            "83" if n == 4 else ("~0" if n >= 12 else "-"),
        )
        for n, any_, entry, exit_, barrier in result.rows()
    ]
    emit("")
    emit(
        ascii_table(
            ["threads", "any %", "entry %", "exit %", "barrier %", "paper any %"],
            rows,
            title=(
                "Fig. 8 — parallel regions with clock-condition violations "
                "(mean of 5 runs, no correction)"
            ),
        )
    )

    # Shape assertions straight from the paper's text.
    any4 = result.mean_pct(4, "any")
    assert any4 > 60.0  # "more than three quarters (83 %)"
    assert result.mean_pct(4, "exit") >= result.mean_pct(4, "entry")  # exits dominate
    assert result.mean_pct(12, "any") < 15.0  # "only very few"
    assert result.mean_pct(16, "any") < 5.0  # "none at all" (sampling noise allowed)
    # Monotone-ish falloff 4 -> 16.
    assert any4 > result.mean_pct(8, "any") > result.mean_pct(16, "any")
