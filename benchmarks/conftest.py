"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper and
prints the same rows/series the paper reports.  Output goes through
:func:`emit`, which writes to the real stdout and appends to
``benchmarks/results/latest.txt``.  pytest's default fd-level capture
would still swallow the stdout copy for passing tests, so regenerate
with ``pytest benchmarks/ --benchmark-only -s`` when you want the
tables on the terminal/teed file; the results file gets them always.

Alongside the text, every session writes a machine-readable
``benchmarks/results/latest.json``: per-benchmark mean/stddev/rounds
from pytest-benchmark, merged with any derived metrics a bench recorded
via :func:`record_metric` (e.g. events-per-second, speedup factors).
Future PRs diff that file to track the perf trajectory.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-name (or standalone metric name) -> derived metrics dict,
#: merged into latest.json at session end.
_METRICS: dict[str, dict] = {}


def emit(text: str) -> None:
    """Print to the real stdout (past pytest capture) and the results file."""
    print(text, file=sys.__stdout__)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / "latest.txt").open("a", encoding="utf-8") as fh:
        fh.write(text + "\n")


def record_metric(bench_name: str, **metrics) -> None:
    """Attach derived metrics (events/s, speedups, ...) to ``latest.json``.

    ``bench_name`` should match the benchmark's test name to merge with
    its timing entry; unknown names become standalone entries.
    """
    _METRICS.setdefault(bench_name, {}).update(metrics)


def _stat(stats, field):
    value = getattr(stats, field, None)
    return float(value) if value is not None else None


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "latest.txt").write_text("", encoding="utf-8")
    _METRICS.clear()
    yield


def pytest_sessionfinish(session, exitstatus):
    """Write benchmarks/results/latest.json (per-bench mean/stddev + extras)."""
    entries: dict[str, dict] = {}
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is not None:
        for bench in getattr(bench_session, "benchmarks", []):
            stats = getattr(bench, "stats", None)
            if stats is None:  # bench errored or was skipped
                continue
            entries[bench.name] = {
                "group": getattr(bench, "group", None),
                "mean_s": _stat(stats, "mean"),
                "stddev_s": _stat(stats, "stddev"),
                "min_s": _stat(stats, "min"),
                "max_s": _stat(stats, "max"),
                "rounds": getattr(stats, "rounds", None),
            }
    for name, metrics in _METRICS.items():
        entries.setdefault(name, {}).update(metrics)
    if not entries:
        return
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exit_status": int(exitstatus),
        "benchmarks": entries,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "latest.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
