"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper and
prints the same rows/series the paper reports.  Output goes through
:func:`emit`, which writes to the real stdout and appends to
``benchmarks/results/latest.txt``.  pytest's default fd-level capture
would still swallow the stdout copy for passing tests, so regenerate
with ``pytest benchmarks/ --benchmark-only -s`` when you want the
tables on the terminal/teed file; the results file gets them always.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def emit(text: str) -> None:
    """Print to the real stdout (past pytest capture) and the results file."""
    print(text, file=sys.__stdout__)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / "latest.txt").open("a", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "latest.txt").write_text("", encoding="utf-8")
    yield
