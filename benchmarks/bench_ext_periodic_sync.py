"""Extension — periodic (Doleschal [17]) vs. two-point interpolation.

Section III.b mentions the alternative the paper's own setup avoids:
*"a recent approach proposes periodic offset measurements during global
synchronization operations"*.  Here the measurements piggyback on every
k-th collective of a drift-heavy run; piecewise interpolation over the
resulting knots is compared with the Scalasca two-point scheme on (a)
remaining reversed messages and (b) offset-model error at mid-run
checkpoints.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.reports import ascii_table
from repro.cluster import inter_node, xeon_cluster
from repro.mpi import MpiWorld
from repro.sync.interpolation import linear_interpolation, piecewise_interpolation
from repro.sync.violations import scan_messages



def long_drifting_run(seed=9, every=1):
    """A sparse workload stretched over ~20 simulated minutes so the
    NTP-disciplined clocks bend well away from any straight line."""
    preset = xeon_cluster()
    world = MpiWorld(
        preset,
        inter_node(preset.machine, 4),
        timer="mpi_wtime",
        seed=seed,
        duration_hint=1300.0,
        periodic_sync_every=every,
    )

    def spaced_worker(ctx):
        # Twelve communication rounds spread over ~20 minutes: the
        # collectives (and their piggybacked measurements) land across
        # the run like a real iterative code's would.
        rng = np.random.default_rng((seed << 8) ^ ctx.rank)
        for rnd in range(12):
            yield from ctx.sleep(100.0)
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            yield from ctx.send(right, tag=1, nbytes=64)
            yield from ctx.recv(src=left, tag=1)
            yield from ctx.allreduce(value=1)
        return None

    return world, world.run(spaced_worker)


def test_periodic_sync(benchmark):
    def evaluate():
        world, run = long_drifting_run()
        linear = linear_interpolation(run.init_offsets, run.final_offsets)
        piecewise = piecewise_interpolation(run.all_measurement_sets())
        # Babaoglu/Drummond: estimates for free from the allreduces the
        # app performs anyway, no probe traffic at all.
        from repro.sync.exchange import exchange_correction

        free = exchange_correction(run.trace)

        v_lin = scan_messages(linear.apply(run.trace).messages(refresh=True), 0.0)
        v_pw = scan_messages(piecewise.apply(run.trace).messages(refresh=True), 0.0)
        v_free = scan_messages(free.apply(run.trace).messages(refresh=True), 0.0)

        # Leave-one-out residual: drop each middle measurement set from
        # the knots and predict it — an honest accuracy estimate at
        # points the model did NOT interpolate exactly.
        sets = run.all_measurement_sets()
        err_lin, err_pw = [], []
        for k in range(1, len(sets) - 1):
            loo = piecewise_interpolation(sets[:k] + sets[k + 1 :])
            for rank, m in sets[k].items():
                err_pw.append(abs(loo.offset_model(rank, m.worker_time) - m.offset))
                err_lin.append(
                    abs(linear.offset_model(rank, m.worker_time) - m.offset)
                )
        return (
            v_lin,
            v_pw,
            v_free,
            float(np.max(err_lin)) if err_lin else 0.0,
            float(np.max(err_pw)) if err_pw else 0.0,
            len(run.periodic_offsets),
        )

    v_lin, v_pw, v_free, err_lin, err_pw, n_periodic = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    emit("")
    emit(
        ascii_table(
            ["scheme", "reversed messages", "worst mid-run offset error [us]"],
            [
                ("two-point linear (Scalasca)", f"{v_lin.violated}/{v_lin.checked}",
                 f"{err_lin * 1e6:.2f}"),
                (f"piecewise over {n_periodic} periodic knots",
                 f"{v_pw.violated}/{v_pw.checked}", f"{err_pw * 1e6:.2f}"),
                ("free (Babaoglu exchange midpoints)",
                 f"{v_free.violated}/{v_free.checked}", "-"),
            ],
            title="Periodic offset synchronization [17] vs two-point interpolation "
                  "(MPI_Wtime clocks, ~20 simulated minutes)",
        )
    )

    assert n_periodic >= 5
    # Piecewise is at least as good on both metrics, and strictly better
    # on mid-run offset accuracy for these bent clocks.
    assert v_pw.violated <= v_lin.violated
    assert err_pw < err_lin
    # The zero-cost exchange estimate stays in the same quality class
    # (its accuracy is bounded by the collective duration rather than
    # the probe RTT, so allow it a small multiple of the probed result).
    assert v_free.violated <= max(4 * v_pw.violated, v_lin.violated, 4)
