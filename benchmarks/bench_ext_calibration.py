"""Extension — closing the measurement/model loop.

The simulator's clock models are calibrated against the paper's curves
(docs/modeling.md); this bench validates the loop in the other
direction: measure the simulated timers exactly as one would measure a
real cluster (repeated Cristian probes), characterize the series with
Allan deviation and affine-drift estimation, and check that each timer's
*measured* signature matches its configured model family:

* TSC — ppm-scale affine rate, residual wander whose Allan slope is
  non-negative at long tau (random-walk + OU components);
* MPI_Wtime (NTP) — the residual after affine removal dwarfs the TSC's
  relative to its rate, because slew adjustments bend the curve;
* global clock — residuals at the measurement-noise floor.
"""

import numpy as np
from conftest import emit

from repro.analysis.deviation import measure_deviation
from repro.analysis.reports import ascii_table
from repro.clocks.calibrate import allan_deviation, estimate_drift
from repro.cluster import inter_node, xeon_cluster


def test_calibration_loop(benchmark):
    preset = xeon_cluster()
    pin = inter_node(preset.machine, 2)

    def measure_all():
        out = {}
        for timer in ("tsc", "mpi_wtime", "global"):
            series = measure_deviation(
                preset, pin, timer=timer, duration=1200.0,
                probe_interval=4.0, seed=8,
            )[1]
            est = estimate_drift(series.times, series.offsets)
            taus, adev = allan_deviation(series.times, series.offsets)
            slope = float(np.polyfit(np.log(taus), np.log(adev), 1)[0])
            out[timer] = (est, slope)
        return out

    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    rows = []
    for timer, (est, slope) in results.items():
        rows.append(
            (
                timer,
                f"{est.rate * 1e6:+.3f}",
                f"{est.residual_rms * 1e6:.3f}",
                f"{est.residual_max * 1e6:.3f}",
                f"{slope:+.2f}",
            )
        )
    emit("")
    emit(
        ascii_table(
            ["timer", "affine rate [ppm]", "residual rms [us]",
             "residual max [us]", "Allan log-log slope"],
            rows,
            title="Measured clock characterization (1200 s of Cristian probes)",
        )
    )

    tsc_est, tsc_slope = results["tsc"]
    ntp_est, _ = results["mpi_wtime"]
    glob_est, glob_slope = results["global"]

    # TSC: ppm-scale rate; residual well below the affine excursion.
    assert 1e-8 < abs(tsc_est.rate) < 1e-5
    assert tsc_est.residual_max < 0.2 * abs(tsc_est.rate) * 1200.0
    # NTP clock: affine removal leaves a *relatively* much larger bend.
    tsc_rel = tsc_est.residual_rms / max(abs(tsc_est.rate) * 1200.0, 1e-12)
    ntp_rel = ntp_est.residual_rms / max(abs(ntp_est.rate) * 1200.0, 1e-12)
    assert ntp_rel > tsc_rel
    # Global clock: residuals at the probe-noise floor, white-ish Allan
    # signature (falling with tau).
    assert glob_est.residual_max < 5e-7
    assert glob_slope < 0
