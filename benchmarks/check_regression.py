"""Compare benchmarks/results/latest.json against a committed baseline.

Usage::

    python benchmarks/check_regression.py                  # warn on drops
    python benchmarks/check_regression.py --strict         # exit 1 on drops
    python benchmarks/check_regression.py --threshold 0.2  # tighter bar

A benchmark regresses when its throughput drops by more than
``--threshold`` (default 30 %) relative to the baseline.  Two metric
conventions are understood, matching what the benches record:

* ``mean_s`` (and the other ``*_s`` timing fields): lower is better;
* ``*_per_second`` derived metrics: higher is better;
* ``speedup_*`` derived metrics (ratios of two timings from the same
  session, so immune to overall machine-speed shifts): higher is better.

Benchmarks present in only one file are reported but never fail the
check (machines differ, benches come and go); refresh the baseline by
copying ``latest.json`` over ``baseline.json`` after an intentional
change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def load(path: Path) -> dict[str, dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return payload.get("benchmarks", payload)


def compare(baseline: dict[str, dict], latest: dict[str, dict], threshold: float):
    """Yield (bench, metric, base, new, drop_fraction) for every comparable metric."""
    for name in sorted(set(baseline) & set(latest)):
        base, new = baseline[name], latest[name]
        for metric in sorted(set(base) & set(new)):
            b, n = base[metric], new[metric]
            if not isinstance(b, (int, float)) or not isinstance(n, (int, float)):
                continue
            if metric == "mean_s":
                lower_is_better = True
            elif metric.endswith("_per_second") or metric.startswith("speedup"):
                lower_is_better = False
            else:
                continue  # stddev/min/max/rounds/counters: informational only
            if not b or b <= 0:
                continue
            drop = (n - b) / b if lower_is_better else (b - n) / b
            yield name, metric, float(b), float(n), drop


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR / "baseline.json",
        help="committed reference results (default: benchmarks/results/baseline.json)",
    )
    parser.add_argument(
        "--latest", type=Path, default=RESULTS_DIR / "latest.json",
        help="freshly generated results (default: benchmarks/results/latest.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="relative throughput drop that counts as a regression (default 0.30)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when a regression is found (for CI)",
    )
    args = parser.parse_args(argv)

    for path, label in ((args.baseline, "baseline"), (args.latest, "latest")):
        if not path.is_file():
            print(f"check_regression: no {label} file at {path}; nothing to compare")
            return 0
    baseline = load(args.baseline)
    latest = load(args.latest)

    regressions = []
    compared = 0
    for name, metric, b, n, drop in compare(baseline, latest, args.threshold):
        compared += 1
        if drop > args.threshold:
            regressions.append((name, metric, b, n, drop))

    only_base = sorted(set(baseline) - set(latest))
    only_latest = sorted(set(latest) - set(baseline))
    if only_base:
        print(f"note: not in latest run: {', '.join(only_base)}")
    if only_latest:
        print(f"note: new since baseline: {', '.join(only_latest)}")

    if regressions:
        print(
            f"WARNING: {len(regressions)} metric(s) dropped more than "
            f"{args.threshold:.0%} vs {args.baseline.name}:"
        )
        for name, metric, b, n, drop in regressions:
            print(f"  {name}.{metric}: {b:.6g} -> {n:.6g}  ({drop:+.0%} worse)")
        return 1 if args.strict else 0
    print(f"OK: {compared} metric(s) within {args.threshold:.0%} of {args.baseline.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
