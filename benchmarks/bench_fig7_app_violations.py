"""Fig. 7 — clock-condition violations in POP and SMG2000 traces.

32 processes on the Xeon cluster, scheduler-chosen placement, Scalasca-
style tracing with linear offset interpolation from measurements at
MPI_Init/MPI_Finalize, averaged over three runs ("because the number of
violations varied between runs").  Front row: percentage of messages
(real + logical from collectives) with send/receive reversed; back row:
message-transfer events as a share of all trace events.

POP here is scaled to 10 % of its 9000 iterations (with the per-step
time scaled up so the ~25 simulated minutes of clock-drift exposure are
preserved — the variable the violations actually depend on); SMG2000
runs at the paper's full configuration (5 V-cycles between ten-minute
sleeps).
"""

import os

import pytest
from conftest import emit

from repro.analysis.experiments import fig7_app_violations
from repro.analysis.reports import ascii_table

RESULTS = {}


#: Override the POP scale with REPRO_FIG7_SCALE=1.0 for the paper's full
#: 9000-iteration run (a few minutes of wall time).
POP_SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "0.1"))


@pytest.mark.parametrize("app,scale", [("pop", POP_SCALE), ("smg2000", 1.0)])
def test_fig7_app(benchmark, app, scale):
    result = benchmark.pedantic(
        fig7_app_violations,
        kwargs=dict(app=app, seed=1, runs=3, nprocs=32, scale=scale),
        rounds=1,
        iterations=1,
    )
    RESULTS[app] = result
    emit("")
    emit(f"Fig. 7 — {app}: 3 runs, 32 processes, linear interpolation applied")
    for i, run in enumerate(result.runs):
        emit(
            f"  run {i}: reversed {run.reversed_pct:6.3f} %   "
            f"message events {run.message_event_pct:5.1f} %   "
            f"({run.messages} messages, {run.events} events)"
        )
    emit(
        f"  mean:  reversed {result.mean_reversed_pct:6.3f} %   "
        f"message events {result.mean_message_event_pct:5.1f} %"
    )

    # Shape: a nonzero share of messages reverses despite interpolation,
    # and message events are a large fraction of the trace.
    assert result.mean_reversed_pct > 0.0
    assert 20.0 < result.mean_message_event_pct < 100.0
    # Run-to-run variation exists (the paper's stated reason to average).
    pcts = [r.reversed_pct for r in result.runs]
    assert max(pcts) > min(pcts)


def test_fig7_summary_table(benchmark):
    # Depends on the parametrized runs above having populated RESULTS.
    def render():
        return [
            (
                app,
                f"{res.mean_reversed_pct:.3f}",
                f"{res.mean_message_event_pct:.1f}",
            )
            for app, res in sorted(RESULTS.items())
        ]

    rows = benchmark.pedantic(render, rounds=1, iterations=1)
    if not rows:
        pytest.skip("per-app benches did not run")
    emit("")
    emit(
        ascii_table(
            ["application", "reversed messages [%]", "message events [%]"],
            rows,
            title="Fig. 7 — summary (mean of 3 runs)",
        )
    )
