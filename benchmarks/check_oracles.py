"""Mutation smoke check: do the verification oracles have teeth?

Injects a handful of hand-written mutants — each a realistic way the
synchronization stack could silently break — and asserts the
``mutation`` fuzz campaign catches every one, shrinks the failure, and
serializes it to a corpus entry.  A mutant that survives means an
oracle has gone blind; exit code 1.

Usage::

    PYTHONPATH=src python benchmarks/check_oracles.py
    PYTHONPATH=src python benchmarks/check_oracles.py --max-examples 80
"""

from __future__ import annotations

import argparse
import math
import sys
import tempfile
from contextlib import contextmanager
from pathlib import Path
from unittest import mock

import numpy as np


@contextmanager
def mutant_zero_lmin():
    """M1: the per-edge latency floor vanishes — Eq. 1 degenerates to
    ``recv >= send`` and corrected traces keep real violations."""
    from repro.sync.schedule import CompiledSchedule

    def edge_lmin(self, lmin):
        return np.zeros(self.n_edges, dtype=np.float64)

    with mock.patch.object(CompiledSchedule, "edge_lmin", edge_lmin):
        yield


@contextmanager
def mutant_uncapped_sends():
    """M2: send caps disabled in the array kernel only — backward
    amortization may push a send past its partner's receive, and the
    kernel diverges from the scalar reference."""
    import repro.sync.clc as clc_mod

    def no_caps(schedule, corrected_flat, edge_lmin):
        return np.full(schedule.n_events, np.inf, dtype=np.float64)

    with mock.patch.object(clc_mod, "send_caps_kernel", no_caps):
        yield


@contextmanager
def mutant_naive_floor():
    """M3: quantization reverts to a bare ``floor(value/res) * res`` —
    the historical grid-boundary overshoot (15.0 at 1 ns) returns."""
    from repro.clocks.base import Clock

    def naive(self, value):
        if self.resolution > 0.0:
            return math.floor(value / self.resolution) * self.resolution
        return value

    with mock.patch.object(Clock, "_quantize", naive):
        yield


@contextmanager
def mutant_forced_gamma():
    """M4: the forward kernel silently ignores the requested gamma —
    amortized corrections differ from the scalar reference."""
    import repro.sync.clc as clc_mod
    from repro.sync.schedule import clc_forward as real_forward

    def forced(schedule, orig_flat, edge_lmin, gamma):
        return real_forward(
            schedule, orig_flat, edge_lmin, 1.0 if gamma is not None else None
        )

    with mock.patch.object(clc_mod, "clc_forward", forced):
        yield


MUTANTS = [
    ("zero-lmin", mutant_zero_lmin),
    ("uncapped-sends", mutant_uncapped_sends),
    ("naive-floor", mutant_naive_floor),
    ("forced-gamma", mutant_forced_gamma),
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-examples", type=int, default=60,
                        help="fuzz budget per probe (default 60)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.verify import run_campaign

    survived = []
    for name, mutant in MUTANTS:
        with tempfile.TemporaryDirectory() as tmp:
            with mutant():
                result = run_campaign(
                    "mutation",
                    max_examples=args.max_examples,
                    corpus_dir=tmp,
                    seed=args.seed,
                )
            if result.passed:
                survived.append(name)
                print(f"  SURVIVED {name}: {result.summary()}")
                continue
            oracles = sorted({f.oracle for f in result.failures})
            entries = sorted(p.name for p in Path(tmp).glob("*.json"))
            if not entries:
                survived.append(name)
                print(f"  SURVIVED {name}: caught but nothing serialized")
                continue
            print(f"  caught   {name}: {', '.join(oracles)} "
                  f"({len(entries)} corpus entries)")

    if survived:
        print(f"mutation check FAILED: {len(survived)}/{len(MUTANTS)} "
              f"mutants survived ({', '.join(survived)})")
        return 1
    print(f"mutation check passed: {len(MUTANTS)}/{len(MUTANTS)} mutants caught")
    return 0


if __name__ == "__main__":
    sys.exit(main())
