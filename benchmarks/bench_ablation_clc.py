"""Ablation — CLC design choices (Section V / DESIGN.md).

Sweeps the controlled logical clock's two knobs on the same violated
trace (an SMG2000 run corrected by linear interpolation first, as the
algorithm expects):

* **control factor gamma** — 1.0 preserves local intervals exactly but
  never returns to the original timeline; smaller values glide back
  faster at the cost of slightly compressed intervals;
* **backward amortization window** — 0 disables the backward pass,
  leaving the full jump as a discontinuity right before each corrected
  receive; wider windows spread it, shrinking the worst local-interval
  distortion.

Every variant must fully restore the clock condition; the ablation is
about the *footprint* of the correction, plus the replay-parallel
round count.
"""

import pytest
from conftest import emit, record_metric

from repro.analysis.reports import ascii_table
from repro.cluster import scheduler_default, xeon_cluster
from repro.cluster.jitter import OsJitterModel
from repro.mpi import MpiWorld
from repro.rng import RngFabric
from repro.sync.clc import ControlledLogicalClock, naive_shift_correct
from repro.sync.interpolation import linear_interpolation
from repro.sync.replay import replay_correct
from repro.sync.violations import lmin_matrix_from_trace, scan_collectives, scan_messages
from repro.workloads import Smg2000Config, smg2000_worker


def violated_smg_trace(seed=1, nprocs=32):
    preset = xeon_cluster()
    pinning = scheduler_default(
        preset.machine, nprocs, RngFabric(seed).generator("placement")
    )
    world = MpiWorld(
        preset, pinning, timer="tsc", seed=seed, duration_hint=1500.0,
        jitter=OsJitterModel(rate=10.0, mean_delay=5e-6),
    )
    run = world.run(
        smg2000_worker(Smg2000Config(cycles=5), seed=seed), tracing_initially=False
    )
    corr = linear_interpolation(run.init_offsets, run.final_offsets)
    trace = corr.apply(run.trace)
    lmin = lmin_matrix_from_trace(trace, preset.latency)
    return trace, lmin


def residual_violations(trace, lmin=0.0):
    p2p = scan_messages(trace.messages(strict=False, refresh=True), lmin)
    coll, _ = scan_collectives(trace, lmin)
    return p2p.violated + coll.violated


def test_clc_ablation(benchmark):
    trace, lmin = violated_smg_trace(seed=1)
    before = residual_violations(trace)
    if before == 0:
        pytest.skip("seed produced no violations; ablation needs some")

    variants = [
        ("gamma=1.00, no amortization", dict(gamma=1.0, amortization_window=0.0)),
        ("gamma=1.00, auto window", dict(gamma=1.0, amortization_window=None)),
        ("gamma=0.99, auto window", dict(gamma=0.99, amortization_window=None)),
        ("gamma=0.90, auto window", dict(gamma=0.90, amortization_window=None)),
    ]

    def run_all():
        out = []
        # Section V's first option as the baseline: Lamport-style shift
        # without any amortization.
        naive = naive_shift_correct(trace, lmin=lmin)
        out.append(("naive Lamport shift", naive, residual_violations(naive.trace)))
        for label, kwargs in variants:
            result = ControlledLogicalClock(**kwargs).correct(trace, lmin=lmin)
            out.append((label, result, residual_violations(result.trace)))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # 5 corrections per run_all (naive + 4 CLC variants), each over the
    # full trace — the throughput number later PRs regression-check.
    corrected_events = trace.total_events() * (1 + len(variants))
    record_metric(
        "test_clc_ablation",
        events_corrected_per_run=corrected_events,
        events_per_second=corrected_events / benchmark.stats["mean"],
    )

    rows = [
        (
            label,
            res.jumps,
            after,
            f"{res.max_shift * 1e6:.2f}",
            f"{100 * res.interval_distortion:.2f}",
            res.corrected_events,
        )
        for label, res, after in results
    ]
    emit("")
    emit(
        ascii_table(
            ["variant", "jumps", "violations after", "max shift [us]",
             "interval distortion [%]", "events moved"],
            rows,
            title=f"CLC ablation on an SMG2000 trace ({before} violations before)",
        )
    )

    by_label = {label: (res, after) for label, res, after in results}
    # Every variant restores the clock condition completely.
    for label, (_, after) in by_label.items():
        assert after == 0, label
    # The naive baseline collapses some local interval completely (its
    # absolute interval change equals its largest jump — events pile up
    # behind the shifted receive); CLC spreads it.
    naive = by_label["naive Lamport shift"][0]
    amortized = by_label["gamma=1.00, auto window"][0]
    assert naive.max_interval_growth >= amortized.max_interval_growth
    # Backward amortization reduces the worst local-interval distortion.
    no_amort = by_label["gamma=1.00, no amortization"][0]
    amort = by_label["gamma=1.00, auto window"][0]
    assert amort.interval_distortion <= no_amort.interval_distortion
    # Amortization moves more events (it spreads the jumps around).
    assert amort.corrected_events >= no_amort.corrected_events

    # Replay parallelization: identical output, bounded round count.
    replay = replay_correct(trace, lmin=lmin, gamma=0.99)
    seq = by_label["gamma=0.99, auto window"][0]
    agree = all(
        (replay.clc.trace.logs[r].timestamps == seq.trace.logs[r].timestamps).all()
        for r in trace.ranks
    )
    emit(
        f"replay-parallel CLC: {replay.rounds} rounds, "
        f"max {replay.max_queue} values in flight, identical to sequential: {agree}"
    )
    assert agree
