"""Fig. 2 — consistent vs. inconsistent event semantics (schematic).

Fig. 2 is a didactic diagram, not a measurement; this bench regenerates
its four cases as minimal traces and shows the violation scanner
classifying each exactly as the figure does:

  (a) consistent message trace      -> no violation
  (b) message received before sent  -> p2p violation
  (c) overlapping barrier           -> no violation
  (d) barrier left before entered   -> POMP barrier violation
"""

from conftest import emit

from repro.sync.violations import scan_messages, scan_pomp
from repro.tracing.events import EventLog, EventType
from repro.tracing.trace import MessageTable, Trace

import numpy as np


def _message_case(reversed_: bool):
    send, recv = (1.0, 2.0) if not reversed_ else (2.0, 1.0)
    z = np.zeros(1, dtype=np.int64)
    table = MessageTable(
        np.array([0]), np.array([1]), z, z,
        np.array([send]), np.array([recv]), z, z,
    )
    return scan_messages(table, lmin=0.0)


def _barrier_case(overlapping: bool):
    # Two threads; thread 0 exits before thread 1 enters in the
    # inconsistent case (Fig. 2d).
    b_in = [1.0, 1.2] if overlapping else [1.0, 2.0]
    b_out = [2.0, 2.1] if overlapping else [1.5, 2.5]
    logs = {}
    for tid in range(2):
        log = EventLog()
        log.append(b_in[tid], EventType.OMP_BARRIER_ENTER, 1, 2, 0, 0)
        log.append(b_out[tid], EventType.OMP_BARRIER_EXIT, 1, 2, 0, 0)
        logs[tid] = log
    return scan_pomp(Trace(logs))


def test_fig2_schematic(benchmark):
    def run():
        return {
            "a": _message_case(reversed_=False),
            "b": _message_case(reversed_=True),
            "c": _barrier_case(overlapping=True),
            "d": _barrier_case(overlapping=False),
        }

    cases = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("")
    emit("Fig. 2 — implications of inaccurate timestamps (schematic cases):")
    emit(f"  (a) consistent message trace:      {cases['a'].violated} violation(s)")
    emit(f"  (b) receive before send:           {cases['b'].violated} violation(s)")
    emit(f"  (c) overlapping barrier:           {cases['c'].barrier_violations} violation(s)")
    emit(f"  (d) barrier exited before entered: {cases['d'].barrier_violations} violation(s)")

    assert cases["a"].violated == 0
    assert cases["b"].violated == 1
    assert cases["c"].barrier_violations == 0
    assert cases["d"].barrier_violations == 1
