"""Legacy setup shim.

The offline toolchain in some environments lacks the ``wheel`` package,
which breaks PEP 660 editable installs; with this shim present,
``pip install -e . --no-build-isolation`` falls back to
``setup.py develop`` and succeeds.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
