"""Tests for Lamport and vector clocks (repro.sync.lamport / vector)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.cluster import inter_node, xeon_cluster
from repro.mpi import MpiWorld
from repro.sync.lamport import lamport_clocks
from repro.sync.vector import (
    concurrent,
    happened_before_graph,
    vector_clocks,
    vector_leq,
)
from repro.tracing.events import EventLog, EventType
from repro.tracing.trace import Trace
from repro.workloads import SparseConfig, sparse_worker


def small_trace():
    """0:S(->1) C ; 1:R C S(->2) ; 2:R   (C = local ENTER events)."""
    log0 = EventLog()
    log0.append(1.0, EventType.SEND, 1, 0, 0, 0)
    log0.append(2.0, EventType.ENTER, 1)
    log1 = EventLog()
    log1.append(1.5, EventType.RECV, 0, 0, 0, 0)
    log1.append(1.6, EventType.ENTER, 1)
    log1.append(2.0, EventType.SEND, 2, 0, 0, 1)
    log2 = EventLog()
    log2.append(2.5, EventType.RECV, 1, 0, 0, 1)
    return Trace({0: log0, 1: log1, 2: log2})


def simulated_trace(nprocs=5, rounds=6, seed=3):
    preset = xeon_cluster()
    world = MpiWorld(
        preset, inter_node(preset.machine, nprocs), timer="tsc", seed=seed, duration_hint=30.0
    )
    return world.run(sparse_worker(SparseConfig(rounds=rounds), seed=seed)).trace


class TestLamport:
    def test_local_monotonicity(self):
        clocks = lamport_clocks(small_trace())
        for rank, values in clocks.items():
            assert np.all(np.diff(values) >= 1)

    def test_message_ordering(self):
        clocks = lamport_clocks(small_trace())
        assert clocks[1][0] > clocks[0][0]  # recv after send
        assert clocks[2][0] > clocks[1][2]

    def test_exact_values_small_example(self):
        clocks = lamport_clocks(small_trace())
        np.testing.assert_array_equal(clocks[0], [1, 2])
        np.testing.assert_array_equal(clocks[1], [2, 3, 4])
        np.testing.assert_array_equal(clocks[2], [5])

    def test_consistent_with_happened_before_on_simulated_trace(self):
        trace = simulated_trace()
        clocks = lamport_clocks(trace)
        g = happened_before_graph(trace)
        # e -> f implies LC(e) < LC(f) for every edge (hence every path).
        for (r1, i1), (r2, i2) in g.edges():
            assert clocks[r1][i1] < clocks[r2][i2]


class TestVector:
    def test_exact_values_small_example(self):
        vecs = vector_clocks(small_trace())
        np.testing.assert_array_equal(vecs[0][0], [1, 0, 0])
        np.testing.assert_array_equal(vecs[0][1], [2, 0, 0])
        np.testing.assert_array_equal(vecs[1][0], [1, 1, 0])
        np.testing.assert_array_equal(vecs[1][2], [1, 3, 0])
        np.testing.assert_array_equal(vecs[2][0], [1, 3, 1])

    def test_own_component_counts_events(self):
        trace = small_trace()
        vecs = vector_clocks(trace)
        for pos, rank in enumerate(trace.ranks):
            own = vecs[rank][:, pos]
            np.testing.assert_array_equal(own, np.arange(1, len(trace.logs[rank]) + 1))

    def test_order_equals_reachability(self):
        """The fundamental vector-clock theorem: V(e) < V(f) iff e -> f."""
        trace = simulated_trace(nprocs=4, rounds=4)
        vecs = vector_clocks(trace)
        g = happened_before_graph(trace)
        closure = nx.transitive_closure_dag(g)
        nodes = list(g.nodes())
        rng = np.random.default_rng(0)
        idx = rng.choice(len(nodes), size=min(400, len(nodes) ** 2), replace=True)
        jdx = rng.choice(len(nodes), size=idx.size, replace=True)
        for a, b in zip(idx, jdx):
            e, f = nodes[a], nodes[b]
            if e == f:
                continue
            reaches = closure.has_edge(e, f)
            dominated = vector_leq(vecs[e[0]][e[1]], vecs[f[0]][f[1]])
            assert reaches == dominated, (e, f)

    def test_concurrent_helper(self):
        vecs = vector_clocks(small_trace())
        # 0's second event and 2's receive are causally unrelated.
        assert concurrent(vecs[0][1], vecs[2][0])
        assert not concurrent(vecs[0][0], vecs[1][0])


class TestHappenedBeforeGraph:
    def test_node_and_edge_counts(self):
        trace = small_trace()
        g = happened_before_graph(trace)
        assert g.number_of_nodes() == trace.total_events()
        # Local edges: (2-1) + (3-1) + 0 = 3; message edges: 2.
        assert g.number_of_edges() == 5

    def test_acyclic(self):
        g = happened_before_graph(simulated_trace(nprocs=4, rounds=3))
        assert nx.is_directed_acyclic_graph(g)
