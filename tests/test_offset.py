"""Tests for Cristian offset measurement (repro.sync.offset)."""

from __future__ import annotations

import pytest

from repro.sync.offset import OffsetMeasurement, cristian_offset


class TestCristianFormula:
    def test_symmetric_delays_exact(self):
        # Master sends at t1=10, worker replies t0=4.5 (its clock), reply
        # arrives t2=11.  Midpoint master time 10.5 -> offset 6.0.
        assert cristian_offset(10.0, 4.5, 11.0) == pytest.approx(6.0)

    def test_zero_offset(self):
        assert cristian_offset(10.0, 10.5, 11.0) == pytest.approx(0.0)

    def test_negative_offset(self):
        assert cristian_offset(10.0, 12.0, 11.0) == pytest.approx(-1.5)

    def test_error_bounded_by_asymmetry(self):
        """With asymmetric delays d1 != d2 the estimate errs by
        (d2 - d1)/2 — the bound Cristian's method relies on."""
        true_offset = 3.0
        d1, d2 = 2e-6, 6e-6
        t1 = 100.0
        t0 = (t1 + d1) - true_offset  # worker reads at master-time t1+d1
        t2 = t1 + d1 + d2
        estimate = cristian_offset(t1, t0, t2)
        assert estimate - true_offset == pytest.approx((d2 - d1) / 2)


class TestMeasurementProtocolInSimulation:
    """End-to-end accuracy of the min-RTT protocol (see also
    tests/test_mpi_context.py::TestOffsetMeasurementProtocol)."""

    def make_run(self, timer, seed=0, repeats=10):
        from repro.cluster import inter_node, xeon_cluster
        from repro.mpi import MpiWorld

        preset = xeon_cluster()
        world = MpiWorld(
            preset, inter_node(preset.machine, 2), timer=timer, seed=seed, duration_hint=20.0
        )

        def worker(ctx):
            return None
            yield  # pragma: no cover

        return world, world.run(worker, tracing=False, sync_repeats=repeats)

    def test_more_repeats_do_not_hurt(self):
        """Best-of-N RTT selection: the winning RTT with N=20 is <= the
        winning RTT with N=2 (same seed => same early exchanges is not
        guaranteed, so compare statistically over seeds)."""
        rtts_2, rtts_20 = [], []
        for seed in range(5):
            _, few = self.make_run("tsc", seed=seed, repeats=2)
            _, many = self.make_run("tsc", seed=seed, repeats=20)
            rtts_2.append(few.init_offsets[1].rtt)
            rtts_20.append(many.init_offsets[1].rtt)
        assert sum(rtts_20) <= sum(rtts_2)

    def test_measurement_fields(self):
        _, run = self.make_run("tsc", seed=1)
        m = run.init_offsets[1]
        assert isinstance(m, OffsetMeasurement)
        assert m.worker == 1
        assert m.worker_time >= 0 or True  # worker clock may start anywhere
        assert m.rtt > 0
        # Final measurement happens later on the worker clock.
        m2 = run.final_offsets[1]
        assert m2.worker_time > m.worker_time
